"""Sharded, multi-process filtering service.

The paper's motivating deployment (Sec. 1) is a message broker
filtering a high-rate XML stream against very large subscription
workloads.  A single XPush machine shares work *within* one process;
this package scales *across* processes by partitioning the workload —
not the document stream — into N shards, compiling one machine per
shard, and fanning every document batch out to all shards (the
software analogue of the parallel filter engines in FPGA XML-filtering
architectures, with bounded inter-stage buffering in the spirit of
schema-based event-processor scheduling):

- :mod:`repro.service.partition` — workload partitioning strategies
  (``hash``, ``round_robin``, ``size_balanced`` by AFA state count);
- :mod:`repro.service.placement` — the selectivity-driven placement
  layer: a per-filter cost model (AFA states × estimated σ), LPT boot
  placement, lightest-shard routing for post-boot subscribes, load /
  imbalance gauges and the ``rebalance`` / ``split`` / ``merge``
  migration planners;
- :mod:`repro.service.worker` — the worker-process main loop; shards
  are shipped as :mod:`repro.xpush.persist` snapshots so workers skip
  re-parsing and re-compiling, then warmed via ``warm_up()``;
- :mod:`repro.service.engine` — :class:`ShardedFilterEngine`, the
  parent-side orchestrator: batched publish over bounded work queues
  with backpressure, crash detection with restart-and-resubmit, and a
  serial in-process fallback when ``shards == 1`` or
  ``multiprocessing`` is unavailable.

See ``docs/scaling.md`` for the operational contract.
"""

from repro.service.engine import ServiceError, ShardedFilterEngine
from repro.service.partition import (
    PARTITION_STRATEGIES,
    PLACEMENT_POLICIES,
    partition_filters,
)
from repro.service.placement import (
    CostModel,
    FilterCost,
    Move,
    imbalance,
    place_filters,
    plan_drain,
    plan_rebalance,
    route_new,
    shard_loads,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "PLACEMENT_POLICIES",
    "CostModel",
    "FilterCost",
    "Move",
    "ServiceError",
    "ShardedFilterEngine",
    "imbalance",
    "partition_filters",
    "place_filters",
    "plan_drain",
    "plan_rebalance",
    "route_new",
    "shard_loads",
]
