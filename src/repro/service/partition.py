"""Workload partitioning strategies for the sharded service.

Partitioning is over *filters*, not documents: every shard sees every
document, each shard answers for its own subset of oids, and the union
of the per-shard answers equals the serial machine's answer (the
differential tests assert exactly this).  Three strategies:

- ``hash`` — shard by a stable hash of the oid (CRC-32, so placement
  is identical across processes and interpreter restarts; Python's
  builtin ``hash`` is salted per process and must not be used here).
  Insertion-order independent: a filter lands on the same shard no
  matter when it subscribed.
- ``round_robin`` — cyclic assignment; perfectly even counts.
- ``size_balanced`` — greedy longest-processing-time assignment by
  each filter's AFA state count (compiled via :mod:`repro.afa.build`),
  so shards carry comparable automaton weight even when filter sizes
  are skewed.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from repro.errors import WorkloadError
from repro.xpath.ast import XPathFilter

PARTITION_STRATEGIES = ("hash", "round_robin", "size_balanced")

#: Post-boot routing policies of the placement layer
#: (:mod:`repro.service.placement`): ``hash`` keeps CRC-32 routing,
#: ``cost`` routes new subscribes to the lightest shard by model cost.
PLACEMENT_POLICIES = ("hash", "cost")


def shard_of_oid(oid: str, shards: int) -> int:
    """Stable shard index for *oid* under the ``hash`` strategy."""
    return zlib.crc32(oid.encode("utf-8")) % shards


#: Structure → state count, keyed by the normalised path form.  The
#: count depends only on the filter's structure, never its oid, so
#: deduplicated workloads compile each distinct filter exactly once
#: (``size_balanced`` over 2k filters used to recompile per call).
_STATE_COUNT_CACHE: dict[str, int] = {}


def afa_state_count(xpath_filter: XPathFilter) -> int:
    """Number of AFA states *xpath_filter* compiles to (shard weight).

    Memoized on the normalised path: repeated calls — every
    ``size_balanced`` boot, every cost-model refresh — pay for one
    single-filter compile per *distinct* filter, not per call.
    """
    key = str(xpath_filter.path)
    cached = _STATE_COUNT_CACHE.get(key)
    if cached is None:
        from repro.afa.build import build_workload_automata

        cached = build_workload_automata([xpath_filter]).state_count
        _STATE_COUNT_CACHE[key] = cached
    return cached


def partition_filters(
    filters: Sequence[XPathFilter], shards: int, strategy: str = "hash"
) -> list[list[XPathFilter]]:
    """Split *filters* into *shards* disjoint sub-workloads.

    Always returns exactly *shards* lists (some possibly empty); every
    input filter appears in exactly one of them, with the original
    relative order preserved inside each shard.
    """
    if shards < 1:
        raise WorkloadError(f"shard count must be >= 1, got {shards}")
    if strategy not in PARTITION_STRATEGIES:
        raise WorkloadError(
            f"unknown partitioning strategy {strategy!r}; "
            f"known: {', '.join(PARTITION_STRATEGIES)}"
        )
    out: list[list[XPathFilter]] = [[] for _ in range(shards)]
    if shards == 1:
        out[0].extend(filters)
        return out
    if strategy == "hash":
        for f in filters:
            out[shard_of_oid(f.oid, shards)].append(f)
    elif strategy == "round_robin":
        for index, f in enumerate(filters):
            out[index % shards].append(f)
    else:  # size_balanced: greedy LPT over AFA state counts
        weighted = sorted(
            ((afa_state_count(f), index, f) for index, f in enumerate(filters)),
            key=lambda item: (-item[0], item[1]),
        )
        loads = [0] * shards
        placed: list[list[tuple[int, XPathFilter]]] = [[] for _ in range(shards)]
        for weight, index, f in weighted:
            target = loads.index(min(loads))
            loads[target] += weight
            placed[target].append((index, f))
        for shard, pairs in enumerate(placed):
            out[shard] = [f for _, f in sorted(pairs)]
    return out
