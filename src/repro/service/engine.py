"""The parent-side orchestrator: :class:`ShardedFilterEngine`.

Scaling model (see ``docs/scaling.md``): the *workload* is partitioned
into N shards; every document batch fans out to all shards and the
per-shard oid sets are unioned, so the engine's answers are exactly
the serial machine's answers regardless of N or strategy.

Each shard hosts an inner :class:`~repro.engine.protocol.FilterEngine`
built exclusively through :func:`~repro.engine.factory.create_engine`
(``config.inner`` names the kind; the default ``"layered"`` gives every
shard the Sec. 8 base + delta machine, so updates never flush a warmed
base table).  Mechanics:

- shard workloads are compiled once in the parent and shipped to
  worker processes inside the inner engine's own ``snapshot()``
  payload (no AFA re-compiling in workers); workers warm their
  machines before reporting ready;
- each worker has a *bounded* task queue, and the parent additionally
  caps the number of in-flight batches at ``queue_depth`` — the
  backpressure that keeps an unbounded publisher from ballooning
  memory while still pipelining: batch *i+1* is serialised and
  enqueued while the workers chew batch *i*;
- a worker death is detected at submit or collect time; the worker is
  respawned from its retained payload, every batch it had not yet
  answered is resubmitted, and ``stats()["worker_restarts"]`` counts
  the event.  Duplicate answers from the pre-crash incarnation are
  discarded idempotently;
- ``shards == 1``, ``parallel=False`` or an unusable
  ``multiprocessing`` all degrade to in-process inner engines with
  the same API and the same answers (``stats()["serial_fallback"]``).

**Update control plane.**  ``subscribe``/``unsubscribe``/``compact``
are first-class while the engine serves traffic:

- every update bumps the engine *epoch* and is eagerly validated in
  the parent (bad XPath or duplicate oid never reaches a worker);
- an explicit oid→shard **routing table** is the single source of
  truth for ownership: it is carried in snapshots and projected into
  every worker boot payload (``payload["oids"]``), so placement never
  has to be re-derived by hashing.  New oids route through the
  placement layer (:mod:`repro.service.placement`):
  ``placement="hash"`` keeps consistent CRC-32 routing
  (:func:`~repro.service.partition.shard_of_oid`, reproducible across
  restarts); ``placement="cost"`` routes to the lightest shard by the
  per-filter cost model (AFA states × σ̂) — which also closes the old
  mismatch where post-boot subscribes always hashed even under a
  ``size_balanced`` boot;
- **hot-shard management** rides the same control plane:
  ``rebalance()`` migrates filter subsets between shards when the
  cost-model imbalance gauge crosses ``rebalance_threshold``
  (optionally auto-checked every ``rebalance_interval`` batches),
  ``split()`` adds a shard and populates it, ``merge()`` drains and
  retires the last shard.  Each verb is one epoch: a migration is a
  payload-folded subscribe on the target plus an unsubscribe on the
  source (add before remove — transient double-residency is benign
  because answers are unioned, a gap would drop matches).  These verbs
  run between batch fan-outs, and ``filter_batch`` fully drains its
  in-flight work before returning, so no document ever straddles a
  migration: every batch is answered entirely pre-move or entirely
  post-move, and a worker crash mid-migration reboots from the folded
  payload exactly like any other update;
- in parallel mode the update is *folded into the target worker's
  boot payload first*, then sent as an epoch-stamped control message
  on the same FIFO task queue as batches.  FIFO ordering makes the
  update visible to exactly the batches submitted after it; payload
  folding makes crashes safe without replay — a restarted worker
  boots the updated workload while the stale queue dies with the old
  process, so updates are applied exactly once;
- batch replies carry the worker's ``applied_epoch``, so answers are
  attributable to a workload version; batches resubmitted after a
  crash are re-answered at the *current* epoch (that attribution is
  what the tags are for);
- ``compact()`` broadcasts to every shard and folds the payloads the
  expensive way (recompile base from sources) — the paper's
  brute-force reset, amortised to once per epoch of updates.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import replace
from typing import IO, Any, Iterable, Sequence, Union

from repro.engine.config import EngineConfig
from repro.engine.protocol import MatchHook
from repro.errors import ReproError, WorkloadError
from repro.service.latency import LatencyTracker
from repro.service.partition import partition_filters, shard_of_oid
from repro.service.placement import (
    CostModel,
    Move,
    imbalance,
    place_filters,
    plan_drain,
    plan_rebalance,
    route_new,
    shard_loads,
)
from repro.xmlstream.dom import Document, documents_of_events, parse_forest
from repro.xmlstream.dtd import DTD
from repro.xmlstream.events import EndDocument, Event
from repro.xmlstream.writer import document_to_xml
from repro.xpath.ast import XPathFilter
from repro.xpath.parser import parse_workload, parse_xpath
from repro.xpush.options import XPushOptions

LAYERED_FORMAT = "repro-layered-engine"

#: ``snapshot()`` format tag of the sharded engine itself.
SNAPSHOT_FORMAT = "repro-sharded-engine"
SNAPSHOT_VERSION = 1


class ServiceError(ReproError):
    """Raised when the sharded service cannot complete a batch."""


#: First idle-poll sleep of a collect call; doubles per empty sweep.
#: Small, because the sweep over per-worker result queues cannot block:
#: a short first sleep keeps collect latency near the blocking-get
#: behaviour when answers are milliseconds away.
IDLE_POLL_START = 0.001

#: Idle-poll ceiling — bounds how long a dead worker can go undetected
#: (liveness checks run on every wakeup).
IDLE_POLL_CAP = 1.0


def _poll_timeout(wakeups: int, remaining: float) -> float:
    """Exponential idle backoff, capped by the liveness ceiling and the
    remaining no-progress budget: a waiting engine backs off instead of
    spinning, but still wakes often enough to respawn dead workers and
    raises exactly at the deadline."""
    backoff = IDLE_POLL_START * (1 << min(wakeups, 10))
    return max(0.0, min(backoff, IDLE_POLL_CAP, remaining))


def _mp_context(start_method: str | None):
    """A usable multiprocessing context, or None (serial fallback)."""
    try:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        elif start_method not in methods:
            return None
        return multiprocessing.get_context(start_method)
    except (ImportError, ValueError, OSError):
        return None


def _picklable(value) -> bool:
    import pickle

    try:
        pickle.dumps(value)
        return True
    except Exception:  # noqa: BLE001 - any failure means "do not ship it"
        return False


def _snapshot_sources(snap: dict | None) -> dict[str, str]:
    """The live oid → XPath sources a shard snapshot describes (base
    plus delta minus tombstones for the layered format, the filters
    mapping otherwise)."""
    if not isinstance(snap, dict):
        return {}
    if snap.get("format") == LAYERED_FORMAT:
        base = snap.get("base") or {"afas": []}
        sources = {str(afa["oid"]): str(afa["source"]) for afa in base["afas"]}
        for oid, xpath in snap.get("delta", {}).items():
            sources[str(oid)] = str(xpath)
        for oid in snap.get("tombstones", []):
            sources.pop(str(oid), None)
        return sources
    return {str(oid): str(xpath) for oid, xpath in snap.get("filters", {}).items()}


class _WorkerHandle:
    """Parent-side bookkeeping for one shard's worker process."""

    __slots__ = ("shard_id", "process", "tasks", "results", "pending", "info")

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.tasks = None
        self.results = None
        # batch_id -> (texts, emit): everything needed to resubmit the
        # batch verbatim after a crash, match streaming included.
        self.pending: dict[int, tuple[list[str], bool]] = {}
        self.info: dict = {}

    @property
    def dead(self) -> bool:
        return self.process is None or self.process.exitcode is not None


class ShardedFilterEngine:
    """Filter document batches against a workload split over N shards.

    Configure either through a consolidated
    :class:`~repro.engine.config.EngineConfig` (``config=``, the
    :func:`~repro.engine.factory.create_engine` path) or through the
    historical keyword arguments; ``config`` wins when both are given.

    Args:
        filters: the workload (``XPathFilter`` list, or oid→xpath
            mapping / list of sources as accepted by ``parse_workload``).
        shards: number of shards (1 = serial, no processes).
        config: consolidated engine configuration (subsumes every
            keyword below plus ``inner`` and ``compact_threshold``).
        options: machine options, shared by every shard.
        dtd: optional DTD (order optimisation / training).
        strategy: partitioning strategy (:data:`PARTITION_STRATEGIES`).
        batch_size: documents per work item fanned out to the shards.
        queue_depth: max in-flight work items (backpressure bound).
        parallel: force processes on (True), off (False) or auto (None).
        warm: warm each shard machine via ``warm_up()`` at boot.
        training_seed: seed for the warm-up document generator.
        result_timeout: seconds of *no progress* before a batch is
            declared stuck and :class:`ServiceError` is raised.
        start_method: multiprocessing start method override.
        backend: parser backend the workers use on the push-mode event
            path (``"python"``, ``"expat"`` or ``"auto"``; see
            :func:`repro.xmlstream.parser.parse_into`).  Answers are
            backend-independent — this is a throughput knob only.
    """

    name = "sharded"

    def __init__(
        self,
        filters: Sequence[XPathFilter] | dict[str, str] | list[str],
        shards: int = 2,
        *,
        config: EngineConfig | None = None,
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        strategy: str = "hash",
        batch_size: int = 16,
        queue_depth: int = 4,
        parallel: bool | None = None,
        warm: bool = True,
        training_seed: int = 0,
        result_timeout: float = 60.0,
        start_method: str | None = None,
        backend: str = "auto",
        placement: str = "hash",
        sample_documents: Sequence[Document] | None = None,
    ):
        if config is None:
            config = EngineConfig(
                engine="sharded",
                options=options
                or XPushOptions(top_down=True, precompute_values=False),
                dtd=dtd,
                backend=backend,
                shards=int(shards),
                strategy=strategy,
                placement=placement,
                batch_size=int(batch_size),
                queue_depth=int(queue_depth),
                parallel=parallel,
                warm=warm,
                training_seed=training_seed,
                result_timeout=float(result_timeout),
                start_method=start_method,
            )
        self.config = config
        self.shards = config.shards
        self.inner = config.inner
        self.options = config.options
        self.dtd = config.dtd
        self.strategy = config.strategy
        self.placement = config.placement
        self.rebalance_threshold = config.rebalance_threshold
        self.rebalance_interval = config.rebalance_interval
        self.batch_size = config.batch_size
        self.queue_depth = config.queue_depth
        self.warm = config.warm
        self.training_seed = config.training_seed
        self.result_timeout = config.result_timeout
        self.backend = config.backend

        if filters and not isinstance(next(iter(filters)), XPathFilter):
            filters = parse_workload(filters)  # type: ignore[arg-type]
        self.filters = list(filters)  # type: ignore[arg-type]

        self.documents = 0
        self.batches = 0
        self.worker_restarts = 0
        self.idle_wakeups = 0
        self.rebalances = 0
        self.splits = 0
        self.merges = 0
        self.migrations = 0
        self.latency = LatencyTracker()
        #: Per-fan-out critical path — the slowest shard's share of each
        #: batch.  In parallel mode this equals the batch latency; in
        #: the serial fallback it is measured per shard and *modelled*
        #: (what an ideally parallel run of this placement would cost),
        #: which is what the placement benchmarks gate on.
        self.critical_path = LatencyTracker()
        #: Submit → first delivered match, per document that matched
        #: anything (populated while an ``on_match`` sink is attached).
        self.first_match = LatencyTracker()
        #: Event-time match sink (FilterEngine protocol): fired as
        #: worker match messages arrive, ahead of batch completion.
        #: ``doc_index`` is relative to the current filter call;
        #: ``event_index`` is the deciding event within the document.
        #: Emission order is monotone per shard, not globally — shards
        #: scan the same document independently.
        self.on_match: MatchHook | None = None
        # Document-index offset of the batch currently in flight —
        # filter_events fans one call out over several filter_batch
        # calls and on_match must report call-relative indexes.
        self._doc_base = 0
        self._batch_counter = 0
        self._epoch = 0
        self._closed = False
        self._engines: dict[int, Any] = {}  # serial fallback, shard -> engine
        self._workers: dict[int, _WorkerHandle] = {}
        self._payloads: dict[int, dict] = {}
        #: The routing table: oid → owning shard for every *live*
        #: subscription — the single source of truth for placement,
        #: carried in snapshots and projected into worker payloads.
        self._routing: dict[str, int] = {}
        #: oid → XPath source, retained for migrations (a move re-sends
        #: the filter to its new shard as a subscribe control).
        self._sources: dict[str, str] = {}
        #: Per-filter cost model (AFA states × σ̂); maintained under
        #: both policies so the load gauges never go dark.
        self._cost = CostModel()
        #: Cumulative per-shard busy seconds in the serial fallback
        #: (parallel workers measure their own and report it in info).
        self._busy: dict[int, float] = {}
        # Batch count at the last auto-rebalance check.
        self._auto_marker = 0
        for xpath_filter in self.filters:
            self._cost.add(xpath_filter)
            self._sources[xpath_filter.oid] = xpath_filter.source or str(
                xpath_filter.path
            )
        if sample_documents:
            self._cost.seed(self.filters, list(sample_documents))

        self._ctx = None
        parallel = config.parallel
        if parallel is None:
            parallel = self.shards > 1
        if parallel and self.shards > 1:
            self._ctx = _mp_context(config.start_method)
        self.parallel = self._ctx is not None

        if self.placement == "cost":
            shard_filters = place_filters(self.filters, self.shards, self._cost)
        else:
            shard_filters = partition_filters(self.filters, self.shards, self.strategy)
        for shard_id, shard in enumerate(shard_filters):
            for xpath_filter in shard:
                self._routing[xpath_filter.oid] = shard_id
        if self.parallel:
            self._boot_workers(shard_filters)
        else:
            self._boot_serial(shard_filters)

    @classmethod
    def from_xpath(cls, sources: dict[str, str] | list[str], shards: int = 2, **kwargs):
        return cls(parse_workload(sources), shards, **kwargs)

    # ------------------------------------------------------------------
    # Boot paths
    # ------------------------------------------------------------------

    def _inner_config(self, *, dtd: DTD | None, options: XPushOptions) -> EngineConfig:
        """The per-shard config handed to :func:`create_engine`."""
        return replace(
            self.config,
            engine=self.inner,
            options=options,
            dtd=dtd,
            shards=1,
            parallel=False,
        )

    def _boot_serial(self, shard_filters: list[list[XPathFilter]]) -> None:
        from repro.engine.factory import create_engine

        inner_config = self._inner_config(dtd=self.dtd, options=self.options)
        for shard_id in range(self.shards):
            engine = create_engine(inner_config, shard_filters[shard_id])
            if self.warm and not self.options.train:
                warm_up = getattr(engine, "warm_up", None)
                if warm_up is not None:
                    warm_up(seed=self.training_seed)
            self._engines[shard_id] = engine

    def _worker_config(self) -> EngineConfig:
        """The inner config shipped across the process boundary.

        A DTD that cannot be pickled is dropped; the order optimisation
        and schema specialization need it, so those switch off in the
        workers — performance knobs only, answers are unchanged.
        """
        dtd = self.dtd
        options = self.options
        if dtd is not None and not _picklable(dtd):
            dtd = None
            options = replace(options, order=False, train=False, schema_mode="off")
        return self._inner_config(dtd=dtd, options=options)

    def _boot_workers(self, shard_filters: list[list[XPathFilter]]) -> None:
        from repro.service.worker import build_payload

        inner_config = self._worker_config()
        for shard_id in range(self.shards):
            self._payloads[shard_id] = build_payload(
                inner_config,
                self._shard_snapshot(shard_filters[shard_id]),
                warm=self.warm,
                training_seed=self.training_seed,
                oids=[f.oid for f in shard_filters[shard_id]],
            )
            handle = _WorkerHandle(shard_id)
            self._workers[shard_id] = handle
            self._spawn(handle)

    def _shard_snapshot(self, shard: list[XPathFilter]) -> dict:
        """One shard's boot snapshot in its inner engine's own format.

        For the layered inner engine the base ships *compiled*
        (:mod:`repro.xpush.persist` JSON) — AFA compilation happens
        once, here in the parent.  Other inner kinds ship sources.
        """
        if self.inner == "layered":
            from repro.afa.build import build_workload_automata
            from repro.xpush.persist import workload_to_json

            return {
                "format": LAYERED_FORMAT,
                "version": 1,
                "base": (
                    workload_to_json(build_workload_automata(shard)) if shard else None
                ),
                "delta": {},
                "tombstones": [],
            }
        from repro.engine.serial import sources_snapshot

        return sources_snapshot(self.inner, {f.oid: f for f in shard})

    def _spawn(self, handle: _WorkerHandle) -> None:
        from repro.service.worker import worker_main

        for stale in (handle.tasks, handle.results):
            if stale is not None:  # free the dead incarnation's pipes
                try:
                    stale.close()
                except (OSError, ValueError):
                    pass
        # Small slack above queue_depth so a restart can always requeue
        # every pending batch without blocking on its own bound.
        handle.tasks = self._ctx.Queue(maxsize=self.queue_depth + 2)
        # Per-incarnation result queue: a worker hard-killed while its
        # feeder thread holds a shared queue's pipe write-lock would
        # poison every other writer forever, so no queue is ever shared
        # between workers, and a restart abandons the old incarnation's
        # queue (late pre-crash answers die with it).
        handle.results = self._ctx.Queue()
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.shard_id, self._payloads[handle.shard_id], handle.tasks, handle.results),
            daemon=True,
            name=f"repro-shard-{handle.shard_id}",
        )
        handle.process.start()

    def _restart(self, handle: _WorkerHandle) -> None:
        # The payload was updated at every subscribe/unsubscribe, so the
        # respawned worker resumes the *current* workload epoch; control
        # messages lost with the old task queue are already in it.
        self.worker_restarts += 1
        if handle.process is not None:
            handle.process.join(timeout=1.0)
        self._spawn(handle)
        for batch_id, (texts, emit) in sorted(handle.pending.items()):
            handle.tasks.put(("batch", batch_id, texts, emit))

    def _check_workers(self) -> None:
        for handle in self._workers.values():
            if handle.dead:
                self._restart(handle)

    # ------------------------------------------------------------------
    # Update control plane
    # ------------------------------------------------------------------

    @property
    def filter_count(self) -> int:
        return len(self._routing)

    @property
    def epoch(self) -> int:
        """The workload version: bumped by every update."""
        return self._epoch

    @property
    def routing(self) -> dict[str, int]:
        """A copy of the oid → shard routing table."""
        return dict(self._routing)

    def _route_new(self, oid: str) -> int:
        """Shard for a post-boot subscribe, per the placement policy."""
        if self.placement != "cost":
            return shard_of_oid(oid, self.shards)
        loads = shard_loads(self._routing, self._cost.costs(), self.shards)
        return route_new(oid, loads, "cost")

    def subscribe(self, oid: str, xpath: str) -> None:
        """Add a filter while serving.  Validated here, applied on the
        shard the placement policy picks (CRC-32 under ``hash``, the
        lightest shard under ``cost``) without flushing its warmed base
        tables."""
        if self._closed:
            raise ServiceError("engine is closed")
        if oid in self._routing:
            raise WorkloadError(f"oid {oid!r} already subscribed")
        parsed = parse_xpath(xpath, oid)  # eager; workers trust the parent
        shard_id = self._route_new(oid)
        self._epoch += 1
        self._routing[oid] = shard_id
        self._sources[oid] = xpath
        self._cost.add(parsed)
        if self.parallel:
            self._fold_insert(self._payloads[shard_id], oid, xpath)
            self._send_control(shard_id, ("subscribe", oid, xpath))
        else:
            self._engines[shard_id].subscribe(oid, xpath)

    def unsubscribe(self, oid: str) -> None:
        """Drop a filter while serving; a tombstone on its shard until
        the next compaction."""
        if self._closed:
            raise ServiceError("engine is closed")
        if oid not in self._routing:
            raise WorkloadError(f"unknown oid {oid!r}")
        shard_id = self._routing.pop(oid)
        self._sources.pop(oid, None)
        self._cost.drop(oid)
        self._epoch += 1
        if self.parallel:
            self._fold_remove(self._payloads[shard_id], oid)
            self._send_control(shard_id, ("unsubscribe", oid))
        else:
            self._engines[shard_id].unsubscribe(oid)

    def compact(self) -> None:
        """Fold every shard's delta and tombstones into a fresh base —
        the brute-force reset, amortised to once per update epoch."""
        if self._closed:
            raise ServiceError("engine is closed")
        self._epoch += 1
        if self.parallel:
            for shard_id in range(self.shards):
                self._fold_compact(self._payloads[shard_id])
                self._send_control(shard_id, ("compact",))
        else:
            for engine in self._engines.values():
                compact = getattr(engine, "compact", None)
                if compact is not None:
                    compact()

    # Placement verbs — hot-shard management on the same control plane.
    # Each verb runs between batch fan-outs (filter_batch drains its
    # in-flight work before returning), so every batch is answered
    # entirely pre-move or entirely post-move and answers stay exactly
    # the serial machine's at every epoch.

    def shard_load(self) -> list[float]:
        """Per-shard cost totals under the current routing table."""
        return shard_loads(self._routing, self._cost.costs(), self.shards)

    def imbalance(self) -> float:
        """Hottest-shard load over mean load (1.0 = balanced)."""
        return imbalance(self.shard_load())

    def seed_placement(self, documents: Sequence[Document]) -> None:
        """Seed the cost model's σ̂ from a document sample (the live
        match-rate feedback keeps refining it afterwards)."""
        self._cost.seed(self.filters, list(documents))

    def rebalance(self) -> list[Move]:
        """Migrate filters between shards until the cost-model
        imbalance is within ``rebalance_threshold`` (or no single move
        improves it); returns the executed moves.  One epoch bump for
        the whole plan."""
        if self._closed:
            raise ServiceError("engine is closed")
        moves = plan_rebalance(
            self._routing, self._cost.costs(), self.shards, self.rebalance_threshold
        )
        if moves:
            self._apply_moves(moves)
            self.rebalances += 1
        return moves

    def maybe_rebalance(self) -> bool:
        """Hot-shard detection: rebalance iff the imbalance gauge
        exceeds ``rebalance_threshold``.  True when moves executed."""
        if self.imbalance() <= self.rebalance_threshold:
            return False
        return bool(self.rebalance())

    def split(self) -> int:
        """Add one shard (an empty worker) and rebalance filters onto
        it; returns the new shard count."""
        if self._closed:
            raise ServiceError("engine is closed")
        new_id = self.shards
        self.shards += 1
        self._epoch += 1
        if self.parallel:
            from repro.service.worker import build_payload

            payload = build_payload(
                self._worker_config(),
                self._shard_snapshot([]),
                warm=self.warm,
                training_seed=self.training_seed,
                oids=[],
            )
            payload["epoch"] = self._epoch
            self._payloads[new_id] = payload
            handle = _WorkerHandle(new_id)
            self._workers[new_id] = handle
            self._spawn(handle)
        else:
            from repro.engine.factory import create_engine

            inner_config = self._inner_config(dtd=self.dtd, options=self.options)
            self._engines[new_id] = create_engine(inner_config, [])
        self.splits += 1
        moves = plan_rebalance(
            self._routing, self._cost.costs(), self.shards, self.rebalance_threshold
        )
        if moves:
            self._apply_moves(moves)
        return self.shards

    def merge(self) -> int:
        """Drain the last shard onto the others and retire its worker;
        returns the new shard count."""
        if self._closed:
            raise ServiceError("engine is closed")
        if self.shards <= 1:
            raise ServiceError("cannot merge a single-shard engine")
        victim = self.shards - 1
        moves = plan_drain(victim, self._routing, self._cost.costs(), self.shards)
        self._epoch += 1
        self.migrations += len(moves)
        for move in moves:
            source = self._sources[move.oid]
            self._routing[move.oid] = move.target
            if self.parallel:
                self._fold_insert(self._payloads[move.target], move.oid, source)
                self._send_control(move.target, ("subscribe", move.oid, source))
            else:
                self._engines[move.target].subscribe(move.oid, source)
        # The victim needs no per-filter unsubscribes — the whole
        # worker (or in-process engine) is retired with its state.
        if self.parallel:
            handle = self._workers.pop(victim)
            self._stop_handle(handle)
            self._payloads.pop(victim, None)
        else:
            engine = self._engines.pop(victim)
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        self.shards -= 1
        self.merges += 1
        return self.shards

    def _apply_moves(self, moves: Sequence[Move]) -> None:
        """Execute a migration plan as one epoch of control messages.

        Add before remove: if a crash interleaves, the filter is
        transiently live on both shards — benign, because per-document
        answers are unioned — whereas remove-first would open a window
        where neither shard answers for it.
        """
        self._epoch += 1
        self.migrations += len(moves)
        for move in moves:
            source = self._sources[move.oid]
            self._routing[move.oid] = move.target
            if self.parallel:
                self._fold_insert(self._payloads[move.target], move.oid, source)
                self._send_control(move.target, ("subscribe", move.oid, source))
                self._fold_remove(self._payloads[move.source], move.oid)
                self._send_control(move.source, ("unsubscribe", move.oid))
            else:
                self._engines[move.target].subscribe(move.oid, source)
                self._engines[move.source].unsubscribe(move.oid)

    def _send_control(self, shard_id: int, op: tuple) -> None:
        handle = self._workers[shard_id]
        # If the worker is dead, _put_task restarts it from the payload
        # the update was just folded into — the control message itself
        # is then redundant and deliberately not re-sent.
        self._put_task(handle, ("control", self._epoch, *op))

    # Payload folding — the crash-recovery half of the control plane.
    # Each helper mirrors exactly what the live control message does to
    # the worker's inner engine, expressed on the boot snapshot.

    def _fold_insert(self, payload: dict, oid: str, xpath: str) -> None:
        snap = payload["snapshot"]
        if snap.get("format") == LAYERED_FORMAT:
            snap["tombstones"] = [t for t in snap["tombstones"] if t != oid]
            snap["delta"][oid] = xpath
        else:
            snap["filters"][oid] = xpath
        oids = payload.setdefault("oids", [])
        if oid not in oids:
            oids.append(oid)
        payload["epoch"] = self._epoch

    def _fold_remove(self, payload: dict, oid: str) -> None:
        snap = payload["snapshot"]
        if snap.get("format") == LAYERED_FORMAT:
            if oid not in snap["tombstones"]:
                snap["tombstones"].append(oid)
        else:
            snap["filters"].pop(oid, None)
        oids = payload.setdefault("oids", [])
        if oid in oids:
            oids.remove(oid)
        payload["epoch"] = self._epoch

    def _fold_compact(self, payload: dict) -> None:
        snap = payload["snapshot"]
        if snap.get("format") == LAYERED_FORMAT:
            from repro.afa.build import build_workload_automata
            from repro.xpush.persist import workload_to_json

            sources: dict[str, str] = {
                afa["oid"]: afa["source"]
                for afa in (snap["base"] or {"afas": []})["afas"]
            }
            sources.update(snap["delta"])
            for oid in snap["tombstones"]:
                sources.pop(oid, None)
            filters = [parse_xpath(source, oid) for oid, source in sources.items()]
            snap["base"] = (
                workload_to_json(build_workload_automata(filters)) if filters else None
            )
            snap["delta"] = {}
            snap["tombstones"] = []
        payload["epoch"] = self._epoch

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def filter_batch(self, documents: Iterable[Document]) -> list[frozenset[str]]:
        """Filter *documents*; one oid-set per document, serial-identical."""
        if self._closed:
            raise ServiceError("engine is closed")
        docs = list(documents)
        if not docs:
            return []
        self.documents += len(docs)
        if not self._routing:
            # No live filter can match; tombstoned machines would only
            # produce answers the merge drops anyway.
            self.batches += 1
            return [frozenset()] * len(docs)
        if not self.parallel:
            results = self._filter_batch_serial(docs)
        else:
            results = self._filter_batch_parallel(docs)
        # Live selectivity feedback: fold the answered match rates into
        # the cost model, then let hot-shard detection act on them.
        self._cost.observe(results)
        if (
            self.placement == "cost"
            and self.rebalance_interval > 0
            and self.batches - self._auto_marker >= self.rebalance_interval
        ):
            self._auto_marker = self.batches
            self.maybe_rebalance()
        return results

    def _filter_batch_serial(self, docs: list[Document]) -> list[frozenset[str]]:
        merged: list[set[str]] = [set() for _ in docs]
        hook = self.on_match
        for offset in range(0, len(docs), self.batch_size):
            chunk = docs[offset : offset + self.batch_size]
            started = time.perf_counter()
            # Per-shard busy seconds within this fan-out: the maximum
            # is the critical path an ideally parallel run would pay —
            # the modelled latency the placement benchmarks gate on.
            chunk_busy: dict[int, float] = {}
            for index, doc in enumerate(chunk):
                if hook is None:
                    for shard_id, engine in self._engines.items():
                        shard_started = time.perf_counter()
                        merged[offset + index] |= engine.filter_document(doc)
                        chunk_busy[shard_id] = chunk_busy.get(shard_id, 0.0) + (
                            time.perf_counter() - shard_started
                        )
                else:
                    merged[offset + index] |= self._filter_document_emitting(
                        doc, offset + index, started, hook, chunk_busy
                    )
            self.batches += 1
            self.latency.record(time.perf_counter() - started)
            if chunk_busy:
                self.critical_path.record(max(chunk_busy.values()))
                for shard_id, busy in chunk_busy.items():
                    self._busy[shard_id] = self._busy.get(shard_id, 0.0) + busy
        return [frozenset(s) for s in merged]

    def _filter_document_emitting(
        self,
        doc: Document,
        doc_pos: int,
        started: float,
        hook: MatchHook,
        chunk_busy: dict[int, float],
    ) -> set[str]:
        """One document through every in-process shard engine with the
        event-time relay wired.  Shard workloads are disjoint, so no
        cross-shard dedup is needed; the first relay fire records the
        document's first-match latency against the batch start."""
        matched: set[str] = set()
        pending_first = [True]
        doc_index = self._doc_base + doc_pos

        def _relay(oid: str, _d: int, event_index: int) -> None:
            if pending_first[0]:
                pending_first[0] = False
                self.first_match.record(time.perf_counter() - started)
            hook(oid, doc_index, event_index)

        for shard_id, engine in self._engines.items():
            engine.on_match = _relay
            shard_started = time.perf_counter()
            try:
                matched |= engine.filter_document(doc)
            finally:
                engine.on_match = None
                chunk_busy[shard_id] = chunk_busy.get(shard_id, 0.0) + (
                    time.perf_counter() - shard_started
                )
        return matched

    def _filter_batch_parallel(self, docs: list[Document]) -> list[frozenset[str]]:
        texts = [document_to_xml(doc) for doc in docs]
        merged: list[set[str]] = [set() for _ in docs]
        outstanding: dict[int, dict] = {}
        emit = self.on_match is not None
        for offset in range(0, len(texts), self.batch_size):
            while len(outstanding) >= self.queue_depth:
                self._collect_once(outstanding, merged)
            chunk = texts[offset : offset + self.batch_size]
            self._batch_counter += 1
            batch_id = self._batch_counter
            outstanding[batch_id] = {
                "offset": offset,
                "size": len(chunk),
                "waiting": set(self._workers),
                "started": time.perf_counter(),
                # Event-time delivery bookkeeping: (doc_offset, oid)
                # pairs already delivered (resubmitted batches re-stream
                # their matches), and doc offsets whose first match has
                # been latency-recorded.
                "emitted": set(),
                "firsts": set(),
            }
            for handle in self._workers.values():
                handle.pending[batch_id] = (chunk, emit)
                self._put_task(handle, ("batch", batch_id, chunk, emit))
        while outstanding:
            self._collect_once(outstanding, merged)
        return [frozenset(s) for s in merged]

    def _put_task(self, handle: _WorkerHandle, task: tuple) -> None:
        deadline = time.monotonic() + self.result_timeout
        while True:
            if handle.dead:
                # _restart resubmits everything in handle.pending —
                # including the batch this task carries — so done.
                self._restart(handle)
                return
            try:
                handle.tasks.put(task, timeout=0.1)
                return
            except queue_module.Full:
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"shard {handle.shard_id}: task queue stuck for "
                        f"{self.result_timeout:.0f}s"
                    ) from None

    def _collect_once(self, outstanding: dict[int, dict], merged: list[set[str]]) -> None:
        """Receive one message (or tick liveness checks) and fold it in."""
        deadline = time.monotonic() + self.result_timeout
        wakeups = 0
        while True:
            # Sweep every live worker's own result queue.  Never a
            # blocking get on a single shared queue: each incarnation
            # writes to a private queue, so one dying mid-write can
            # never wedge the others' answers behind a poisoned lock.
            message = None
            for handle in self._workers.values():
                if handle.results is None:
                    continue
                try:
                    message = handle.results.get_nowait()
                    break
                except queue_module.Empty:
                    continue
            if message is not None:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                waiting = {
                    bid: sorted(info["waiting"]) for bid, info in outstanding.items()
                }
                raise ServiceError(
                    f"no shard progress for {self.result_timeout:.0f}s; "
                    f"waiting on {waiting}"
                ) from None
            wakeups += 1
            self.idle_wakeups += 1
            self._check_workers()
            time.sleep(_poll_timeout(wakeups, remaining))
        kind = message[0]
        if kind == "ready":
            _, shard_id, info = message
            if shard_id in self._workers:
                self._workers[shard_id].info = info
            return
        if kind == "match":
            # Event-time delivery: a worker decided one match mid-batch.
            # FIFO per-worker queues guarantee a shard's match messages
            # precede its batch reply, so every match is folded in
            # before the batch completes.
            _, shard_id, batch_id, doc_offset, oid, event_index = message
            info_entry = outstanding.get(batch_id)
            if info_entry is None or shard_id not in info_entry["waiting"]:
                return  # late duplicate from a pre-crash incarnation
            key = (doc_offset, oid)
            if key in info_entry["emitted"]:
                return  # resubmitted batch re-streamed this match
            info_entry["emitted"].add(key)
            if doc_offset not in info_entry["firsts"]:
                info_entry["firsts"].add(doc_offset)
                self.first_match.record(
                    time.perf_counter() - info_entry["started"]
                )
            hook = self.on_match
            if hook is not None:
                hook(
                    oid,
                    self._doc_base + info_entry["offset"] + doc_offset,
                    event_index,
                )
            return
        if kind == "error":
            _, shard_id, batch_id, text = message
            raise ServiceError(f"shard {shard_id} failed on batch {batch_id}: {text}")
        _, shard_id, batch_id, answers, info = message
        handle = self._workers.get(shard_id)
        info_entry = outstanding.get(batch_id)
        if handle is not None:
            handle.info = info
            handle.pending.pop(batch_id, None)
        if info_entry is None or shard_id not in info_entry["waiting"]:
            return  # duplicate from a pre-crash incarnation
        if len(answers) != info_entry["size"]:
            raise ServiceError(
                f"shard {shard_id} returned {len(answers)} answers for a "
                f"batch of {info_entry['size']} documents"
            )
        info_entry["waiting"].discard(shard_id)
        offset = info_entry["offset"]
        for index, oids in enumerate(answers):
            merged[offset + index] |= oids
        if not info_entry["waiting"]:
            self.batches += 1
            elapsed = time.perf_counter() - info_entry["started"]
            self.latency.record(elapsed)
            # Workers run concurrently: the wall time to the last shard
            # reply *is* the fan-out's critical path.
            self.critical_path.record(elapsed)
            del outstanding[batch_id]

    def filter_document(self, document: Document) -> frozenset[str]:
        """Filter a single document (a batch of one)."""
        return self.filter_batch([document])[0]

    def filter_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        """Filter a SAX event stream; one oid-set per document.

        Documents are cut at ``EndDocument`` boundaries and fanned out
        in ``batch_size`` groups, so an unbounded stream is processed
        with bounded buffering (one batch of documents at a time).
        """
        answers: list[frozenset[str]] = []
        buffer: list[Event] = []
        docs: list[Document] = []
        try:
            for event in events:
                buffer.append(event)
                if isinstance(event, EndDocument):
                    docs.extend(documents_of_events(buffer))
                    buffer = []
                    if len(docs) >= self.batch_size:
                        self._doc_base = len(answers)
                        answers.extend(self.filter_batch(docs))
                        docs = []
            if buffer:
                docs.extend(documents_of_events(buffer))
            if docs:
                self._doc_base = len(answers)
                answers.extend(self.filter_batch(docs))
        finally:
            self._doc_base = 0
        return answers

    def filter_stream(
        self, source: Union[str, bytes, IO[str], IO[bytes]]
    ) -> list[frozenset[str]]:
        """Parse a (possibly multi-document) XML source and filter it."""
        if not isinstance(source, (str, bytes)):
            source = source.read()
        if isinstance(source, bytes):
            source = source.decode("utf-8")
        return self.filter_batch(parse_forest(source, backend=self.backend))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Capture the sharded workload: one inner-engine snapshot per
        shard plus the routing map and epoch.  In parallel mode this is
        the parent's folded view — authoritative for workload
        composition even while workers are mid-update."""
        if self.parallel:
            shard_snapshots = [
                self._payloads[shard_id]["snapshot"] for shard_id in range(self.shards)
            ]
        else:
            shard_snapshots = [
                self._engines[shard_id].snapshot() for shard_id in range(self.shards)
            ]
        from repro.engine.serial import record_schema_identity

        out: dict[str, Any] = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "shards": self.shards,
            "inner": self.inner,
            "strategy": self.strategy,
            "placement": self.placement,
            "epoch": self._epoch,
            "routing": dict(self._routing),
            "shard_snapshots": shard_snapshots,
        }
        record_schema_identity(out, self.config)
        return out

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Replace the workload with a :meth:`snapshot` capture; the
        shard processes are rebooted from the captured shard states."""
        from repro.engine.factory import create_engine
        from repro.service.worker import build_payload
        from repro.xpush.persist import PersistError

        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise PersistError("not a persisted sharded engine snapshot")
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise PersistError(
                f"unsupported sharded snapshot version {snapshot.get('version')!r}"
            )
        shard_snapshots = snapshot.get("shard_snapshots")
        if not isinstance(shard_snapshots, list) or len(shard_snapshots) != int(
            snapshot.get("shards", -1)
        ):
            raise PersistError("malformed sharded snapshot: shard_snapshots")
        from repro.engine.serial import apply_schema_identity

        config = apply_schema_identity(snapshot, self.config)
        if config is not self.config:
            self.config = config
            self.options = config.options
        self._shutdown_workers()
        self.shards = int(snapshot["shards"])
        self.inner = str(snapshot.get("inner", self.inner))
        self.placement = str(snapshot.get("placement", self.placement))
        self._epoch = int(snapshot.get("epoch", 0))
        self._routing = {
            str(oid): int(shard) for oid, shard in snapshot.get("routing", {}).items()
        }
        # Rebuild the migration sources and the cost model from the
        # captured shard workloads (σ̂ restarts from zero — live match
        # rates are runtime state, re-earned from traffic).
        self._sources = {}
        self._cost = CostModel()
        self._busy = {}
        for shard_snap in shard_snapshots:
            for oid, source in _snapshot_sources(shard_snap).items():
                self._sources[oid] = source
                if oid in self._routing:
                    self._cost.add_source(oid, source)
        self._payloads = {}
        if self.parallel:
            inner_config = self._worker_config()
            for shard_id in range(self.shards):
                payload = build_payload(
                    inner_config,
                    shard_snapshots[shard_id],
                    warm=self.warm,
                    training_seed=self.training_seed,
                    oids=[
                        oid
                        for oid, shard in self._routing.items()
                        if shard == shard_id
                    ],
                )
                payload["epoch"] = self._epoch
                self._payloads[shard_id] = payload
                handle = _WorkerHandle(shard_id)
                self._workers[shard_id] = handle
                self._spawn(handle)
        else:
            inner_config = self._inner_config(dtd=self.dtd, options=self.options)
            for shard_id in range(self.shards):
                engine = create_engine(
                    inner_config, snapshot=shard_snapshots[shard_id]
                )
                if self.warm and not self.options.train:
                    warm_up = getattr(engine, "warm_up", None)
                    if warm_up is not None:
                        warm_up(seed=self.training_seed)
                self._engines[shard_id] = engine

    # ------------------------------------------------------------------
    # Test hooks, stats, lifecycle
    # ------------------------------------------------------------------

    def inject_crash(self, shard_id: int, exit_code: int = 17) -> None:
        """Make *shard_id*'s worker die on its next task (tests only)."""
        if not self.parallel:
            raise ServiceError("inject_crash requires parallel mode")
        handle = self._workers[shard_id]
        handle.tasks.put(("crash", exit_code))

    _INFO_KEYS = (
        ("afa_states", 0),
        ("xpush_states", 0),
        ("hit_ratio", 0.0),
        ("resident_bytes", 0),
        ("table_entries", 0),
        ("evictions", 0),
        ("gc_states", 0),
        ("flushes", 0),
        ("base_states", 0),
        ("delta_states", 0),
        ("tombstones", 0),
        ("codegen_compile_ms", 0.0),
        ("codegen_handlers", 0),
        ("codegen_fallbacks", 0),
        ("schema_pruned_states", 0),
        ("schema_pruned_edges", 0),
        ("schema_fallbacks", 0),
        ("busy_s", 0.0),
    )

    def _shard_filter_count(self, shard_id: int) -> int:
        return sum(1 for shard in self._routing.values() if shard == shard_id)

    def stats(self) -> dict:
        loads = self.shard_load()
        per_shard = []
        for shard_id in range(self.shards):
            entry: dict = {
                "shard": shard_id,
                "filters": self._shard_filter_count(shard_id),
                "load": loads[shard_id],
            }
            engine = self._engines.get(shard_id)
            if engine is not None:
                info = engine.stats()
                info["applied_epoch"] = self._epoch
                info["busy_s"] = self._busy.get(shard_id, 0.0)
            elif shard_id in self._workers:
                info = self._workers[shard_id].info
            else:
                info = {}
            for key, default in self._INFO_KEYS:
                entry[key] = info.get(key, default)
            entry["applied_epoch"] = info.get("applied_epoch", 0)
            per_shard.append(entry)
        depths = []
        for handle in self._workers.values():
            try:
                depths.append(handle.tasks.qsize())
            except (NotImplementedError, OSError):
                depths.append(-1)
        return {
            "engine": self.name,
            "filters": self.filter_count,
            "epoch": self._epoch,
            "inner": self.inner,
            "shards": self.shards,
            "strategy": self.strategy,
            "placement": self.placement,
            "backend": self.backend,
            "runtime": self.options.runtime,
            "schema_mode": self.options.schema_mode,
            "parallel": self.parallel,
            "serial_fallback": not self.parallel,
            "batch_size": self.batch_size,
            "queue_depth": self.queue_depth,
            "documents": self.documents,
            "batches": self.batches,
            "worker_restarts": self.worker_restarts,
            "idle_wakeups": self.idle_wakeups,
            "resident_bytes": sum(e["resident_bytes"] for e in per_shard),
            "evictions": sum(e["evictions"] for e in per_shard),
            "xpush_states": sum(e["xpush_states"] for e in per_shard),
            "queue_depths": depths,
            "per_shard": per_shard,
            "shard_load": loads,
            "imbalance": self.imbalance(),
            "rebalances": self.rebalances,
            "splits": self.splits,
            "merges": self.merges,
            "migrations": self.migrations,
            "batch_latency": self.latency.snapshot(),
            "first_match_latency": self.first_match.snapshot(),
            "critical_path_latency": self.critical_path.snapshot(),
        }

    def _stop_handle(self, handle: "_WorkerHandle") -> None:
        if handle.process is None:
            return
        try:
            handle.tasks.put_nowait(("stop",))
        except queue_module.Full:
            pass
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)

    def _shutdown_workers(self) -> None:
        for handle in self._workers.values():
            self._stop_handle(handle)
        self._workers.clear()
        for engine in self._engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        self._engines.clear()

    def close(self) -> None:
        """Stop all workers; the engine cannot filter afterwards."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_workers()

    def __enter__(self) -> "ShardedFilterEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-time best effort
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
