"""The parent-side orchestrator: :class:`ShardedFilterEngine`.

Scaling model (see ``docs/scaling.md``): the *workload* is partitioned
into N shards; every document batch fans out to all shards and the
per-shard oid sets are unioned, so the engine's answers are exactly
the serial machine's answers regardless of N or strategy.

Mechanics:

- shards are compiled once in the parent and shipped to worker
  processes as :mod:`repro.xpush.persist` snapshots (no re-parsing or
  re-compiling in workers); workers warm their machines before
  reporting ready;
- each worker has a *bounded* task queue, and the parent additionally
  caps the number of in-flight batches at ``queue_depth`` — the
  backpressure that keeps an unbounded publisher from ballooning
  memory while still pipelining: batch *i+1* is serialised and
  enqueued while the workers chew batch *i*;
- a worker death is detected at submit or collect time; the worker is
  respawned from its retained payload, every batch it had not yet
  answered is resubmitted, and ``stats()["worker_restarts"]`` counts
  the event.  Duplicate answers from the pre-crash incarnation are
  discarded idempotently;
- ``shards == 1``, ``parallel=False`` or an unusable
  ``multiprocessing`` all degrade to an in-process serial engine with
  the same API and the same answers (``stats()["serial_fallback"]``).
"""

from __future__ import annotations

import queue as queue_module
import time
from typing import Iterable, Sequence

from repro.errors import ReproError, WorkloadError
from repro.service.latency import LatencyTracker
from repro.service.partition import partition_filters
from repro.xmlstream.dom import Document, parse_forest
from repro.xmlstream.dtd import DTD
from repro.xmlstream.writer import document_to_xml
from repro.xpath.ast import XPathFilter
from repro.xpath.parser import parse_workload
from repro.xpush.options import XPushOptions


class ServiceError(ReproError):
    """Raised when the sharded service cannot complete a batch."""


#: First idle-poll timeout of a collect call; doubles per empty wakeup.
IDLE_POLL_START = 0.05

#: Idle-poll ceiling — bounds how long a dead worker can go undetected
#: (liveness checks run on every wakeup).
IDLE_POLL_CAP = 1.0


def _poll_timeout(wakeups: int, remaining: float) -> float:
    """Exponential idle backoff, capped by the liveness ceiling and the
    remaining no-progress budget: an idle engine blocks instead of
    spinning at 20 Hz, but still wakes often enough to respawn dead
    workers and raises exactly at the deadline."""
    backoff = IDLE_POLL_START * (1 << min(wakeups, 10))
    return max(0.0, min(backoff, IDLE_POLL_CAP, remaining))


def _default_options() -> XPushOptions:
    return XPushOptions(top_down=True, precompute_values=False)


def _mp_context(start_method: str | None):
    """A usable multiprocessing context, or None (serial fallback)."""
    try:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        elif start_method not in methods:
            return None
        return multiprocessing.get_context(start_method)
    except (ImportError, ValueError, OSError):
        return None


def _picklable(value) -> bool:
    import pickle

    try:
        pickle.dumps(value)
        return True
    except Exception:  # noqa: BLE001 - any failure means "do not ship it"
        return False


class _WorkerHandle:
    """Parent-side bookkeeping for one shard's worker process."""

    __slots__ = ("shard_id", "process", "tasks", "pending", "info")

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.tasks = None
        self.pending: dict[int, list[str]] = {}  # batch_id -> texts
        self.info: dict = {}

    @property
    def dead(self) -> bool:
        return self.process is None or self.process.exitcode is not None


class ShardedFilterEngine:
    """Filter document batches against a workload split over N shards.

    Args:
        filters: the workload (``XPathFilter`` list, or oid→xpath
            mapping / list of sources as accepted by ``parse_workload``).
        shards: number of shards (1 = serial, no processes).
        options: machine options, shared by every shard.
        dtd: optional DTD (order optimisation / training).
        strategy: partitioning strategy (:data:`PARTITION_STRATEGIES`).
        batch_size: documents per work item fanned out to the shards.
        queue_depth: max in-flight work items (backpressure bound).
        parallel: force processes on (True), off (False) or auto (None).
        warm: warm each shard machine via ``warm_up()`` at boot.
        training_seed: seed for the warm-up document generator.
        result_timeout: seconds of *no progress* before a batch is
            declared stuck and :class:`ServiceError` is raised.
        start_method: multiprocessing start method override.
        backend: parser backend the workers use on the push-mode event
            path (``"python"``, ``"expat"`` or ``"auto"``; see
            :func:`repro.xmlstream.parser.parse_into`).  Answers are
            backend-independent — this is a throughput knob only.
    """

    def __init__(
        self,
        filters: Sequence[XPathFilter] | dict[str, str] | list[str],
        shards: int = 2,
        *,
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        strategy: str = "hash",
        batch_size: int = 16,
        queue_depth: int = 4,
        parallel: bool | None = None,
        warm: bool = True,
        training_seed: int = 0,
        result_timeout: float = 60.0,
        start_method: str | None = None,
        backend: str = "auto",
    ):
        from repro.xmlstream.parser import resolve_backend

        try:
            resolve_backend(backend)  # validate eagerly, fail at build time
        except ValueError as error:
            raise WorkloadError(str(error)) from None
        if batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
        if queue_depth < 1:
            raise WorkloadError(f"queue_depth must be >= 1, got {queue_depth}")
        if filters and not isinstance(next(iter(filters)), XPathFilter):
            filters = parse_workload(filters)  # type: ignore[arg-type]
        self.filters = list(filters)  # type: ignore[arg-type]
        self.shards = int(shards)
        self.options = options or _default_options()
        self.dtd = dtd
        self.strategy = strategy
        self.batch_size = int(batch_size)
        self.queue_depth = int(queue_depth)
        self.warm = warm
        self.training_seed = training_seed
        self.result_timeout = float(result_timeout)
        self.backend = backend

        self._shard_filters = partition_filters(self.filters, self.shards, strategy)
        self._active = [i for i, fs in enumerate(self._shard_filters) if fs]

        self._ctx = None
        if parallel is None:
            parallel = self.shards > 1
        if parallel and self.shards > 1 and self._active:
            self._ctx = _mp_context(start_method)
        self.parallel = self._ctx is not None

        self._workloads: dict[int, object] = {}
        for shard_id in self._active:
            from repro.afa.build import build_workload_automata

            self._workloads[shard_id] = build_workload_automata(
                self._shard_filters[shard_id]
            )

        self.documents = 0
        self.batches = 0
        self.worker_restarts = 0
        self.idle_wakeups = 0
        self.latency = LatencyTracker()
        self._batch_counter = 0
        self._closed = False
        self._machines: dict[int, object] = {}  # serial fallback
        self._workers: dict[int, _WorkerHandle] = {}
        self._results = None
        self._payloads: dict[int, dict] = {}

        if self.parallel:
            self._boot_workers()
        else:
            self._boot_serial()

    @classmethod
    def from_xpath(cls, sources: dict[str, str] | list[str], shards: int = 2, **kwargs):
        return cls(parse_workload(sources), shards, **kwargs)

    # ------------------------------------------------------------------
    # Boot paths
    # ------------------------------------------------------------------

    def _boot_serial(self) -> None:
        from dataclasses import replace

        from repro.xpush.machine import XPushMachine

        # The engine collects every answer itself; a machine retaining
        # its own copy would grow without bound on long streams.
        options = replace(self.options, retain_results=False)
        for shard_id in self._active:
            machine = XPushMachine(
                self._workloads[shard_id], options, dtd=self.dtd
            )
            if self.warm and not self.options.train:
                machine.warm_up(seed=self.training_seed)
            self._machines[shard_id] = machine

    def _boot_workers(self) -> None:
        from dataclasses import replace

        from repro.service.worker import build_payload
        from repro.xpush.persist import workload_to_json

        dtd = self.dtd
        options = self.options
        if dtd is not None and not _picklable(dtd):
            # A DTD that cannot cross the process boundary is dropped;
            # the order optimisation needs it, so switch that off in the
            # workers — a performance knob only, answers are unchanged.
            dtd = None
            options = replace(options, order=False, train=False)
        # Workers report answers over the result queue; retaining them
        # in the machine too would leak one frozenset per document.
        options = replace(options, retain_results=False)
        self._results = self._ctx.Queue()
        for shard_id in self._active:
            self._payloads[shard_id] = build_payload(
                workload_to_json(self._workloads[shard_id]),
                options,
                dtd,
                warm=self.warm,
                training_seed=self.training_seed,
                backend=self.backend,
            )
            handle = _WorkerHandle(shard_id)
            self._workers[shard_id] = handle
            self._spawn(handle)

    def _spawn(self, handle: _WorkerHandle) -> None:
        from repro.service.worker import worker_main

        # Small slack above queue_depth so a restart can always requeue
        # every pending batch without blocking on its own bound.
        handle.tasks = self._ctx.Queue(maxsize=self.queue_depth + 2)
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.shard_id, self._payloads[handle.shard_id], handle.tasks, self._results),
            daemon=True,
            name=f"repro-shard-{handle.shard_id}",
        )
        handle.process.start()

    def _restart(self, handle: _WorkerHandle) -> None:
        self.worker_restarts += 1
        if handle.process is not None:
            handle.process.join(timeout=1.0)
        self._spawn(handle)
        for batch_id, texts in sorted(handle.pending.items()):
            handle.tasks.put(("batch", batch_id, texts))

    def _check_workers(self) -> None:
        for handle in self._workers.values():
            if handle.dead:
                self._restart(handle)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def filter_batch(self, documents: Iterable[Document]) -> list[frozenset[str]]:
        """Filter *documents*; one oid-set per document, serial-identical."""
        if self._closed:
            raise ServiceError("engine is closed")
        docs = list(documents)
        if not docs:
            return []
        self.documents += len(docs)
        if not self._active:
            self.batches += 1
            return [frozenset()] * len(docs)
        if not self.parallel:
            return self._filter_batch_serial(docs)
        return self._filter_batch_parallel(docs)

    def _filter_batch_serial(self, docs: list[Document]) -> list[frozenset[str]]:
        merged: list[set[str]] = [set() for _ in docs]
        for offset in range(0, len(docs), self.batch_size):
            chunk = docs[offset : offset + self.batch_size]
            started = time.perf_counter()
            for index, doc in enumerate(chunk):
                for machine in self._machines.values():
                    merged[offset + index] |= machine.filter_document(doc)
            self.batches += 1
            self.latency.record(time.perf_counter() - started)
        return [frozenset(s) for s in merged]

    def _filter_batch_parallel(self, docs: list[Document]) -> list[frozenset[str]]:
        texts = [document_to_xml(doc) for doc in docs]
        merged: list[set[str]] = [set() for _ in docs]
        outstanding: dict[int, dict] = {}
        for offset in range(0, len(texts), self.batch_size):
            while len(outstanding) >= self.queue_depth:
                self._collect_once(outstanding, merged)
            chunk = texts[offset : offset + self.batch_size]
            self._batch_counter += 1
            batch_id = self._batch_counter
            outstanding[batch_id] = {
                "offset": offset,
                "size": len(chunk),
                "waiting": set(self._workers),
                "started": time.perf_counter(),
            }
            for handle in self._workers.values():
                handle.pending[batch_id] = chunk
                self._put_task(handle, ("batch", batch_id, chunk))
        while outstanding:
            self._collect_once(outstanding, merged)
        return [frozenset(s) for s in merged]

    def _put_task(self, handle: _WorkerHandle, task: tuple) -> None:
        deadline = time.monotonic() + self.result_timeout
        while True:
            if handle.dead:
                # _restart resubmits everything in handle.pending —
                # including the batch this task carries — so done.
                self._restart(handle)
                return
            try:
                handle.tasks.put(task, timeout=0.1)
                return
            except queue_module.Full:
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"shard {handle.shard_id}: task queue stuck for "
                        f"{self.result_timeout:.0f}s"
                    ) from None

    def _collect_once(self, outstanding: dict[int, dict], merged: list[set[str]]) -> None:
        """Receive one message (or tick liveness checks) and fold it in."""
        deadline = time.monotonic() + self.result_timeout
        wakeups = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                waiting = {
                    bid: sorted(info["waiting"]) for bid, info in outstanding.items()
                }
                raise ServiceError(
                    f"no shard progress for {self.result_timeout:.0f}s; "
                    f"waiting on {waiting}"
                ) from None
            try:
                message = self._results.get(timeout=_poll_timeout(wakeups, remaining))
                break
            except queue_module.Empty:
                wakeups += 1
                self.idle_wakeups += 1
                self._check_workers()
        kind = message[0]
        if kind == "ready":
            _, shard_id, info = message
            if shard_id in self._workers:
                self._workers[shard_id].info = info
            return
        if kind == "error":
            _, shard_id, batch_id, text = message
            raise ServiceError(f"shard {shard_id} failed on batch {batch_id}: {text}")
        _, shard_id, batch_id, answers, info = message
        handle = self._workers.get(shard_id)
        info_entry = outstanding.get(batch_id)
        if handle is not None:
            handle.info = info
            handle.pending.pop(batch_id, None)
        if info_entry is None or shard_id not in info_entry["waiting"]:
            return  # duplicate from a pre-crash incarnation
        if len(answers) != info_entry["size"]:
            raise ServiceError(
                f"shard {shard_id} returned {len(answers)} answers for a "
                f"batch of {info_entry['size']} documents"
            )
        info_entry["waiting"].discard(shard_id)
        offset = info_entry["offset"]
        for index, oids in enumerate(answers):
            merged[offset + index] |= oids
        if not info_entry["waiting"]:
            self.batches += 1
            self.latency.record(time.perf_counter() - info_entry["started"])
            del outstanding[batch_id]

    def filter_document(self, document: Document) -> frozenset[str]:
        """Filter a single document (a batch of one)."""
        return self.filter_batch([document])[0]

    def filter_stream(self, text: str) -> list[frozenset[str]]:
        """Parse a (possibly multi-document) XML text and filter it."""
        return self.filter_batch(parse_forest(text, backend=self.backend))

    # ------------------------------------------------------------------
    # Test hooks, stats, lifecycle
    # ------------------------------------------------------------------

    def inject_crash(self, shard_id: int, exit_code: int = 17) -> None:
        """Make *shard_id*'s worker die on its next task (tests only)."""
        if not self.parallel:
            raise ServiceError("inject_crash requires parallel mode")
        handle = self._workers[shard_id]
        handle.tasks.put(("crash", exit_code))

    def stats(self) -> dict:
        per_shard = []
        for shard_id, filters in enumerate(self._shard_filters):
            entry: dict = {"shard": shard_id, "filters": len(filters)}
            workload = self._workloads.get(shard_id)
            entry["afa_states"] = workload.state_count if workload is not None else 0
            machine = self._machines.get(shard_id)
            if machine is not None:
                entry["xpush_states"] = machine.state_count
                entry["hit_ratio"] = machine.stats.hit_ratio
                entry["resident_bytes"] = machine.store.resident_bytes
                entry["table_entries"] = machine.store.table_entries
                entry["evictions"] = machine.stats.evictions
                entry["gc_states"] = machine.stats.gc_states
                entry["flushes"] = machine.stats.flushes
            elif shard_id in self._workers:
                info = self._workers[shard_id].info
                entry["xpush_states"] = info.get("xpush_states", 0)
                entry["hit_ratio"] = info.get("hit_ratio", 0.0)
                entry["resident_bytes"] = info.get("resident_bytes", 0)
                entry["table_entries"] = info.get("table_entries", 0)
                entry["evictions"] = info.get("evictions", 0)
                entry["gc_states"] = info.get("gc_states", 0)
                entry["flushes"] = info.get("flushes", 0)
            else:
                entry["xpush_states"] = 0
                entry["hit_ratio"] = 0.0
                entry["resident_bytes"] = 0
                entry["table_entries"] = 0
                entry["evictions"] = 0
                entry["gc_states"] = 0
                entry["flushes"] = 0
            per_shard.append(entry)
        depths = []
        for handle in self._workers.values():
            try:
                depths.append(handle.tasks.qsize())
            except (NotImplementedError, OSError):
                depths.append(-1)
        return {
            "shards": self.shards,
            "strategy": self.strategy,
            "backend": self.backend,
            "runtime": self.options.runtime,
            "parallel": self.parallel,
            "serial_fallback": not self.parallel,
            "batch_size": self.batch_size,
            "queue_depth": self.queue_depth,
            "documents": self.documents,
            "batches": self.batches,
            "worker_restarts": self.worker_restarts,
            "idle_wakeups": self.idle_wakeups,
            "resident_bytes": sum(e["resident_bytes"] for e in per_shard),
            "evictions": sum(e["evictions"] for e in per_shard),
            "queue_depths": depths,
            "per_shard": per_shard,
            "batch_latency": self.latency.snapshot(),
        }

    def close(self) -> None:
        """Stop all workers; the engine cannot filter afterwards."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.process is None:
                continue
            try:
                handle.tasks.put_nowait(("stop",))
            except queue_module.Full:
                pass
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._workers.clear()
        self._machines.clear()

    def __enter__(self) -> "ShardedFilterEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-time best effort
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
