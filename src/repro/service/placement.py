"""Selectivity-driven shard placement — the cost-model routing layer.

The sharded service partitions the *workload* (filters), not the
document stream; a shard's cost is therefore the sum of its filters'
costs, and blind CRC-32 routing has no defense against cost skew: one
hot filter cluster hashed onto one shard sets the whole fan-out's
critical path.  This module makes placement an explicit, pluggable
layer driven by a per-filter **cost model** in the spirit of the
paper's Theorem 6.2: a filter's runtime weight grows with its automaton
size *and* with the selectivity of its atomic predicates (σ drives how
many lazy states and SAX-event firings it induces).

    cost(f)  =  afa_states(f) × (1 + κ·σ̂(f))

``σ̂`` blends two estimators with pseudo-counts:

- **sampled** — :func:`repro.theory.selectivity.estimate_selectivities`
  over a document pool, aggregated per filter (mean over its atoms);
- **live** — the observed per-oid match rate of the serving engine,
  fed back batch by batch (:meth:`CostModel.observe`).

On top of the model sit pure planning functions: LPT boot placement
(:func:`place_filters`), lightest-shard routing for post-boot
subscribes (:func:`route_new`), per-shard load / imbalance gauges
(:func:`shard_loads` / :func:`imbalance`), and greedy migration
planners (:func:`plan_rebalance`, :func:`plan_drain`) whose
:class:`Move` lists the engine executes as epoch-stamped control-plane
verbs.  Everything here is deterministic — ties break on the oid — so
placement is reproducible across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import WorkloadError
from repro.service.partition import (
    PLACEMENT_POLICIES,
    afa_state_count,
    shard_of_oid,
)
from repro.xmlstream.dom import Document
from repro.xpath.ast import XPathFilter, iter_predicates
from repro.xpath.parser import parse_xpath

__all__ = [
    "PLACEMENT_POLICIES",
    "SELECTIVITY_WEIGHT",
    "CostModel",
    "FilterCost",
    "Move",
    "filter_selectivities",
    "imbalance",
    "place_filters",
    "plan_drain",
    "plan_rebalance",
    "route_new",
    "shard_loads",
]

#: κ — how strongly σ̂ scales a filter's cost above its static state
#: count.  At the default, a filter matching every document costs 5×
#: its automaton size; a never-matching one costs exactly its size.
SELECTIVITY_WEIGHT = 4.0


@dataclass(frozen=True)
class Move:
    """One filter migration: *oid* leaves shard *source* for *target*."""

    oid: str
    source: int
    target: int


@dataclass(frozen=True)
class FilterCost:
    """One row of the cost table (``repro explain --placement``)."""

    oid: str
    states: int
    selectivity: float
    cost: float


def filter_selectivities(
    filters: Sequence[XPathFilter], documents: Sequence[Document]
) -> dict[str, float]:
    """Per-filter σ over a document sample: the mean of the filter's
    atomic-predicate selectivities (Theorem 6.2's per-atom σ, folded to
    one number per filter).  Predicate-free filters report 0.0 — their
    cost is carried entirely by the state-count term."""
    from repro.theory.selectivity import estimate_selectivities
    from repro.xpath.analysis import _predicate_key

    report = estimate_selectivities(filters, documents)
    out: dict[str, float] = {}
    for xpath_filter in filters:
        sigmas: list[float] = []
        for step in xpath_filter.path.steps:
            for predicate in step.predicates:
                for atom in iter_predicates(predicate):
                    sigmas.append(report.per_predicate.get(_predicate_key(atom), 0.0))
        out[xpath_filter.oid] = sum(sigmas) / len(sigmas) if sigmas else 0.0
    return out


class CostModel:
    """Per-filter placement cost, maintained incrementally.

    State counts come from the memoized
    :func:`~repro.service.partition.afa_state_count`; σ̂ is a
    pseudo-count blend — :meth:`seed` contributes ``σ·n`` synthetic
    matches over an ``n``-document sample, :meth:`observe` contributes
    real per-oid match counts from served traffic, and
    :meth:`selectivity` divides by the combined document total.  Late
    subscribers start at σ̂ = 0 and earn their selectivity from
    traffic observed after they join.
    """

    def __init__(self, selectivity_weight: float = SELECTIVITY_WEIGHT):
        self.selectivity_weight = float(selectivity_weight)
        self._states: dict[str, int] = {}
        self._matches: dict[str, float] = {}
        self._documents: float = 0.0

    def add(self, xpath_filter: XPathFilter) -> None:
        """Start costing *xpath_filter* (idempotent per oid)."""
        self._states[xpath_filter.oid] = afa_state_count(xpath_filter)

    def add_source(self, oid: str, source: str) -> None:
        """:meth:`add` from XPath text (the snapshot-restore path)."""
        self.add(parse_xpath(source, oid))

    def drop(self, oid: str) -> None:
        self._states.pop(oid, None)
        self._matches.pop(oid, None)

    def seed(
        self, filters: Sequence[XPathFilter], documents: Sequence[Document]
    ) -> None:
        """Seed σ̂ from a document sample, as pseudo-counts."""
        sigmas = filter_selectivities(filters, documents)
        n = float(len(documents))
        for oid, sigma in sigmas.items():
            self._matches[oid] = self._matches.get(oid, 0.0) + sigma * n
        self._documents += n

    def observe(self, matched: Iterable[Iterable[str]]) -> None:
        """Fold one served batch in: *matched* is the per-document
        oid-set list the engine just answered with."""
        documents = 0
        for oids in matched:
            documents += 1
            for oid in oids:
                if oid in self._states:
                    self._matches[oid] = self._matches.get(oid, 0.0) + 1.0
        self._documents += float(documents)

    @property
    def documents(self) -> float:
        """Total (sampled + observed) documents behind σ̂."""
        return self._documents

    def states(self, oid: str) -> int:
        return self._states.get(oid, 1)

    def selectivity(self, oid: str) -> float:
        if self._documents <= 0.0:
            return 0.0
        return min(1.0, self._matches.get(oid, 0.0) / self._documents)

    def cost(self, oid: str) -> float:
        """``states × (1 + κ·σ̂)`` — 1.0 floor for unknown oids."""
        return float(self.states(oid)) * (
            1.0 + self.selectivity_weight * self.selectivity(oid)
        )

    def costs(self) -> dict[str, float]:
        return {oid: self.cost(oid) for oid in self._states}

    def table(self) -> list[FilterCost]:
        """Every filter's cost row, most expensive first."""
        rows = [
            FilterCost(oid, self._states[oid], self.selectivity(oid), self.cost(oid))
            for oid in self._states
        ]
        rows.sort(key=lambda row: (-row.cost, row.oid))
        return rows


def shard_loads(
    routing: Mapping[str, int], costs: Mapping[str, float], shards: int
) -> list[float]:
    """Per-shard cost totals under *routing* (cost 1.0 for unmodelled
    oids, so the gauge degrades to a filter count, never to zero)."""
    loads = [0.0] * shards
    for oid, shard in routing.items():
        if 0 <= shard < shards:
            loads[shard] += costs.get(oid, 1.0)
    return loads


def imbalance(loads: Sequence[float]) -> float:
    """Hottest-shard load over mean load; 1.0 is perfectly balanced
    (and the degenerate empty / all-idle answer)."""
    if not loads:
        return 1.0
    total = sum(loads)
    if total <= 0.0:
        return 1.0
    return max(loads) / (total / len(loads))


def place_filters(
    filters: Sequence[XPathFilter], shards: int, model: CostModel
) -> list[list[XPathFilter]]:
    """Boot partition under the ``cost`` policy: greedy LPT over model
    costs.  Same shape contract as
    :func:`~repro.service.partition.partition_filters` — exactly
    *shards* lists, order preserved within each."""
    if shards < 1:
        raise WorkloadError(f"shard count must be >= 1, got {shards}")
    out: list[list[XPathFilter]] = [[] for _ in range(shards)]
    if shards == 1:
        out[0].extend(filters)
        return out
    weighted = sorted(
        ((model.cost(f.oid), index, f) for index, f in enumerate(filters)),
        key=lambda item: (-item[0], item[1]),
    )
    loads = [0.0] * shards
    placed: list[list[tuple[int, XPathFilter]]] = [[] for _ in range(shards)]
    for cost, index, xpath_filter in weighted:
        target = loads.index(min(loads))
        loads[target] += cost
        placed[target].append((index, xpath_filter))
    for shard, pairs in enumerate(placed):
        out[shard] = [f for _, f in sorted(pairs)]
    return out


def route_new(
    oid: str, loads: Sequence[float], policy: str, shards: int | None = None
) -> int:
    """Shard for a post-boot subscribe: CRC-32 under ``hash``, the
    lightest shard (lowest index on ties) under ``cost``."""
    if policy not in PLACEMENT_POLICIES:
        raise WorkloadError(
            f"unknown placement policy {policy!r}; "
            f"known: {', '.join(PLACEMENT_POLICIES)}"
        )
    if policy == "hash":
        return shard_of_oid(oid, shards if shards is not None else len(loads))
    if not loads:
        raise WorkloadError("cost routing needs at least one shard")
    return min(range(len(loads)), key=lambda shard: (loads[shard], shard))


def plan_rebalance(
    routing: Mapping[str, int],
    costs: Mapping[str, float],
    shards: int,
    threshold: float,
) -> list[Move]:
    """A move list bringing :func:`imbalance` to *threshold* (or as
    close as single-filter moves can): repeatedly shift the largest
    filter that fits in the hot→cold gap.  Empty when already balanced
    or when every hot-shard filter is bigger than the gap (moving one
    would only swap which shard is hot)."""
    if threshold < 1.0:
        raise WorkloadError(f"rebalance threshold must be >= 1.0, got {threshold}")
    loads = shard_loads(routing, costs, shards)
    by_shard: list[list[tuple[float, str]]] = [[] for _ in range(shards)]
    for oid, shard in routing.items():
        if 0 <= shard < shards:
            by_shard[shard].append((costs.get(oid, 1.0), oid))
    for bucket in by_shard:
        bucket.sort(key=lambda item: (-item[0], item[1]))
    assigned: dict[str, int] = {}
    for _ in range(max(1, len(routing))):
        if imbalance(loads) <= threshold:
            break
        hot = max(range(shards), key=lambda shard: (loads[shard], -shard))
        cold = min(range(shards), key=lambda shard: (loads[shard], shard))
        gap = loads[hot] - loads[cold]
        choice = next(
            (pos for pos, (cost, _) in enumerate(by_shard[hot]) if cost < gap),
            None,
        )
        if choice is None:
            break
        cost, oid = by_shard[hot].pop(choice)
        loads[hot] -= cost
        loads[cold] += cost
        by_shard[cold].append((cost, oid))
        by_shard[cold].sort(key=lambda item: (-item[0], item[1]))
        assigned[oid] = cold
    return sorted(
        (
            Move(oid, routing[oid], target)
            for oid, target in assigned.items()
            if routing[oid] != target
        ),
        key=lambda move: move.oid,
    )


def plan_drain(
    victim: int,
    routing: Mapping[str, int],
    costs: Mapping[str, float],
    shards: int,
) -> list[Move]:
    """Moves emptying shard *victim* onto the remaining shards, largest
    filter first onto the lightest target (the ``merge`` verb's plan)."""
    if shards < 2:
        raise WorkloadError("cannot drain the only shard")
    if not 0 <= victim < shards:
        raise WorkloadError(f"no shard {victim} to drain (shards={shards})")
    loads = shard_loads(routing, costs, shards)
    targets = [shard for shard in range(shards) if shard != victim]
    leaving = sorted(
        (
            (costs.get(oid, 1.0), oid)
            for oid, shard in routing.items()
            if shard == victim
        ),
        key=lambda item: (-item[0], item[1]),
    )
    moves: list[Move] = []
    for cost, oid in leaving:
        target = min(targets, key=lambda shard: (loads[shard], shard))
        loads[target] += cost
        moves.append(Move(oid, victim, target))
    return moves
