"""Batch-latency tracking for the sharded service's ``stats()``.

A bounded ring of recent batch latencies; percentiles use the
nearest-rank method so they are exact over the retained window and
need no numeric dependencies.
"""

from __future__ import annotations

from collections import deque


class LatencyTracker:
    """Records per-batch wall-clock latencies; reports percentiles."""

    def __init__(self, window: int = 1024):
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained window (seconds)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        """Percentiles in milliseconds, as reported by ``stats()``."""
        return {
            "count": self.count,
            "p50_ms": self.percentile(0.50) * 1000.0,
            "p90_ms": self.percentile(0.90) * 1000.0,
            "p99_ms": self.percentile(0.99) * 1000.0,
            "max_ms": (max(self._samples) if self._samples else 0.0) * 1000.0,
        }
