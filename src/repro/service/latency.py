"""Latency tracking for service/serving ``stats()`` surfaces.

A bounded ring of recent latencies; percentiles use the nearest-rank
(ceil-rank) method so they are exact over the retained window and need
no numeric dependencies.  ``snapshot()`` sorts the window once and
reads every percentile from that one ordering.
"""

from __future__ import annotations

import math
from collections import deque


def _rank(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile by the explicit ceil-rank formula:
    the smallest sample whose cumulative frequency is >= ``fraction``.
    Unlike ``round()`` (banker's rounding — p50 over an even window is
    unstable between the two middle samples), ``ceil`` is monotone in
    ``fraction`` and deterministic."""
    n = len(ordered)
    if n == 0:
        return 0.0
    rank = math.ceil(fraction * n) - 1
    return ordered[max(0, min(n - 1, rank))]


class LatencyTracker:
    """Records wall-clock latencies (seconds); reports percentiles."""

    def __init__(self, window: int = 1024):
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained window (seconds)."""
        return _rank(sorted(self._samples), fraction)

    def snapshot(self) -> dict:
        """Percentiles in milliseconds, as reported by ``stats()``."""
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "p50_ms": _rank(ordered, 0.50) * 1000.0,
            "p90_ms": _rank(ordered, 0.90) * 1000.0,
            "p99_ms": _rank(ordered, 0.99) * 1000.0,
            "max_ms": (ordered[-1] if ordered else 0.0) * 1000.0,
            "total_ms": self.total * 1000.0,
        }
