"""Worker-process side of the sharded filtering service.

Each worker owns one shard: it rebuilds the shard's pre-compiled
workload from a :mod:`repro.xpush.persist` snapshot (so the expensive
XPath parsing and AFA compilation happened exactly once, in the
parent), constructs its own :class:`~repro.xpush.machine.XPushMachine`
and warms it with ``warm_up()`` — the lazy transition tables are
per-process and training rebuilds them deterministically, which the
persist-determinism test pins down.

Protocol (plain picklable tuples):

parent → worker, on the shard's task queue:

- ``("batch", batch_id, [xml_text, ...])`` — filter each single-document
  text, reply with one oid-set per text;
- ``("crash", exit_code)`` — die immediately (test hook for the
  crash-recovery path);
- ``("stop",)`` — drain and exit cleanly.

worker → parent, on the shared result queue:

- ``("ready", shard_id, info)`` — machine built and warmed;
- ``("batch", shard_id, batch_id, [frozenset, ...], info)``;
- ``("error", shard_id, batch_id, message)`` — a batch failed (bad
  document, internal error); the parent raises it.

``info`` carries the worker's current ``state_count``/``hit_ratio`` so
the parent's ``stats()`` can report per-shard machine sizes without an
extra control round-trip.
"""

from __future__ import annotations

import os


def build_payload(
    workload_json: dict,
    options,
    dtd,
    warm: bool = True,
    training_seed: int = 0,
    backend: str = "auto",
) -> dict:
    """The picklable description of one shard a worker boots from."""
    return {
        "workload": workload_json,
        "options": options,
        "dtd": dtd,
        "warm": warm,
        "training_seed": training_seed,
        "backend": backend,
    }


def _build_machine(payload: dict):
    from repro.xpush.machine import XPushMachine
    from repro.xpush.persist import workload_from_json

    workload = workload_from_json(payload["workload"])
    machine = XPushMachine(workload, payload["options"], dtd=payload["dtd"])
    if payload.get("warm", True) and not machine.options.train:
        machine.warm_up(seed=payload.get("training_seed", 0))
    return machine


def _machine_info(machine) -> dict:
    return {
        "xpush_states": machine.state_count,
        "afa_states": machine.workload.state_count,
        "hit_ratio": machine.stats.hit_ratio,
        "events": machine.stats.events,
        "resident_bytes": machine.store.resident_bytes,
        "table_entries": machine.store.table_entries,
        "evictions": machine.stats.evictions,
        "gc_states": machine.stats.gc_states,
        "flushes": machine.stats.flushes,
    }


def worker_main(shard_id: int, payload: dict, tasks, results) -> None:
    """Run one shard worker until a ``stop`` task (or a crash hook)."""
    try:
        machine = _build_machine(payload)
    except Exception as error:  # noqa: BLE001 - forwarded to the parent
        results.put(("error", shard_id, None, f"worker init failed: {error!r}"))
        return
    results.put(("ready", shard_id, _machine_info(machine)))
    while True:
        task = tasks.get()
        kind = task[0]
        if kind == "stop":
            return
        if kind == "crash":
            # Test hook: simulate a hard worker failure mid-stream.
            os._exit(task[1] if len(task) > 1 else 17)
        if kind != "batch":
            results.put(("error", shard_id, None, f"unknown task {kind!r}"))
            continue
        _, batch_id, texts = task
        backend = payload.get("backend", "auto")
        try:
            # The engine builds the machine with retain_results=False,
            # so the per-call return is the only copy — nothing to clear.
            answers = []
            for text in texts:
                answers.extend(machine.filter_stream(text, backend=backend))
        except Exception as error:  # noqa: BLE001 - forwarded to the parent
            results.put(("error", shard_id, batch_id, repr(error)))
            continue
        results.put(("batch", shard_id, batch_id, answers, _machine_info(machine)))
