"""Worker-process side of the sharded filtering service.

Each worker owns one shard: it boots an inner
:class:`~repro.engine.protocol.FilterEngine` through
:func:`~repro.engine.factory.create_engine` from a picklable payload —
an :class:`~repro.engine.config.EngineConfig` naming the inner engine
kind plus that engine's own ``snapshot()`` capture.  For the default
layered inner engine the snapshot carries the shard's *compiled* base
workload (:mod:`repro.xpush.persist` JSON), so AFA compilation happened
exactly once, in the parent; the worker warms its machine with
``warm_up()`` — the lazy transition tables are per-process and training
rebuilds them deterministically, which the persist-determinism test
pins down.

Protocol (plain picklable tuples):

parent → worker, on the shard's task queue:

- ``("batch", batch_id, [xml_text, ...], emit?)`` — filter each
  single-document text, reply with one oid-set per text.  When the
  optional ``emit`` flag is true, the worker additionally streams one
  ``("match", ...)`` message per decided match *while the batch is
  still running* (event-time earliest answering), ahead of the final
  batch reply on the same FIFO queue;
- ``("control", epoch, op, ...)`` — a workload update:
  ``("control", e, "subscribe", oid, xpath)``,
  ``("control", e, "unsubscribe", oid)`` or
  ``("control", e, "compact")``.  Applied in FIFO order with batches,
  so a batch submitted after an update is always answered under it.
  No ack is sent — the parent folded the same update into this
  worker's boot payload before enqueuing it, so a crash between
  enqueue and apply loses nothing (the restarted worker boots the
  updated workload and the stale queue dies with the old process);
- ``("crash", exit_code)`` — die immediately (test hook for the
  crash-recovery path);
- ``("stop",)`` — drain and exit cleanly.

worker → parent, on the shared result queue:

- ``("ready", shard_id, info)`` — engine built and warmed;
- ``("match", shard_id, batch_id, doc_offset, oid, event_index)`` —
  one event-time match decision (``doc_offset`` is the document's
  position within the batch).  Always precedes the batch reply on the
  queue, so the parent has folded every match in by the time the batch
  completes; resubmitted batches re-stream their matches and the
  parent dedupes on ``(doc_offset, oid)``;
- ``("batch", shard_id, batch_id, [frozenset, ...], info)``;
- ``("error", shard_id, batch_id, message)`` — a batch or control
  failed (bad document, internal error); the parent raises it.

``info`` is the inner engine's ``stats()`` plus ``applied_epoch`` — the
epoch of the last control message this worker applied.  Every batch
reply is thereby *epoch-tagged*: the parent can attribute each answer
to a workload version, which matters after a crash, when pending
batches are resubmitted and re-answered at the *current* epoch rather
than the one they were first submitted under.
"""

from __future__ import annotations

import os
import time
from typing import Any, Sequence


def build_payload(
    config,
    snapshot: dict | None,
    warm: bool = True,
    training_seed: int = 0,
    oids: Sequence[str] | None = None,
) -> dict:
    """The picklable description of one shard a worker boots from.

    *config* is the inner engine's :class:`EngineConfig`; *snapshot* is
    that engine's ``snapshot()`` capture (or ``None`` for an engine
    that starts empty and grows through control messages); *oids* is
    the placement layer's routing projection — the oids this shard
    answers for, kept in lockstep with the snapshot by the parent's
    fold helpers so a restarted worker and the routing table agree.
    """
    return {
        "config": config,
        "snapshot": snapshot,
        "warm": warm,
        "training_seed": training_seed,
        "oids": list(oids or []),
    }


def _build_engine(payload: dict):
    from repro.engine.factory import create_engine

    config = payload["config"]
    engine = create_engine(config, snapshot=payload.get("snapshot"))
    if payload.get("warm", True) and not config.options.train:
        warm_up = getattr(engine, "warm_up", None)
        if warm_up is not None:
            warm_up(seed=payload.get("training_seed", 0))
    return engine


def _engine_info(engine, applied_epoch: int, busy_s: float = 0.0) -> dict[str, Any]:
    info = dict(engine.stats())
    info["applied_epoch"] = applied_epoch
    info["busy_s"] = busy_s
    return info


def worker_main(shard_id: int, payload: dict, tasks, results) -> None:
    """Run one shard worker until a ``stop`` task (or a crash hook)."""
    try:
        engine = _build_engine(payload)
    except Exception as error:  # noqa: BLE001 - forwarded to the parent
        results.put(("error", shard_id, None, f"worker init failed: {error!r}"))
        return
    applied_epoch = payload.get("epoch", 0)
    busy_s = 0.0
    results.put(("ready", shard_id, _engine_info(engine, applied_epoch)))
    while True:
        task = tasks.get()
        kind = task[0]
        if kind == "stop":
            return
        if kind == "crash":
            # Test hook: simulate a hard worker failure mid-stream.
            os._exit(task[1] if len(task) > 1 else 17)
        if kind == "control":
            _, epoch, op = task[:3]
            try:
                if op == "subscribe":
                    engine.subscribe(task[3], task[4])
                elif op == "unsubscribe":
                    engine.unsubscribe(task[3])
                elif op == "compact":
                    compact = getattr(engine, "compact", None)
                    if compact is not None:
                        compact()
                else:
                    raise ValueError(f"unknown control op {op!r}")
                applied_epoch = epoch
            except Exception as error:  # noqa: BLE001 - forwarded
                results.put(
                    ("error", shard_id, None, f"control {op} failed: {error!r}")
                )
            continue
        if kind != "batch":
            results.put(("error", shard_id, None, f"unknown task {kind!r}"))
            continue
        batch_id, texts = task[1], task[2]
        emit = len(task) > 3 and bool(task[3])
        answers: list = []
        if emit:
            # Stream each decided match the moment the inner engine's
            # event-time hook fires — doc_base maps the engine's
            # call-relative document index to the batch offset.
            doc_base = 0

            def _relay(oid: str, doc_index: int, event_index: int) -> None:
                results.put(
                    ("match", shard_id, batch_id, doc_base + doc_index, oid, event_index)
                )

            engine.on_match = _relay
        started = time.perf_counter()
        try:
            # The inner engine builds its machines with
            # retain_results=False, so the per-call return is the only
            # copy — nothing to clear between batches.
            for text in texts:
                doc_base = len(answers)
                answers.extend(engine.filter_stream(text))
        except Exception as error:  # noqa: BLE001 - forwarded to the parent
            results.put(("error", shard_id, batch_id, repr(error)))
            continue
        finally:
            busy_s += time.perf_counter() - started
            if emit:
                engine.on_match = None
        results.put(
            (
                "batch",
                shard_id,
                batch_id,
                answers,
                _engine_info(engine, applied_epoch, busy_s),
            )
        )
