"""The XPath fragment of Fig. 1: AST, parser, semantics, generator.

The fragment contains element and attribute labels, wildcards (``*``,
``@*``), child (``/``) and descendant (``//``) axes, ``.``, ``text()``,
atomic comparisons against constants, and the boolean connectives
``and``, ``or``, ``not`` — interleaved arbitrarily with navigation.

Filters are *boolean*: a document matches iff the path selects at least
one node from the document root.
"""

from repro.xpath.ast import (
    Axis,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Step,
    NodeTest,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_filter, matching_oids
from repro.xpath.generator import QueryGenerator, GeneratorConfig
from repro.xpath.simplify import simplify_filter, simplify_workload
from repro.xpath.analysis import profile_workload
from repro.xpath.dedupe import DeduplicatedEngine, DeduplicatedWorkload

__all__ = [
    "DeduplicatedEngine",
    "DeduplicatedWorkload",
    "profile_workload",
    "simplify_filter",
    "simplify_workload",
    "Axis",
    "BooleanExpr",
    "Comparison",
    "Exists",
    "GeneratorConfig",
    "LocationPath",
    "NodeTest",
    "QueryGenerator",
    "Step",
    "evaluate_filter",
    "matching_oids",
    "parse_xpath",
]
