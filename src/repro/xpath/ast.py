"""AST for the XPath fragment of Fig. 1.

A filter is a :class:`LocationPath` — a sequence of :class:`Step`\\ s,
each with an axis (child or descendant-or-self'), a node test and zero
or more boolean predicates.  Predicates (the ``Q`` production) are
:class:`Exists`, :class:`Comparison`, :class:`And`, :class:`Or` and
:class:`Not` nodes whose relative paths are again location paths.

Every node can unparse itself (``str()``) back to XPath syntax that the
parser round-trips, which the property tests rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union


class Axis(enum.Enum):
    """How a step moves from its context node."""

    CHILD = "child"
    DESCENDANT = "descendant"  # `//`: any depth >= 1 below the context
    SELF = "self"  # `.`

    def __repr__(self) -> str:  # keep asts readable in test output
        return self.name


class NodeTestKind(enum.Enum):
    NAME = "name"  # element label
    WILDCARD = "wildcard"  # *
    ATTRIBUTE = "attribute"  # @name
    ATTRIBUTE_WILDCARD = "attribute_wildcard"  # @*
    TEXT = "text"  # text()

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class NodeTest:
    """What a step matches: a label, a wildcard, an attribute, or text().

    ``name`` is the bare element name for NAME and the ``@``-prefixed
    pseudo-element label for ATTRIBUTE; None otherwise.
    """

    kind: NodeTestKind
    name: str | None = None

    def __str__(self) -> str:
        if self.kind is NodeTestKind.NAME:
            return self.name
        if self.kind is NodeTestKind.ATTRIBUTE:
            return self.name  # already carries the '@'
        if self.kind is NodeTestKind.WILDCARD:
            return "*"
        if self.kind is NodeTestKind.ATTRIBUTE_WILDCARD:
            return "@*"
        return "text()"

    @property
    def selects_attributes(self) -> bool:
        return self.kind in (NodeTestKind.ATTRIBUTE, NodeTestKind.ATTRIBUTE_WILDCARD)

    @property
    def selects_text(self) -> bool:
        return self.kind is NodeTestKind.TEXT


def name_test(label: str) -> NodeTest:
    if label.startswith("@"):
        return NodeTest(NodeTestKind.ATTRIBUTE, label)
    return NodeTest(NodeTestKind.NAME, label)


WILDCARD_TEST = NodeTest(NodeTestKind.WILDCARD)
ATTRIBUTE_WILDCARD_TEST = NodeTest(NodeTestKind.ATTRIBUTE_WILDCARD)
TEXT_TEST = NodeTest(NodeTestKind.TEXT)
SELF_TEST = NodeTest(NodeTestKind.WILDCARD)  # `.` has no test; placeholder


@dataclass(frozen=True)
class Step:
    """One location step: axis, node test, predicates."""

    axis: Axis
    test: NodeTest
    predicates: tuple["BooleanExpr", ...] = ()

    def __str__(self) -> str:
        if self.axis is Axis.SELF:
            body = "."
        else:
            body = str(self.test)
        return body + "".join(f"[{pred}]" for pred in self.predicates)


@dataclass(frozen=True)
class LocationPath:
    """A sequence of steps.

    ``absolute`` distinguishes the top-level productions ``/E`` (first
    step starts at the root's children) from ``//E`` — the latter is
    encoded by giving the first step a DESCENDANT axis.  Relative paths
    inside predicates have ``absolute=False``.
    """

    steps: tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        pieces: list[str] = []
        for i, step in enumerate(self.steps):
            if step.axis is Axis.DESCENDANT:
                sep = "//" if (i > 0 or self.absolute) else ".//"
                if i == 0 and self.absolute:
                    sep = "//"
                elif i == 0:
                    sep = ".//"
                pieces.append(sep)
            elif i > 0:
                pieces.append("/")
            elif self.absolute:
                pieces.append("/")
            pieces.append(str(step))
        return "".join(pieces)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class Exists:
    """Q ::= E — true iff the relative path selects at least one node."""

    path: LocationPath

    def __str__(self) -> str:
        return str(self.path)


#: The comparison operators of the fragment, in the paper's notation.
RELATIONAL_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Extended string operators (Sec. 2 discusses supporting these via an
#: Aho-Corasick dictionary index; we implement them as an extension).
STRING_OPS = ("starts-with", "contains")


@dataclass(frozen=True)
class Comparison:
    """Q ::= E op Const — compare the value selected by ``path``.

    The compared value is the text content of the element (or the value
    of the attribute) the path lands on; a trailing ``text()`` step is
    how the paper usually spells it, but a bare ``b = 1`` is accepted
    and means the same thing.
    """

    path: LocationPath
    op: str
    value: Union[int, float, str]

    def __post_init__(self):
        if self.op not in RELATIONAL_OPS + STRING_OPS:
            raise ValueError(f"unknown operator {self.op!r}")
        if isinstance(self.value, str) and '"' in self.value and "'" in self.value:
            raise ValueError("string constant may not contain both quote characters")

    def __str__(self) -> str:
        if isinstance(self.value, str):
            quote = "'" if '"' in self.value else '"'
            literal = quote + self.value + quote
        else:
            literal = str(self.value)
        if self.op in STRING_OPS:
            return f"{self.op}({self.path}, {literal})"
        return f"{self.path} {self.op} {literal}"


@dataclass(frozen=True)
class And:
    children: tuple["BooleanExpr", ...]

    def __str__(self) -> str:
        return " and ".join(_maybe_paren(child) for child in self.children)


@dataclass(frozen=True)
class Or:
    children: tuple["BooleanExpr", ...]

    def __str__(self) -> str:
        return " or ".join(_maybe_paren(child) for child in self.children)


@dataclass(frozen=True)
class Not:
    child: "BooleanExpr"

    def __str__(self) -> str:
        return f"not({self.child})"


BooleanExpr = Union[Exists, Comparison, And, Or, Not]


def _maybe_paren(expr: BooleanExpr) -> str:
    if isinstance(expr, (And, Or)):
        return f"({expr})"
    return str(expr)


@dataclass(frozen=True)
class XPathFilter:
    """A complete boolean filter: an absolute location path plus an oid."""

    path: LocationPath
    oid: str = ""
    source: str = ""

    def __str__(self) -> str:
        return str(self.path)


# ----------------------------------------------------------------------
# Structural measures used by the generator, the stats and the theory
# ----------------------------------------------------------------------


def iter_predicates(expr: BooleanExpr) -> Iterator[BooleanExpr]:
    """Yield every atomic predicate (Exists / Comparison leaf) in *expr*."""
    if isinstance(expr, (Exists, Comparison)):
        yield expr
    elif isinstance(expr, Not):
        yield from iter_predicates(expr.child)
    else:
        for child in expr.children:
            yield from iter_predicates(child)


def count_atomic_predicates(path: LocationPath) -> int:
    """Number of atomic predicates in the filter — the unit of the
    paper's "total number of atomic predicates in the workload".

    A Comparison counts as one; an Exists counts as one only when its
    path is predicate-free (a pure existence test), otherwise the atomic
    predicates are the ones nested inside it.
    """
    total = 0
    for step in path.steps:
        for pred in step.predicates:
            for atom in iter_predicates(pred):
                if isinstance(atom, Comparison):
                    total += 1 + count_atomic_predicates(atom.path)
                else:  # Exists
                    nested = count_atomic_predicates(atom.path)
                    total += nested if nested else 1
    return total


def boolean_nesting_depth(path: LocationPath) -> int:
    """Deepest nesting of boolean connectives; bounds eval() iterations."""

    def expr_depth(expr: BooleanExpr) -> int:
        if isinstance(expr, Exists):
            return path_depth(expr.path)
        if isinstance(expr, Comparison):
            return path_depth(expr.path)
        if isinstance(expr, Not):
            return 1 + expr_depth(expr.child)
        return 1 + max(expr_depth(child) for child in expr.children)

    def path_depth(p: LocationPath) -> int:
        best = 0
        for step in p.steps:
            for pred in step.predicates:
                best = max(best, expr_depth(pred))
        return best

    return path_depth(path)


def is_linear(path: LocationPath) -> bool:
    """True when the filter has no predicates at all (a pure path)."""
    return all(not step.predicates for step in path.steps)
