"""Reference (ground-truth) semantics of the Fig. 1 fragment on a DOM.

This evaluator defines what every engine in the library must compute:
an XPath expression ``P`` is treated as a boolean filter — "an XML
document matches P if and only if P selects at least one node when
evaluated on the document's root" (Sec. 2).  The paper's data model is
used throughout: attributes are children (pseudo-elements ``@name``)
and the root node sits one level above the top-most element.

``not`` is universal quantification, exactly as the paper notes:
``/a[not(b/text()=1)]`` matches iff *all* ``b`` children differ from 1.

All value comparisons go through :func:`repro.afa.predicates.compare`,
the same function the XPush machine's atomic predicate index uses, so
differential tests compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.xmlstream.dom import Document, Element
from repro.xpath.ast import (
    And,
    Axis,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Not,
    NodeTest,
    NodeTestKind,
    Or,
    Step,
    XPathFilter,
)


@dataclass(frozen=True, slots=True)
class _AttrNode:
    """Attribute pseudo-node: behaves like a leaf element ``@name``."""

    name: str
    value: str


@dataclass(frozen=True, slots=True)
class _RootNode:
    """The virtual node one level above the root element."""

    document: Document


Node = Union[_RootNode, Element, _AttrNode, str]  # str = text node value


def _children(node: Node) -> Iterator[Node]:
    """The paper's child relation: attributes and text are children."""
    if isinstance(node, _RootNode):
        yield node.document.root
    elif isinstance(node, Element):
        for name, value in node.attributes:
            yield _AttrNode(name, value)
        if node.text is not None:
            yield node.text
        yield from node.children
    # attribute and text nodes are leaves


def _descendants(node: Node) -> Iterator[Node]:
    """Proper descendants (depth >= 1) under the child relation."""
    stack = list(_children(node))
    while stack:
        child = stack.pop()
        yield child
        stack.extend(_children(child))


def _test_matches(test: NodeTest, node: Node) -> bool:
    kind = test.kind
    if isinstance(node, Element):
        if kind is NodeTestKind.NAME:
            return node.label == test.name
        return kind is NodeTestKind.WILDCARD
    if isinstance(node, _AttrNode):
        if kind is NodeTestKind.ATTRIBUTE:
            return "@" + node.name == test.name
        return kind is NodeTestKind.ATTRIBUTE_WILDCARD
    if isinstance(node, str):
        return kind is NodeTestKind.TEXT
    return False  # the virtual root matches nothing


def node_value(node: Node) -> str | None:
    """The comparable value of a node (None when it has none)."""
    if isinstance(node, str):
        return node
    if isinstance(node, _AttrNode):
        return node.value
    if isinstance(node, Element):
        return node.text
    return None


def _select(path: LocationPath, context: Node) -> list[Node]:
    """All nodes selected by *path* starting from *context*."""
    current: list[Node] = [context]
    for step in path.steps:
        selected: list[Node] = []
        seen_ids: set[int] = set()
        for node in current:
            if step.axis is Axis.SELF:
                candidates: Iterable[Node] = (node,)
            elif step.axis is Axis.CHILD:
                candidates = _children(node)
            else:
                candidates = _descendants(node)
            for candidate in candidates:
                if step.axis is Axis.SELF or _test_matches(step.test, candidate):
                    marker = id(candidate)
                    if marker not in seen_ids:
                        seen_ids.add(marker)
                        selected.append(candidate)
        if step.predicates:
            selected = [
                node
                for node in selected
                if all(_truth(pred, node) for pred in step.predicates)
            ]
        current = selected
        if not current:
            return []
    return current


def _truth(expr: BooleanExpr, context: Node) -> bool:
    if isinstance(expr, Exists):
        return bool(_select(expr.path, context))
    if isinstance(expr, Comparison):
        from repro.afa.predicates import compare

        for node in _select(expr.path, context):
            value = node_value(node)
            if value is not None and compare(value, expr.op, expr.value):
                return True
        return False
    if isinstance(expr, And):
        return all(_truth(child, context) for child in expr.children)
    if isinstance(expr, Or):
        return any(_truth(child, context) for child in expr.children)
    if isinstance(expr, Not):
        return not _truth(expr.child, context)
    raise TypeError(f"not a boolean expression: {expr!r}")


def evaluate_filter(filter_or_path: XPathFilter | LocationPath, document: Document) -> bool:
    """True iff the filter selects at least one node of *document*."""
    path = filter_or_path.path if isinstance(filter_or_path, XPathFilter) else filter_or_path
    return bool(_select(path, _RootNode(document)))


def matching_oids(workload: Iterable[XPathFilter], document: Document) -> set[str]:
    """Oids of the workload filters matching *document* — the problem's
    required output (Sec. 2), computed the slow, obviously-correct way."""
    return {f.oid for f in workload if evaluate_filter(f, document)}
