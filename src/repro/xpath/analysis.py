"""Workload analytics: how much sharing is there to exploit?

The paper's premise (Sec. 1): "When the workload has many XPath
queries, each with several predicates, such common predicates are
frequent, and keeping track of them separately for each query degrades
the performance significantly."  This module measures that premise on
a concrete workload — how many *distinct* atomic predicates and
navigation prefixes exist vs. their total number of occurrences — and
summarises the structural shape the benchmarks report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.xpath.ast import (
    Axis,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    XPathFilter,
    count_atomic_predicates,
    is_linear,
    iter_predicates,
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of a filter workload."""

    queries: int
    total_atomic_predicates: int
    distinct_atomic_predicates: int
    total_path_steps: int
    distinct_navigation_prefixes: int
    total_navigation_prefixes: int
    linear_queries: int
    queries_with_not: int
    queries_with_or: int
    max_predicates_in_one_query: int

    @property
    def predicates_per_query(self) -> float:
        return self.total_atomic_predicates / self.queries if self.queries else 0.0

    @property
    def predicate_sharing_ratio(self) -> float:
        """Occurrences per distinct atomic predicate (1.0 = no sharing).

        This is the quantity the XPush machine exploits and prior
        systems do not: at ratio r, a per-query engine does r× the
        predicate work of a perfectly shared one.
        """
        if not self.distinct_atomic_predicates:
            return 1.0
        return self.total_atomic_predicates / self.distinct_atomic_predicates

    @property
    def prefix_sharing_ratio(self) -> float:
        """Occurrences per distinct navigation prefix — what
        YFilter-style systems exploit."""
        if not self.distinct_navigation_prefixes:
            return 1.0
        return self.total_navigation_prefixes / self.distinct_navigation_prefixes

    def describe(self) -> str:
        return (
            f"{self.queries} queries, "
            f"{self.total_atomic_predicates} atomic predicates "
            f"({self.predicates_per_query:.2f}/query, "
            f"{self.distinct_atomic_predicates} distinct, "
            f"sharing {self.predicate_sharing_ratio:.2f}x); "
            f"navigation prefixes shared {self.prefix_sharing_ratio:.2f}x; "
            f"{self.linear_queries} linear, "
            f"{self.queries_with_not} with not(), "
            f"{self.queries_with_or} with or"
        )


def _predicate_key(expr: BooleanExpr) -> tuple:
    """Canonical key of one atomic predicate: (relative path, op, const).

    Two filters containing ``[b/text() = 1]`` yield the same key — the
    common predicate of Example 1.1.
    """
    if isinstance(expr, Comparison):
        return (str(expr.path), expr.op, expr.value)
    return (str(expr.path), "exists", None)


def _navigation_prefixes(path: LocationPath) -> list[tuple]:
    prefixes = []
    acc: list[tuple] = []
    for step in path.steps:
        acc.append((step.axis.name, str(step.test)))
        prefixes.append(tuple(acc))
    return prefixes


def _contains_kind(expr: BooleanExpr, kind: type) -> bool:
    from repro.xpath.ast import And, Not, Or

    if isinstance(expr, kind):
        return True
    if isinstance(expr, Not):
        return _contains_kind(expr.child, kind)
    if isinstance(expr, (And, Or)):
        return any(_contains_kind(c, kind) for c in expr.children)
    return False


def profile_workload(filters: list[XPathFilter]) -> WorkloadProfile:
    """Compute the :class:`WorkloadProfile` of a workload."""
    from repro.xpath.ast import Not, Or

    predicate_counts: Counter = Counter()
    prefix_counts: Counter = Counter()
    total_steps = 0
    linear = 0
    with_not = 0
    with_or = 0
    max_predicates = 0
    for xpath_filter in filters:
        path = xpath_filter.path
        total_steps += len(path.steps)
        if is_linear(path):
            linear += 1
        n_preds = count_atomic_predicates(path)
        max_predicates = max(max_predicates, n_preds)
        for prefix in _navigation_prefixes(path):
            prefix_counts[prefix] += 1
        has_not = has_or = False
        for step in path.steps:
            for predicate in step.predicates:
                has_not = has_not or _contains_kind(predicate, Not)
                has_or = has_or or _contains_kind(predicate, Or)
                for atom in iter_predicates(predicate):
                    predicate_counts[_predicate_key(atom)] += 1
        with_not += has_not
        with_or += has_or
    return WorkloadProfile(
        queries=len(filters),
        total_atomic_predicates=sum(predicate_counts.values()),
        distinct_atomic_predicates=len(predicate_counts),
        total_path_steps=total_steps,
        distinct_navigation_prefixes=len(prefix_counts),
        total_navigation_prefixes=sum(prefix_counts.values()),
        linear_queries=linear,
        queries_with_not=with_not,
        queries_with_or=with_or,
        max_predicates_in_one_query=max_predicates,
    )


def most_shared_predicates(filters: list[XPathFilter], top: int = 10) -> list[tuple[tuple, int]]:
    """The most frequently shared atomic predicates in the workload."""
    counts: Counter = Counter()
    for xpath_filter in filters:
        for step in xpath_filter.path.steps:
            for predicate in step.predicates:
                for atom in iter_predicates(predicate):
                    counts[_predicate_key(atom)] += 1
    return counts.most_common(top)
