"""Boolean simplification of filters before compilation.

The XPush machine eliminates work shared *between* filters; this pass
eliminates redundancy *within* one filter before it ever reaches the
AFA compiler, so the automata are smaller and the machine's states
thinner.  All rewrites are semantics-preserving (property-tested
against the reference evaluator):

- flatten nested conjunctions/disjunctions: ``a and (b and c)`` →
  ``a and b and c``;
- drop duplicate conjuncts/disjuncts: ``p and p`` → ``p`` (compared
  structurally — the common-predicate case the paper's Example 1.1
  highlights can occur within a single machine-generated filter too);
- eliminate double negation: ``not(not(q))`` → ``q``;
- collapse single-child connectives;
- recurse into predicate paths.

The pass never *adds* structure and is idempotent.
"""

from __future__ import annotations

from repro.xpath.ast import (
    And,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Not,
    Or,
    Step,
    XPathFilter,
)


def simplify_filter(xpath_filter: XPathFilter) -> XPathFilter:
    """Simplified copy of *xpath_filter* (same oid/source)."""
    return XPathFilter(
        simplify_path(xpath_filter.path),
        oid=xpath_filter.oid,
        source=xpath_filter.source,
    )


def simplify_path(path: LocationPath) -> LocationPath:
    steps = tuple(
        Step(
            step.axis,
            step.test,
            _dedupe(tuple(simplify_expr(p) for p in step.predicates)),
        )
        for step in path.steps
    )
    return LocationPath(steps, absolute=path.absolute)


def simplify_expr(expr: BooleanExpr) -> BooleanExpr:
    if isinstance(expr, Exists):
        return Exists(simplify_path(expr.path))
    if isinstance(expr, Comparison):
        return Comparison(simplify_path(expr.path), expr.op, expr.value)
    if isinstance(expr, Not):
        child = simplify_expr(expr.child)
        if isinstance(child, Not):
            return child.child  # not(not(q)) → q (already simplified)
        return Not(child)
    if isinstance(expr, (And, Or)):
        kind = type(expr)
        flattened: list[BooleanExpr] = []
        for child in expr.children:
            child = simplify_expr(child)
            if isinstance(child, kind):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        deduped = _dedupe(tuple(flattened))
        if len(deduped) == 1:
            return deduped[0]
        return kind(deduped)
    raise TypeError(f"not a boolean expression: {expr!r}")


def _dedupe(children: tuple[BooleanExpr, ...]) -> tuple[BooleanExpr, ...]:
    seen: set[BooleanExpr] = set()
    out: list[BooleanExpr] = []
    for child in children:
        if child not in seen:
            seen.add(child)
            out.append(child)
    return tuple(out)


def simplify_workload(filters: list[XPathFilter]) -> list[XPathFilter]:
    """Simplify every filter of a workload."""
    return [simplify_filter(f) for f in filters]
