"""Synthetic XPath workload generator (Sec. 7, "Experimental setting").

"We generated synthetic XPath queries using a modified version of the
generator in [YFilter]: we modified it to generate bushy query trees,
rather than left-linear trees, and modified it to generate atomic
predicates using data values from the given data instance, ensuring
that each predicate is true on at least some XML document."

The generator walks the dataset's DTD to produce structurally valid
paths, draws predicate constants from the dataset's value pools, and
controls:

- wildcard and descendant-axis probability (both 0 in the paper's
  reported runs);
- the predicates-per-query distribution — either a mean (1 + Poisson,
  giving the paper's 1.15 / 10.45 averages) or an exact count ``k``
  (the Fig. 9-11 sweeps keep ``k·n`` fixed while varying ``k``);
- bushiness: predicates attach to random steps of the main path and
  may nest (a predicate whose relative path itself carries a
  comparison);
- boolean connectives: ``and`` by default, ``or``/``not`` with small
  probabilities.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xpath.ast import (
    And,
    Axis,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Not,
    NodeTest,
    NodeTestKind,
    Or,
    Step,
    XPathFilter,
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the workload generator."""

    seed: int = 0
    path_depth_min: int = 1
    path_depth_max: int = 4
    prob_wildcard: float = 0.0
    prob_descendant: float = 0.0
    mean_predicates: float = 1.15
    exact_predicates: int | None = None  # overrides mean_predicates
    max_predicates: int = 50
    prob_or: float = 0.0
    prob_not: float = 0.0
    prob_nested: float = 0.0
    prob_attribute_predicate: float = 0.3
    prob_inequality: float = 0.15
    #: probability that a string-valued predicate becomes the Sec. 2
    #: extension ``starts-with``/``contains`` instead of equality.
    prob_string_function: float = 0.0


class QueryGenerator:
    """Generates filters valid against a DTD and its value pools.

    Args:
        dtd: the dataset's DTD (paths follow its child relation).
        value_pool: label → candidate constants; keys are leaf element
            labels and ``@name`` attribute labels.  Every comparison
            constant is drawn here, so each predicate is satisfiable on
            the dataset.
        config: see :class:`GeneratorConfig`.
    """

    def __init__(self, dtd: DTD, value_pool: Mapping[str, Sequence[str]], config: GeneratorConfig | None = None):
        self.dtd = dtd
        self.value_pool = {k: list(v) for k, v in value_pool.items() if v}
        self.config = config or GeneratorConfig()
        self.rng = random.Random(self.config.seed)
        self.children = {k: sorted(v) for k, v in dtd.children_map().items()}
        self.leaf_labels = {
            name for name, decl in dtd.elements.items() if decl.content.kind == "pcdata"
        }
        self.attrs_of = {
            name: [a.name for a in decl.attributes] for name, decl in dtd.elements.items()
        }
        # Labels from which at least one predicate can hang.
        self._pred_capable: dict[str, bool] = {}
        if not any(self._can_predicate(label) for label in dtd.elements):
            raise WorkloadError("DTD/value pool supports no predicates at all")

    # ------------------------------------------------------------------

    def generate(self, count: int, oid_prefix: str = "q") -> list[XPathFilter]:
        """Generate *count* filters with oids ``<prefix>0 … <prefix>N``."""
        return [self.generate_one(f"{oid_prefix}{i}") for i in range(count)]

    def generate_one(self, oid: str) -> XPathFilter:
        for _ in range(64):  # retry: a walk can dead-end predicate-less
            candidate = self._try_generate(oid)
            if candidate is not None:
                return candidate
        raise WorkloadError("generator failed to produce a query; check the DTD/pools")

    # ------------------------------------------------------------------

    def _try_generate(self, oid: str) -> XPathFilter | None:
        rng = self.rng
        config = self.config
        chain = self._random_chain()
        if chain is None:
            return None
        # How many predicates this query gets.
        if config.exact_predicates is not None:
            wanted = config.exact_predicates
        else:
            wanted = 1 + _poisson(rng, max(config.mean_predicates - 1.0, 0.0))
        wanted = min(wanted, config.max_predicates)
        # Attach predicates to pred-capable steps; bias towards the
        # anchor (last step) so shallow chains still get their share.
        capable = [i for i, label in enumerate(chain) if self._can_predicate(label)]
        if wanted and not capable:
            return None
        atoms_at: dict[int, list[BooleanExpr]] = {}
        for _ in range(wanted):
            position = capable[-1] if rng.random() < 0.5 else rng.choice(capable)
            atom = self._atomic_predicate(chain[position])
            if atom is None:
                return None
            atoms_at.setdefault(position, []).append(atom)
        steps: list[Step] = []
        previous_kept = -1
        for i, label in enumerate(chain):
            axis = Axis.CHILD
            if i > 0 and rng.random() < config.prob_descendant and i - previous_kept == 1:
                # Descendant step: optionally skip this level entirely by
                # re-labelling the step as a descendant of the previous.
                axis = Axis.DESCENDANT
            if i == 0 and rng.random() < config.prob_descendant:
                axis = Axis.DESCENDANT
            test_label = label
            if rng.random() < config.prob_wildcard:
                test = NodeTest(NodeTestKind.WILDCARD)
            else:
                test = NodeTest(NodeTestKind.NAME, test_label)
            predicates = tuple(self._combine(atoms_at.get(i, [])))
            steps.append(Step(axis, test, predicates))
            previous_kept = i
        path = LocationPath(tuple(steps), absolute=True)
        return XPathFilter(path, oid=oid, source=str(path))

    def _random_chain(self) -> list[str] | None:
        """A random downward label walk from the DTD root."""
        rng = self.rng
        config = self.config
        depth = rng.randint(config.path_depth_min, config.path_depth_max)
        chain = [self.dtd.root]
        while len(chain) < depth:
            options = [c for c in self.children.get(chain[-1], ()) if c not in self.leaf_labels]
            leafy = [c for c in self.children.get(chain[-1], ()) if c in self.leaf_labels]
            if not options and not leafy:
                break
            if len(chain) == depth - 1 and leafy and rng.random() < 0.3:
                chain.append(rng.choice(leafy))
                break
            if not options:
                break
            chain.append(rng.choice(options))
        return chain

    def _can_predicate(self, label: str) -> bool:
        cached = self._pred_capable.get(label)
        if cached is not None:
            return cached
        capable = False
        if any("@" + attr in self.value_pool for attr in self.attrs_of.get(label, ())):
            capable = True
        elif label in self.leaf_labels and label in self.value_pool:
            capable = True
        else:
            capable = any(
                child in self.value_pool and child in self.leaf_labels
                for child in self.children.get(label, ())
            ) or any(
                "@" + attr in self.value_pool
                for child in self.children.get(label, ())
                for attr in self.attrs_of.get(child, ())
            )
        self._pred_capable[label] = capable
        return capable

    # ------------------------------------------------------------------

    def _atomic_predicate(self, context_label: str) -> BooleanExpr | None:
        """One atomic predicate on a node labelled *context_label*."""
        rng = self.rng
        choices: list[tuple[str, ...]] = []  # encoded relative paths
        for attr in self.attrs_of.get(context_label, ()):
            if "@" + attr in self.value_pool:
                choices.append(("@" + attr,))
        if context_label in self.leaf_labels and context_label in self.value_pool:
            choices.append(("text()",))
        for child in self.children.get(context_label, ()):
            if child in self.leaf_labels and child in self.value_pool:
                choices.append((child, "text()"))
            for attr in self.attrs_of.get(child, ()):
                if "@" + attr in self.value_pool:
                    choices.append((child, "@" + attr))
        if not choices:
            return None
        attr_choices = [c for c in choices if c[-1].startswith("@")]
        if attr_choices and rng.random() < self.config.prob_attribute_predicate:
            encoded = rng.choice(attr_choices)
        else:
            encoded = rng.choice(choices)
        pool_key = encoded[-1] if encoded[-1].startswith("@") else (
            encoded[-2] if len(encoded) > 1 else context_label
        )
        raw = rng.choice(self.value_pool[pool_key])
        value, op = self._constant_and_op(raw)
        steps = tuple(_encoded_step(piece) for piece in encoded)
        comparison = Comparison(LocationPath(steps), op, value)
        if self.config.prob_nested and rng.random() < self.config.prob_nested:
            # Bushy nesting: wrap as existence of a child carrying the
            # comparison, e.g. [b[. = 5]] — same truth, deeper tree.
            if len(encoded) > 1 and not encoded[0].startswith("@"):
                inner_path = LocationPath(tuple(_encoded_step(p) for p in encoded[1:]))
                inner = Comparison(inner_path, op, value)
                outer = Step(Axis.CHILD, NodeTest(NodeTestKind.NAME, encoded[0]), (inner,))
                return Exists(LocationPath((outer,)))
        return comparison

    def _constant_and_op(self, raw: str) -> tuple[int | float | str, str]:
        rng = self.rng
        value: int | float | str
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        if isinstance(value, (int, float)) and rng.random() < self.config.prob_inequality:
            op = rng.choice(("<", "<=", ">", ">=", "!="))
        elif (
            isinstance(value, str)
            and len(value) >= 2
            and rng.random() < self.config.prob_string_function
        ):
            # The Sec. 2 string extension: take a fragment of the real
            # value, so the predicate is satisfied by the data it came
            # from (keeping the generator's satisfiability guarantee).
            if rng.random() < 0.5:
                op = "starts-with"
                value = value[: rng.randint(1, max(1, len(value) - 1))]
            else:
                op = "contains"
                start = rng.randint(0, len(value) - 2)
                end = rng.randint(start + 1, len(value))
                value = value[start:end]
        else:
            op = "="
        return value, op

    def _combine(self, atoms: list[BooleanExpr]) -> list[BooleanExpr]:
        """Join a step's atoms with connectives into predicate brackets."""
        if not atoms:
            return []
        rng = self.rng
        processed: list[BooleanExpr] = []
        for atom in atoms:
            if rng.random() < self.config.prob_not:
                atom = Not(atom)
            processed.append(atom)
        if len(processed) == 1:
            return processed
        if rng.random() < self.config.prob_or:
            split = rng.randint(1, len(processed) - 1)
            left, right = processed[:split], processed[split:]
            left_expr = left[0] if len(left) == 1 else And(tuple(left))
            right_expr = right[0] if len(right) == 1 else And(tuple(right))
            return [Or((left_expr, right_expr))]
        return [And(tuple(processed))]


def _encoded_step(piece: str) -> Step:
    if piece == "text()":
        return Step(Axis.CHILD, NodeTest(NodeTestKind.TEXT))
    if piece.startswith("@"):
        return Step(Axis.CHILD, NodeTest(NodeTestKind.ATTRIBUTE, piece))
    return Step(Axis.CHILD, NodeTest(NodeTestKind.NAME, piece))


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (mean is small in our workloads)."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def flat_workload(
    root: str,
    branch_labels: Sequence[str],
    queries: int,
    predicates_per_query: int,
    values: Sequence[str],
    rng: random.Random | None = None,
) -> list[XPathFilter]:
    """The *flat workloads* of Sec. 6: every query is
    ``/a[b1/text() = v1 and … and bk/text() = vk]`` with a shared root
    label — the shape Theorem 6.2 analyses."""
    rng = rng or random.Random(0)
    filters: list[XPathFilter] = []
    for i in range(queries):
        labels = rng.sample(list(branch_labels), min(predicates_per_query, len(branch_labels)))
        labels.sort(key=lambda l: branch_labels.index(l))
        atoms = []
        for label in labels:
            raw = rng.choice(list(values))
            try:
                constant: int | float | str = int(raw)
            except ValueError:
                constant = raw
            path = LocationPath(
                (
                    Step(Axis.CHILD, NodeTest(NodeTestKind.NAME, label)),
                    Step(Axis.CHILD, NodeTest(NodeTestKind.TEXT)),
                )
            )
            atoms.append(Comparison(path, "=", constant))
        predicate = atoms[0] if len(atoms) == 1 else And(tuple(atoms))
        step = Step(Axis.CHILD, NodeTest(NodeTestKind.NAME, root), (predicate,))
        path = LocationPath((step,), absolute=True)
        filters.append(XPathFilter(path, oid=f"q{i}", source=str(path)))
    return filters
