"""Workload deduplication: equivalent filters share one automaton.

Large subscription workloads contain *identical* filters under
different oids (many users subscribing to the same thing) and filters
that differ only in conjunct order or redundant boolean structure —
``//a[x=1 and y=2]`` vs ``//a[y=2 and x=1]``.  The XPush machine
already shares their predicates state-by-state, but each duplicate
still contributes its own AFA (more sids per XPush state, more accept
bookkeeping).  This pass canonicalises filters (after
:mod:`repro.xpath.simplify`), groups equivalent ones, and lets the
engine run one representative per class, fanning results back out to
every member oid.

Canonicalisation is *sound, not complete*: it flattens and sorts
commutative connectives and normalises step sugar, so syntactically
different but logically equivalent filters beyond that (e.g. interval
reasoning) stay in separate classes — never merged wrongly.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.xpath.ast import (
    And,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Not,
    Or,
    Step,
    XPathFilter,
)
from repro.xpath.simplify import simplify_path


def canonical_key(path: LocationPath) -> str:
    """A string equal for filters this pass considers equivalent."""
    return _path_key(simplify_path(path))


def _path_key(path: LocationPath) -> str:
    steps = "/".join(_step_key(step) for step in path.steps)
    return ("A:" if path.absolute else "R:") + steps


def _step_key(step: Step) -> str:
    predicates = sorted(_expr_key(p) for p in step.predicates)
    return f"{step.axis.name}:{step.test}" + "".join(f"[{p}]" for p in predicates)


def _expr_key(expr: BooleanExpr) -> str:
    if isinstance(expr, Exists):
        return f"E({_path_key(expr.path)})"
    if isinstance(expr, Comparison):
        constant = expr.value
        if isinstance(constant, float) and constant.is_integer():
            constant = int(constant)  # 2.0 and 2 compare identically
        kind = "s" if isinstance(constant, str) else "n"
        return f"C({_path_key(expr.path)},{expr.op},{kind}{constant!r})"
    if isinstance(expr, Not):
        return f"N({_expr_key(expr.child)})"
    if isinstance(expr, (And, Or)):
        tag = "A" if isinstance(expr, And) else "O"
        children = sorted(_expr_key(c) for c in expr.children)
        return f"{tag}({','.join(children)})"
    raise TypeError(f"not a boolean expression: {expr!r}")


class DeduplicatedWorkload:
    """Equivalence classes of a workload plus the result fan-out map."""

    def __init__(self, filters: list[XPathFilter]):
        oids = [f.oid for f in filters]
        if len(set(oids)) != len(oids):
            raise WorkloadError("duplicate oids in workload")
        self.representatives: list[XPathFilter] = []
        self.members: dict[str, tuple[str, ...]] = {}
        by_key: dict[str, list[str]] = {}
        representative_for: dict[str, XPathFilter] = {}
        for xpath_filter in filters:
            key = canonical_key(xpath_filter.path)
            if key not in by_key:
                by_key[key] = []
                representative_for[key] = xpath_filter
            by_key[key].append(xpath_filter.oid)
        for key, group in by_key.items():
            representative = representative_for[key]
            self.representatives.append(representative)
            self.members[representative.oid] = tuple(group)

    @property
    def original_count(self) -> int:
        return sum(len(group) for group in self.members.values())

    @property
    def class_count(self) -> int:
        return len(self.representatives)

    @property
    def duplicates_removed(self) -> int:
        return self.original_count - self.class_count

    def expand(self, representative_oids: frozenset[str]) -> frozenset[str]:
        """Fan a representative answer set out to all member oids."""
        out: list[str] = []
        for oid in representative_oids:
            out.extend(self.members.get(oid, (oid,)))
        return frozenset(out)


class DeduplicatedEngine:
    """An XPush machine running one representative per filter class.

    Drop-in for :class:`repro.xpush.machine.XPushMachine`'s filtering
    API; answers are identical to running the full workload.
    """

    def __init__(self, filters: list[XPathFilter], options=None, dtd=None):
        from repro.afa.build import build_workload_automata
        from repro.xpush.machine import XPushMachine

        self.dedup = DeduplicatedWorkload(filters)
        self.machine = XPushMachine(
            build_workload_automata(self.dedup.representatives), options, dtd=dtd
        )

    def filter_document(self, document) -> frozenset[str]:
        return self.dedup.expand(self.machine.filter_document(document))

    def filter_stream(self, source) -> list[frozenset[str]]:
        return [self.dedup.expand(r) for r in self.machine.filter_stream(source)]

    @property
    def state_count(self) -> int:
        return self.machine.state_count

    def stats(self) -> dict:
        return {
            "original_filters": self.dedup.original_count,
            "filter_classes": self.dedup.class_count,
            "duplicates_removed": self.dedup.duplicates_removed,
            "xpush_states": self.machine.state_count,
        }
