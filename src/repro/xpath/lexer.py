"""Tokeniser for the Fig. 1 XPath fragment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import XPathSyntaxError

# Token kinds.
SLASH = "SLASH"  # /
DSLASH = "DSLASH"  # //
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
DOT = "DOT"
STAR = "STAR"
AT_STAR = "AT_STAR"  # @*
AT_NAME = "AT_NAME"  # @label
NAME = "NAME"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"  # = != < <= > >=
EOF = "EOF"

_NAME_START_ASCII = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS_ASCII = _NAME_START_ASCII | set("0123456789.-")


def _is_name_start(ch: str) -> bool:
    return ch in _NAME_START_ASCII or (ord(ch) > 127 and ch.isalpha())


def _is_name_char(ch: str) -> bool:
    return ch in _NAME_CHARS_ASCII or (ord(ch) > 127 and (ch.isalnum() or ch == "·"))


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    value: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Tokenise *source*; raises :class:`XPathSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        start = i
        if ch == "/":
            if i + 1 < n and source[i + 1] == "/":
                tokens.append(Token(DSLASH, "//", start))
                i += 2
            else:
                tokens.append(Token(SLASH, "/", start))
                i += 1
        elif ch == "[":
            tokens.append(Token(LBRACKET, ch, start))
            i += 1
        elif ch == "]":
            tokens.append(Token(RBRACKET, ch, start))
            i += 1
        elif ch == "(":
            tokens.append(Token(LPAREN, ch, start))
            i += 1
        elif ch == ")":
            tokens.append(Token(RPAREN, ch, start))
            i += 1
        elif ch == ",":
            tokens.append(Token(COMMA, ch, start))
            i += 1
        elif ch == "*":
            tokens.append(Token(STAR, ch, start))
            i += 1
        elif ch == "@":
            if i + 1 < n and source[i + 1] == "*":
                tokens.append(Token(AT_STAR, "@*", start))
                i += 2
            else:
                i += 1
                name, i = _read_name(source, i, start)
                tokens.append(Token(AT_NAME, "@" + name, start))
        elif ch == ".":
            # Distinguish `.` / `.//` from a leading-dot number like .5
            if i + 1 < n and source[i + 1].isdigit():
                literal, i = _read_number(source, i)
                tokens.append(Token(NUMBER, literal, start))
            else:
                tokens.append(Token(DOT, ch, start))
                i += 1
        elif ch == "=":
            tokens.append(Token(OP, "=", start))
            i += 1
        elif ch == "!":
            if i + 1 < n and source[i + 1] == "=":
                tokens.append(Token(OP, "!=", start))
                i += 2
            else:
                raise XPathSyntaxError("expected '=' after '!'", start, source)
        elif ch == "<":
            if i + 1 < n and source[i + 1] == "=":
                tokens.append(Token(OP, "<=", start))
                i += 2
            else:
                tokens.append(Token(OP, "<", start))
                i += 1
        elif ch == ">":
            if i + 1 < n and source[i + 1] == "=":
                tokens.append(Token(OP, ">=", start))
                i += 2
            else:
                tokens.append(Token(OP, ">", start))
                i += 1
        elif ch in "'\"":
            end = source.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", start, source)
            tokens.append(Token(STRING, source[i + 1 : end], start))
            i = end + 1
        elif ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            literal, i = _read_number(source, i)
            tokens.append(Token(NUMBER, literal, start))
        elif _is_name_start(ch):
            name, i = _read_name(source, i, start)
            tokens.append(Token(NAME, name, start))
        else:
            raise XPathSyntaxError(f"unexpected character {ch!r}", start, source)
    tokens.append(Token(EOF, "", n))
    return tokens


def _read_name(source: str, i: int, start: int) -> tuple[str, int]:
    if i >= len(source) or not _is_name_start(source[i]):
        raise XPathSyntaxError("expected a name", start, source)
    j = i
    n = len(source)
    while j < n and _is_name_char(source[j]):
        # A trailing '.' belongs to names only between name chars (avoid
        # swallowing the `.` of `a.` — not produced by our grammar, but
        # be strict anyway): names may contain dots internally.
        j += 1
    name = source[i:j]
    # `text` immediately followed by `()` is handled by the parser.
    return name, j


def _read_number(source: str, i: int) -> tuple[str, int]:
    j = i
    n = len(source)
    if source[j] == "-":
        j += 1
    seen_dot = False
    while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
        if source[j] == ".":
            # Only treat the dot as part of the number when followed by a
            # digit; `5.` would otherwise eat a path `5./…` (not legal
            # anyway, but keep the lexer predictable).
            if j + 1 >= n or not source[j + 1].isdigit():
                break
            seen_dot = True
        j += 1
    return source[i:j], j


def parse_literal(token: Token) -> int | float | str:
    """Convert a NUMBER/STRING token to its Python value."""
    if token.kind == STRING:
        return token.value
    if "." in token.value:
        return float(token.value)
    return int(token.value)


def iter_token_kinds(tokens: list[Token]) -> Iterator[str]:
    for token in tokens:
        yield token.kind
