"""Recursive-descent parser for the Fig. 1 XPath fragment.

Grammar (paper notation on the left, this parser's behaviour on the
right)::

    P ::= /E | //E          -- absolute filter; // gives the first step
                               a descendant axis
    E ::= label | text() | * | @* | . | E/E | E//E | E[Q]
    Q ::= E | E Oprel Const | Q and Q | Q or Q | not(Q)

plus, as in the paper's examples, attributes by name (``@c``),
parenthesised predicates, and the Sec. 2 string extension
``starts-with(E, "s")`` / ``contains(E, "s")``.

Precedence: ``or`` < ``and`` < ``not`` < atoms, as in XPath 1.0.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath import lexer
from repro.xpath.ast import (
    And,
    Axis,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Not,
    NodeTest,
    NodeTestKind,
    Or,
    Step,
    XPathFilter,
)
from repro.xpath.lexer import Token, parse_literal, tokenize


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            wanted = value or kind
            raise XPathSyntaxError(
                f"expected {wanted!r}, found {actual.value or actual.kind!r}",
                actual.position,
                self.source,
            )
        return token

    def fail(self, message: str) -> XPathSyntaxError:
        token = self.peek()
        return XPathSyntaxError(message, token.position, self.source)

    # -- grammar --------------------------------------------------------

    def parse_filter(self) -> LocationPath:
        if self.accept(lexer.DSLASH):
            first_axis = Axis.DESCENDANT
        elif self.accept(lexer.SLASH):
            first_axis = Axis.CHILD
        else:
            raise self.fail("a filter must start with '/' or '//'")
        steps = self.parse_steps(first_axis)
        self.expect(lexer.EOF)
        return LocationPath(tuple(steps), absolute=True)

    def parse_steps(self, first_axis: Axis) -> list[Step]:
        steps = [self.parse_step(first_axis)]
        while True:
            if self.accept(lexer.DSLASH):
                steps.append(self.parse_step(Axis.DESCENDANT))
            elif self.accept(lexer.SLASH):
                steps.append(self.parse_step(Axis.CHILD))
            else:
                return steps

    def parse_step(self, axis: Axis) -> Step:
        token = self.peek()
        if token.kind == lexer.STAR:
            self.advance()
            test = NodeTest(NodeTestKind.WILDCARD)
        elif token.kind == lexer.AT_STAR:
            self.advance()
            test = NodeTest(NodeTestKind.ATTRIBUTE_WILDCARD)
        elif token.kind == lexer.AT_NAME:
            self.advance()
            test = NodeTest(NodeTestKind.ATTRIBUTE, token.value)
        elif token.kind == lexer.DOT:
            self.advance()
            return Step(Axis.SELF, NodeTest(NodeTestKind.WILDCARD), self.parse_predicates())
        elif token.kind == lexer.NAME:
            self.advance()
            if token.value == "text" and self.accept(lexer.LPAREN):
                self.expect(lexer.RPAREN)
                test = NodeTest(NodeTestKind.TEXT)
            else:
                test = NodeTest(NodeTestKind.NAME, token.value)
        else:
            raise self.fail("expected a node test")
        return Step(axis, test, self.parse_predicates())

    def parse_predicates(self) -> tuple[BooleanExpr, ...]:
        predicates: list[BooleanExpr] = []
        while self.accept(lexer.LBRACKET):
            predicates.append(self.parse_or())
            self.expect(lexer.RBRACKET)
        return tuple(predicates)

    def parse_or(self) -> BooleanExpr:
        left = self.parse_and()
        children = [left]
        while self.accept(lexer.NAME, "or"):
            children.append(self.parse_and())
        if len(children) == 1:
            return left
        return Or(tuple(children))

    def parse_and(self) -> BooleanExpr:
        left = self.parse_boolean_atom()
        children = [left]
        while self.accept(lexer.NAME, "and"):
            children.append(self.parse_boolean_atom())
        if len(children) == 1:
            return left
        return And(tuple(children))

    def parse_boolean_atom(self) -> BooleanExpr:
        token = self.peek()
        if token.kind == lexer.NAME and token.value == "not":
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == lexer.LPAREN:
                self.advance()
                self.advance()
                inner = self.parse_or()
                self.expect(lexer.RPAREN)
                return Not(inner)
        if token.kind == lexer.NAME and token.value in ("starts-with", "contains"):
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == lexer.LPAREN:
                self.advance()
                self.advance()
                path = self.parse_relative_path()
                self.expect(lexer.COMMA)
                literal = self.expect(lexer.STRING)
                self.expect(lexer.RPAREN)
                return Comparison(path, token.value, literal.value)
        if token.kind == lexer.LPAREN:
            self.advance()
            inner = self.parse_or()
            self.expect(lexer.RPAREN)
            return inner
        path = self.parse_relative_path()
        op = self.accept(lexer.OP)
        if op is None:
            return Exists(path)
        literal = self.peek()
        if literal.kind not in (lexer.NUMBER, lexer.STRING):
            raise self.fail("expected a constant after comparison operator")
        self.advance()
        return Comparison(path, op.value, parse_literal(literal))

    def parse_relative_path(self) -> LocationPath:
        """Relative path inside a predicate: E, ./E, .//E."""
        if self.accept(lexer.DSLASH):
            first_axis = Axis.DESCENDANT
        elif self.accept(lexer.SLASH):
            raise self.fail("absolute paths are not allowed inside predicates")
        else:
            first_axis = Axis.CHILD
        steps = self.parse_steps(first_axis)
        # Normalise a leading bare `.` step (`.//a`, `./b`): a SELF step
        # without predicates adds nothing.
        if len(steps) > 1 and steps[0].axis is Axis.SELF and not steps[0].predicates:
            steps = steps[1:]
        return LocationPath(tuple(steps), absolute=False)


def parse_xpath(source: str, oid: str = "") -> XPathFilter:
    """Parse one XPath filter.

    >>> str(parse_xpath("//a[b/text()=1 and .//a[@c>2]]").path)
    '//a[b/text() = 1 and .//a[@c > 2]]'
    """
    path = _Parser(source).parse_filter()
    return XPathFilter(path, oid=oid, source=source)


def parse_workload(sources: dict[str, str] | list[str]) -> list[XPathFilter]:
    """Parse a workload; a list gets oids ``q0, q1, …`` assigned."""
    if isinstance(sources, dict):
        return [parse_xpath(text, oid) for oid, text in sources.items()]
    return [parse_xpath(text, f"q{i}") for i, text in enumerate(sources)]
