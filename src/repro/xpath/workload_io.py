"""Reading and writing workload files.

The on-disk format (shared by the CLI, the examples and any external
tooling) is one filter per line::

    # comments and blank lines are skipped
    oid <TAB> xpath
    xpath                # bare lines get oids q0, q1, …

Round-trips losslessly: ``load_workload(dump_workload(filters))`` gives
back equal filters.
"""

from __future__ import annotations

import io
from typing import IO, Iterable

from repro.errors import WorkloadError
from repro.xpath.ast import XPathFilter
from repro.xpath.parser import parse_xpath


def iter_workload_lines(lines: Iterable[str]) -> Iterable[tuple[str | None, str]]:
    """Yield (oid or None, xpath) pairs from raw lines."""
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "\t" in line:
            oid, _, xpath = line.partition("\t")
            yield oid.strip(), xpath.strip()
        else:
            yield None, line


def load_workload(source: str | IO) -> list[XPathFilter]:
    """Parse a workload from a path, file object, or literal text.

    A string argument containing a newline or a tab is treated as the
    workload text itself; anything else as a file path.
    """
    if isinstance(source, str):
        if "\n" in source or "\t" in source:
            handle: IO = io.StringIO(source)
        else:
            handle = open(source, "r", encoding="utf-8")
    else:
        handle = source
    try:
        filters: list[XPathFilter] = []
        anonymous = 0
        for oid, xpath in iter_workload_lines(handle):
            if oid is None:
                oid = f"q{anonymous}"
                anonymous += 1
            filters.append(parse_xpath(xpath, oid))
    finally:
        if handle is not source and not isinstance(source, io.StringIO):
            handle.close()
    oids = [f.oid for f in filters]
    if len(set(oids)) != len(oids):
        duplicates = sorted({oid for oid in oids if oids.count(oid) > 1})
        raise WorkloadError(f"duplicate oids in workload file: {duplicates}")
    if not filters:
        raise WorkloadError("workload file contains no filters")
    return filters


def dump_workload(filters: Iterable[XPathFilter]) -> str:
    """Serialise filters to the line format (oid<TAB>source)."""
    lines = []
    for xpath_filter in filters:
        source = xpath_filter.source or str(xpath_filter.path)
        if "\t" in source or "\n" in source:
            raise WorkloadError(f"filter source not representable: {source!r}")
        lines.append(f"{xpath_filter.oid}\t{source}")
    return "\n".join(lines) + "\n"


def save_workload(filters: Iterable[XPathFilter], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_workload(filters))
