""":class:`EngineConfig` — every engine knob, in one place.

Before this module existed each engine surface re-declared its own
slice of the configuration space (machine options on
:class:`~repro.xpush.options.XPushOptions`, backend strings on the
parser entry points, shard/batch/queue knobs on the service, the
compaction threshold on the layered engine) and every composite had to
hand-thread each knob through its constructor.  ``EngineConfig``
subsumes all of them: it *contains* the machine-level
:class:`~repro.xpush.options.XPushOptions` (runtime, eviction,
``max_memory_bytes``, ``retain_results``, the Sec. 5 optimisation
flags) and adds the engine-level knobs around it.  A config plus a
workload is everything :func:`repro.engine.create_engine` needs.

Configs are frozen, picklable (they cross the process boundary inside
shard-worker payloads) and validated eagerly at construction, so a bad
knob fails where it was written, not in a worker process later.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xpush.options import XPushOptions

#: Engine kinds :func:`repro.engine.create_engine` builds by default.
#: (The registry is open — see :func:`repro.engine.register_engine`.)
KNOWN_ENGINES = ("xpush", "layered", "sharded", "eager", "naive", "yfilter", "xfilter")

#: Parser backends of the push-mode event path (repro.xmlstream.parser).
BACKENDS = ("python", "expat", "auto")


def _default_options() -> XPushOptions:
    """The library-wide default machine variant (TD, as the service
    always defaulted to: top-down pruning, no value precomputation)."""
    return XPushOptions(top_down=True, precompute_values=False)


@dataclass(frozen=True)
class EngineConfig:
    """Consolidated configuration for any :class:`FilterEngine`.

    Attributes:
        engine: registry name of the engine to build (``"xpush"``,
            ``"layered"``, ``"sharded"``, ``"eager"``, or a baseline).
        options: the machine-level :class:`XPushOptions` (Sec. 5
            optimisation flags, runtime representation, memory bound and
            eviction policy, ``retain_results``).  Engines that manage
            result lifetimes themselves (layered, sharded, broker) force
            ``retain_results=False`` on their inner machines regardless.
        dtd: optional DTD (order optimisation / training).
        backend: parser backend for the push-mode event path.
        compact_threshold: layered engines fold their delta into the
            base after this many uncompacted insertions (Sec. 8's
            amortised brute-force reset).
        shards: shard count for the sharded service (>= 1).
        inner: engine kind the sharded service hosts per shard — any
            registry name whose engine supports updates; ``"layered"``
            keeps insertions from flushing the warmed base tables.
        strategy: initial workload partitioning strategy
            (:data:`repro.service.PARTITION_STRATEGIES`).
        placement: post-boot routing policy of the placement layer
            (:mod:`repro.service.placement`): ``"hash"`` keeps CRC-32
            oid routing; ``"cost"`` boots via cost-model LPT (subsuming
            *strategy*) and routes new subscribes to the lightest
            shard.
        rebalance_threshold: load imbalance (hottest shard over mean,
            >= 1.0) above which ``rebalance()``/``maybe_rebalance()``
            plan filter migrations.
        rebalance_interval: under ``placement="cost"``, check the
            imbalance gauge and auto-rebalance every N processed
            batches (0 = manual rebalancing only).
        batch_size: documents per work item fanned out to the shards.
        queue_depth: max in-flight work items (backpressure bound).
        parallel: force worker processes on (True), off (False) or
            auto (None = processes when ``shards > 1``).
        warm: warm each shard machine via ``warm_up()`` at boot.
        training_seed: seed for the warm-up document generator.
        result_timeout: seconds of no shard progress before a batch is
            declared stuck.
        start_method: multiprocessing start method override.
        eager_max_states: state budget for the eager Sec. 3.2
            construction (it is exponential in the worst case).
    """

    engine: str = "xpush"
    options: XPushOptions = field(default_factory=_default_options)
    dtd: DTD | None = None
    backend: str = "auto"
    compact_threshold: int = 64
    shards: int = 1
    inner: str = "layered"
    strategy: str = "hash"
    placement: str = "hash"
    rebalance_threshold: float = 1.5
    rebalance_interval: int = 0
    batch_size: int = 16
    queue_depth: int = 4
    parallel: bool | None = None
    warm: bool = True
    training_seed: int = 0
    result_timeout: float = 60.0
    start_method: str | None = None
    eager_max_states: int = 50_000

    def __post_init__(self) -> None:
        if not isinstance(self.options, XPushOptions):
            raise WorkloadError(
                f"options must be XPushOptions, got {type(self.options).__name__}"
            )
        if self.backend not in BACKENDS:
            raise WorkloadError(
                f"unknown parser backend {self.backend!r}; known: {sorted(BACKENDS)}"
            )
        if self.compact_threshold < 1:
            raise WorkloadError(
                f"compact_threshold must be >= 1, got {self.compact_threshold}"
            )
        if self.shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {self.shards}")
        if self.batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_depth < 1:
            raise WorkloadError(f"queue_depth must be >= 1, got {self.queue_depth}")
        # Deferred import: repro.service.partition is leaf-light, but
        # importing it at module level would pull repro.service.__init__
        # (which imports the engine package) into a cycle.
        from repro.service.partition import PARTITION_STRATEGIES, PLACEMENT_POLICIES

        if self.strategy not in PARTITION_STRATEGIES:
            raise WorkloadError(
                f"unknown partition strategy {self.strategy!r}; "
                f"known: {sorted(PARTITION_STRATEGIES)}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise WorkloadError(
                f"unknown placement policy {self.placement!r}; "
                f"known: {sorted(PLACEMENT_POLICIES)}"
            )
        if self.rebalance_threshold < 1.0:
            raise WorkloadError(
                f"rebalance_threshold must be >= 1.0, got {self.rebalance_threshold}"
            )
        if self.rebalance_interval < 0:
            raise WorkloadError(
                f"rebalance_interval must be >= 0, got {self.rebalance_interval}"
            )
        if self.result_timeout <= 0:
            raise WorkloadError(
                f"result_timeout must be > 0 seconds, got {self.result_timeout}"
            )
        if self.eager_max_states < 1:
            raise WorkloadError(
                f"eager_max_states must be >= 1, got {self.eager_max_states}"
            )
        if self.engine == "sharded" and self.inner == "sharded":
            raise WorkloadError("sharded engines cannot nest sharded inner engines")
        if self.options.schema_mode != "off" and self.dtd is None:
            raise WorkloadError(
                f"schema_mode={self.options.schema_mode!r} requires a DTD "
                "(EngineConfig.dtd)"
            )

    def with_engine(self, engine: str, **overrides: Any) -> "EngineConfig":
        """A copy selecting a different engine kind (plus overrides) —
        how composites derive their inner-engine config."""
        return replace(self, engine=engine, **overrides)

    def describe(self) -> str:
        parts = [self.engine, self.options.describe()]
        if self.engine == "sharded":
            parts.append(f"{self.shards}x{self.inner}")
        return ":".join(parts)
