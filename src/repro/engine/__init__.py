"""One engine surface for the whole library.

Every filtering engine — serial lazy machine, eager machine, layered
updatable engine, sharded multi-process service, and the three
related-work baselines — conforms to the
:class:`~repro.engine.protocol.FilterEngine` protocol, is configured by
one consolidated :class:`~repro.engine.config.EngineConfig`, and is
constructed through :func:`~repro.engine.factory.create_engine`:

    from repro.engine import EngineConfig, create_engine

    engine = create_engine(
        EngineConfig(engine="sharded", shards=4, inner="layered"),
        {"q0": "//a[b = 1]"},
    )
    engine.subscribe("q1", "//c")          # live update, no table flush
    answers = engine.filter_stream(xml)    # one oid-set per document
    engine.close()

See ``docs/architecture.md`` for the full contract, including the
dynamic-update control plane of the sharded service.
"""

from repro.engine.config import BACKENDS, KNOWN_ENGINES, EngineConfig
from repro.engine.factory import create_engine, engine_names, register_engine
from repro.engine.protocol import FilterEngine, StreamSource
from repro.engine.serial import (
    BaselineEngine,
    EagerEngine,
    RebuildFilterEngine,
    SerialXPushEngine,
)

__all__ = [
    "BACKENDS",
    "BaselineEngine",
    "EagerEngine",
    "EngineConfig",
    "FilterEngine",
    "KNOWN_ENGINES",
    "RebuildFilterEngine",
    "SerialXPushEngine",
    "StreamSource",
    "create_engine",
    "engine_names",
    "register_engine",
]
