"""The engine registry: ``create_engine(config)``.

Composites (:class:`~repro.service.ShardedFilterEngine`,
:class:`~repro.broker.MessageBroker`) and applications construct their
engines exclusively through this factory, so a new engine kind — or a
new knob on an existing one — is a one-site change: register a builder
here, add the field to :class:`~repro.engine.config.EngineConfig`, and
every composite, the CLI and the benches can use it.

Builders receive the parsed filter list and the full config; they read
only the fields they understand.  The ``snapshot`` argument resumes an
engine from a prior :meth:`~repro.engine.protocol.FilterEngine.snapshot`
capture instead of a filter list (a restarted shard worker boots this
way, resuming base + uncompacted delta + tombstones without re-parsing
the base workload).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.engine.config import EngineConfig
from repro.engine.protocol import FilterEngine
from repro.engine.serial import (
    EagerEngine,
    SerialXPushEngine,
    naive_engine,
    normalize_filters,
    xfilter_engine,
    yfilter_engine,
)
from repro.errors import WorkloadError
from repro.xpath.ast import XPathFilter

WorkloadSpec = Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None

EngineBuilder = Callable[[list[XPathFilter], EngineConfig], FilterEngine]

_REGISTRY: dict[str, EngineBuilder] = {}


def register_engine(name: str, builder: EngineBuilder) -> None:
    """Register (or override) an engine kind for :func:`create_engine`."""
    _REGISTRY[name] = builder


def engine_names() -> list[str]:
    """The registered engine kinds, sorted."""
    return sorted(_REGISTRY)


def create_engine(
    config: EngineConfig | None = None,
    filters: WorkloadSpec = None,
    *,
    snapshot: Mapping[str, Any] | None = None,
) -> FilterEngine:
    """Build the engine *config* names, over *filters* or a *snapshot*.

    Exactly one workload source may be given; with neither, the engine
    starts empty and grows through ``subscribe``.
    """
    config = config or EngineConfig()
    if snapshot is not None and filters:
        raise WorkloadError("pass either filters or snapshot, not both")
    builder = _REGISTRY.get(config.engine)
    if builder is None:
        raise WorkloadError(
            f"unknown engine {config.engine!r}; known: {engine_names()}"
        )
    engine = builder([] if snapshot is not None else normalize_filters(filters), config)
    if snapshot is not None:
        engine.restore(dict(snapshot))
    return engine


# ----------------------------------------------------------------------
# Built-in builders
# ----------------------------------------------------------------------


def _build_xpush(filters: list[XPathFilter], config: EngineConfig) -> FilterEngine:
    return SerialXPushEngine(filters, config)


def _build_layered(filters: list[XPathFilter], config: EngineConfig) -> FilterEngine:
    from repro.xpush.layered import LayeredFilterEngine

    return LayeredFilterEngine(
        filters,
        config.options,
        config.dtd,
        compact_threshold=config.compact_threshold,
        backend=config.backend,
    )


def _build_sharded(filters: list[XPathFilter], config: EngineConfig) -> FilterEngine:
    # Local import: the service package builds its inner engines through
    # this factory, so the dependency must point service -> engine only.
    from repro.service.engine import ShardedFilterEngine

    return ShardedFilterEngine(filters, config=config)


def _build_eager(filters: list[XPathFilter], config: EngineConfig) -> FilterEngine:
    return EagerEngine(filters, config)


register_engine("xpush", _build_xpush)
register_engine("layered", _build_layered)
register_engine("sharded", _build_sharded)
register_engine("eager", _build_eager)
register_engine("naive", naive_engine)
register_engine("xfilter", xfilter_engine)
register_engine("yfilter", yfilter_engine)
