"""The :class:`FilterEngine` protocol — one surface for every engine.

Every filtering engine in the library (the lazy XPush machine, the
eager Sec. 3.2 machine, the Sec. 8 layered engine, the sharded
multi-process service and the three related-work baselines) answers
the same question — *which subscriptions match this document?* — yet
each grew its own ad-hoc surface.  This protocol names the shared
contract once, so composites (:class:`repro.service.ShardedFilterEngine`,
:class:`repro.broker.MessageBroker`) can wrap *any* engine and the
per-engine knobs live in one :class:`repro.engine.config.EngineConfig`.

The contract, in paper terms:

- **workload updates are first-class** (Sec. 8): ``subscribe`` /
  ``unsubscribe`` change the live workload.  How cheap that is differs
  per engine — layered insertion touches only a small delta machine,
  the serial machines fall back to the brute-force rebuild ("flushing
  an entire cache") — but the *semantics* are identical: after the
  call returns, filtering reflects the new workload;
- **filtering** over the three source granularities the library
  supports: an in-memory :class:`~repro.xmlstream.dom.Document`, a
  stream of SAX :class:`~repro.xmlstream.events.Event` values, or raw
  XML text/bytes/file (the push-mode fast path);
- **persistence**: ``snapshot()`` captures the current workload as a
  JSON-safe dict and ``restore()`` resumes from one — including any
  uncompacted layered delta and tombstones, so a restarted worker
  carries on from the exact workload version it crashed at;
- **observability and lifecycle**: ``stats()`` and ``close()``.

Beyond the required surface, engines may expose **optional control
verbs** that callers discover with ``getattr`` — the serving tier and
broker forward them over the wire only when present: ``compact()``
(fold the layered delta into the base, PR 5's update plane) and, on
the sharded service, the placement verbs ``rebalance()`` /
``split()`` / ``merge()`` (:mod:`repro.service.placement`).  Engines
without a verb simply do not grow stubs for it; absence is the
capability signal.

The protocol is ``runtime_checkable`` so tests can assert conformance
with ``isinstance``; the typed contract is enforced by the strict
``mypy`` pass over this package in CI.
"""

from __future__ import annotations

from typing import IO, Any, Callable, Iterable, Optional, Protocol, Union, runtime_checkable

from repro.xmlstream.dom import Document
from repro.xmlstream.events import Event

#: Anything the push-mode parser accepts: XML text, UTF-8 bytes, or a
#: file-like object open in text or binary mode.
StreamSource = Union[str, bytes, IO[str], IO[bytes]]

#: Event-time match sink: ``hook(oid, doc_index, event_index)``.
#: ``doc_index`` is the 0-based document position *within the current
#: filter call*; ``event_index`` is the SAX event position within that
#: document at which the match was decided (``startDocument`` is event
#: 0), or ``-1`` when the engine has no event-time information (the
#: document-granularity rebuild engines).  Each oid is delivered at
#: most once per document, emissions are monotone in event order, and
#: the union over a document equals its ``filter_*`` answer set.
MatchHook = Callable[[str, int, int], None]


@runtime_checkable
class FilterEngine(Protocol):
    """A filtering engine over a mutable workload of XPath filters."""

    #: Optional event-time match sink (see :data:`MatchHook`).  Engines
    #: with a streaming evaluator (xpush, layered, sharded) fire it at
    #: the deciding event — under ``XPushOptions.early`` that is the
    #: earliest event the paper's Sec. 5 notification resolves; without
    #: early it is the document end.  Document-granularity engines fire
    #: at document completion with ``event_index=-1``.
    on_match: Optional[MatchHook]

    # -- workload control plane ----------------------------------------

    def subscribe(self, oid: str, xpath: str) -> None:
        """Add filter *xpath* under *oid*; raises
        :class:`~repro.errors.WorkloadError` if *oid* is already live
        and :class:`~repro.errors.XPathSyntaxError` on a bad filter.
        The update is visible to every later ``filter_*`` call."""
        ...

    def unsubscribe(self, oid: str) -> None:
        """Remove the filter under *oid*; raises
        :class:`~repro.errors.WorkloadError` if *oid* is not live."""
        ...

    @property
    def filter_count(self) -> int:
        """Number of currently live filters."""
        ...

    # -- filtering -----------------------------------------------------

    def filter_document(self, document: Document) -> frozenset[str]:
        """Oids of the live filters matching one in-memory document."""
        ...

    def filter_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        """Filter a SAX event stream; one oid-set per document."""
        ...

    def filter_stream(self, source: StreamSource) -> list[frozenset[str]]:
        """Parse and filter (possibly multi-document) XML text."""
        ...

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe capture of the current workload (including any
        pending layered delta/tombstones, where the engine has them)."""
        ...

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Replace the current workload with a ``snapshot()`` capture."""
        ...

    # -- observability and lifecycle -----------------------------------

    def stats(self) -> dict[str, Any]:
        """Engine counters; every engine includes at least ``engine``
        (its registry name), ``filters`` (the live filter count) and
        the uniform placement gauge block — ``shard_load`` (per-shard
        cost list; length 1 on serial engines) and ``imbalance``
        (hottest shard over mean, 1.0 when balanced) — so dashboards
        never special-case engine kinds."""
        ...

    def close(self) -> None:
        """Release resources (worker processes, queues).  Idempotent;
        filtering after close is engine-defined (composites raise)."""
        ...
