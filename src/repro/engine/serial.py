"""In-process engines behind the :class:`FilterEngine` protocol.

Three families live here:

- :class:`SerialXPushEngine` — the lazy XPush machine (Sec. 3-5) with
  the Sec. 8 *brute-force* update path: a subscription change marks
  the engine stale and the machine is rebuilt lazily on the next
  filter call ("equivalent to flushing an entire cache").  Use the
  layered engine when updates must not flush the warmed tables.
- :class:`EagerEngine` — the fully-materialised Sec. 3.2 machine;
  updates rebuild the whole table set (it is precomputation by
  definition).
- :class:`BaselineEngine` — the related-work baselines (naive,
  XFilter-style, YFilter-style) wrapped behind the same surface, so
  differential tests and benches can swap engines by config alone.

All of them share the same update bookkeeping: a live ``oid → filter``
map, eager XPath validation at ``subscribe`` time, and a JSON-safe
``snapshot()`` of the sources.  What differs is only how the inner
evaluator is (re)built.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterable, Mapping, Protocol, Sequence

from repro.engine.config import EngineConfig
from repro.engine.protocol import MatchHook, StreamSource
from repro.errors import WorkloadError
from repro.xmlstream.dom import Document, documents_of_events, parse_forest
from repro.xmlstream.events import Event
from repro.xpath.ast import XPathFilter
from repro.xpath.parser import parse_xpath
from repro.xpush.machine import XPushMachine

#: ``snapshot()`` format tag shared by the source-level engines.
SNAPSHOT_FORMAT = "repro-engine-workload"
SNAPSHOT_VERSION = 1


def normalize_filters(
    filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
) -> list[XPathFilter]:
    """Accept the workload spellings used across the library — parsed
    filters, an oid→xpath mapping, or bare source strings."""
    if filters is None:
        return []
    if isinstance(filters, Mapping):
        return [parse_xpath(source, oid) for oid, source in filters.items()]
    out: list[XPathFilter] = []
    for index, item in enumerate(filters):
        if isinstance(item, XPathFilter):
            out.append(item)
        else:
            out.append(parse_xpath(item, f"q{index}"))
    return out


def sources_snapshot(name: str, filters: Mapping[str, XPathFilter]) -> dict[str, Any]:
    """The shared ``snapshot()`` payload: live filters by source."""
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "engine": name,
        "filters": {oid: f.source for oid, f in filters.items()},
    }


def sources_from_snapshot(snapshot: Mapping[str, Any]) -> dict[str, XPathFilter]:
    """Decode a :func:`sources_snapshot` payload back into filters."""
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise WorkloadError("not a repro engine workload snapshot")
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise WorkloadError(
            f"unsupported engine snapshot version {snapshot.get('version')!r}"
        )
    filters = snapshot.get("filters")
    if not isinstance(filters, Mapping):
        raise WorkloadError("malformed engine snapshot: no filters mapping")
    return {oid: parse_xpath(source, oid) for oid, source in filters.items()}


def record_schema_identity(out: dict[str, Any], config: EngineConfig) -> None:
    """Record the schema identity (mode + DTD fingerprint) in a
    snapshot payload, mirroring how the runtime is recorded: the
    pruned tables are derived data rebuilt on load, so the snapshot
    carries *which* schema they were derived from."""
    out["schema_mode"] = config.options.schema_mode
    if config.options.schema_mode != "off" and config.dtd is not None:
        from repro.afa.schema import dtd_fingerprint

        out["schema_fingerprint"] = dtd_fingerprint(config.dtd)


def apply_schema_identity(
    snapshot: Mapping[str, Any], config: EngineConfig
) -> EngineConfig:
    """Re-apply a snapshot's recorded schema identity to *config*.

    Raises :class:`WorkloadError` when the snapshot records a DTD
    fingerprint that does not match the restoring engine's DTD —
    restoring would silently rebuild different pruned tables than the
    ones the snapshot's answers came from.
    """
    mode = snapshot.get("schema_mode")
    if not isinstance(mode, str):
        return config  # pre-schema snapshot: nothing recorded
    fingerprint = snapshot.get("schema_fingerprint")
    if isinstance(fingerprint, str) and mode != "off":
        if config.dtd is None:
            raise WorkloadError(
                f"snapshot was built with schema specialization (mode={mode!r}) "
                "but the restoring engine has no DTD"
            )
        from repro.afa.schema import dtd_fingerprint

        actual = dtd_fingerprint(config.dtd)
        if actual != fingerprint:
            raise WorkloadError(
                "schema fingerprint mismatch: snapshot recorded "
                f"{fingerprint[:12]}…, restoring engine's DTD is {actual[:12]}…"
            )
    if mode != config.options.schema_mode:
        config = replace(config, options=replace(config.options, schema_mode=mode))
    return config


class _DocumentEvaluator(Protocol):
    """What a rebuildable engine needs from its inner evaluator."""

    def filter_document(self, document: Document) -> frozenset[str]: ...


class RebuildFilterEngine:
    """Shared base: live filter map + lazy rebuild-on-change.

    Subclasses provide :meth:`_build` (filters → inner evaluator).  The
    inner evaluator is invalidated by any update and rebuilt on the
    next filter call — the Sec. 8 brute-force strategy, shared by the
    serial machines and all baselines.
    """

    name = "rebuild"

    def __init__(
        self,
        filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
        config: EngineConfig | None = None,
    ):
        self.config = config or EngineConfig(engine=self.name)
        self._filters: dict[str, XPathFilter] = {}
        for f in normalize_filters(filters):
            if f.oid in self._filters:
                raise WorkloadError(f"duplicate oid {f.oid!r}")
            self._filters[f.oid] = f
        self._inner: _DocumentEvaluator | None = None
        self.rebuilds = 0
        #: Event-time match sink (FilterEngine protocol).  The rebuild
        #: engines evaluate whole documents, so the base implementation
        #: fires at document completion with ``event_index=-1``; the
        #: XPush subclasses relay the machine's true event-time hook.
        self.on_match: MatchHook | None = None

    # -- workload control plane ----------------------------------------

    def subscribe(self, oid: str, xpath: str) -> None:
        if oid in self._filters:
            raise WorkloadError(f"oid {oid!r} already subscribed")
        self._filters[oid] = parse_xpath(xpath, oid)
        self._inner = None  # rebuild lazily (Sec. 8 brute-force path)

    def unsubscribe(self, oid: str) -> None:
        if oid not in self._filters:
            raise WorkloadError(f"unknown oid {oid!r}")
        del self._filters[oid]
        self._inner = None

    @property
    def filter_count(self) -> int:
        return len(self._filters)

    # -- inner evaluator -----------------------------------------------

    def _build(self, filters: list[XPathFilter]) -> _DocumentEvaluator:
        raise NotImplementedError

    def _live(self) -> _DocumentEvaluator:
        if self._inner is None:
            self._inner = self._build(list(self._filters.values()))
            self.rebuilds += 1
        return self._inner

    # -- filtering -----------------------------------------------------

    def filter_document(self, document: Document) -> frozenset[str]:
        matched = self._live().filter_document(document)
        self._emit_document_matches(matched, 0)
        return matched

    def filter_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        documents = documents_of_events(list(events))
        return self._filter_documents(documents)

    def filter_stream(self, source: StreamSource) -> list[frozenset[str]]:
        return self._filter_documents(self._documents(source))

    def _filter_documents(self, documents: list[Document]) -> list[frozenset[str]]:
        inner = self._live()
        out: list[frozenset[str]] = []
        for index, doc in enumerate(documents):
            matched = inner.filter_document(doc)
            self._emit_document_matches(matched, index)
            out.append(matched)
        return out

    def _emit_document_matches(self, matched: frozenset[str], doc_index: int) -> None:
        """Document-granularity on_match delivery: these engines learn
        nothing before the evaluator returns, so every match carries
        ``event_index=-1`` ("decided at document completion")."""
        hook = self.on_match
        if hook is not None:
            for oid in sorted(matched):
                hook(oid, doc_index, -1)

    def _documents(self, source: StreamSource) -> list[Document]:
        if not isinstance(source, (str, bytes)):
            source = source.read()
        if isinstance(source, bytes):
            source = source.decode("utf-8")
        return parse_forest(source, backend=self.config.backend)

    # -- persistence, stats, lifecycle ---------------------------------

    def snapshot(self) -> dict[str, Any]:
        return sources_snapshot(self.name, self._filters)

    def restore(self, snapshot: dict[str, Any]) -> None:
        self._filters = sources_from_snapshot(snapshot)
        self._inner = None

    def stats(self) -> dict[str, Any]:
        return {
            "engine": self.name,
            "filters": len(self._filters),
            "rebuilds": self.rebuilds,
            "stale": self._inner is None,
            # Uniform placement gauge block: a serial engine is one
            # "shard" whose load is its filter count; richer engines
            # override the load with their automaton weight.
            "shard_load": [float(len(self._filters))],
            "imbalance": 1.0,
        }

    def close(self) -> None:
        self._inner = None


class SerialXPushEngine(RebuildFilterEngine):
    """The lazy XPush machine behind the unified engine surface.

    The inner machine is built with ``retain_results=False`` — answers
    are returned per call, so an unbounded stream cannot accumulate a
    per-document results list inside the engine.
    """

    name = "xpush"

    def __init__(
        self,
        filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
        config: EngineConfig | None = None,
    ):
        super().__init__(filters, config)
        # Machine doc_seq of the first document of the current filter
        # call — the relay subtracts it so on_match carries the 0-based
        # document index within the call, per the protocol contract.
        self._match_base = 0

    def _build(self, filters: list[XPathFilter]) -> XPushMachine:
        config = self.config
        return XPushMachine.from_filters(
            filters,
            replace(config.options, retain_results=False),
            dtd=config.dtd,
        )

    def _machine(self) -> XPushMachine:
        inner = self._live()
        assert isinstance(inner, XPushMachine)
        return inner

    def _machine_for_call(self) -> XPushMachine:
        """The live machine with the event-time relay (un)wired for one
        filter call.  Wired per call so a machine rebuilt by an update
        picks the hook back up, and an unset hook costs the hot path
        nothing (the machine skips per-oid delivery entirely)."""
        machine = self._machine()
        machine.on_match = self._relay_match if self.on_match is not None else None
        self._match_base = machine.doc_seq
        return machine

    def _relay_match(self, oid: str, doc_seq: int, event_index: int) -> None:
        hook = self.on_match
        if hook is not None:
            hook(oid, doc_seq - self._match_base, event_index)

    def filter_document(self, document: Document) -> frozenset[str]:
        # Route through the machine's event path (not the base class's
        # document-time emission) so on_match fires at event time.
        return self._machine_for_call().filter_document(document)

    def filter_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        return self._machine_for_call().process_events(iter(events))

    def filter_stream(self, source: StreamSource) -> list[frozenset[str]]:
        # The zero-allocation push path: the scanner drives the machine
        # callbacks directly, no Document or Event objects in between.
        return self._machine_for_call().filter_stream(
            source, backend=self.config.backend
        )

    def warm_up(self, seed: int = 0) -> int:
        return self._machine().warm_up(seed=seed)

    def stats(self) -> dict[str, Any]:
        out = super().stats()
        machine = self._inner
        if isinstance(machine, XPushMachine):
            out.update(
                afa_states=machine.workload.state_count,
                xpush_states=machine.state_count,
                hit_ratio=machine.stats.hit_ratio,
                resident_bytes=machine.store.resident_bytes,
                table_entries=machine.store.table_entries,
                evictions=machine.stats.evictions,
                gc_states=machine.stats.gc_states,
                flushes=machine.stats.flushes,
                codegen_compile_ms=machine.stats.codegen_compile_ms,
                codegen_handlers=machine.stats.codegen_handlers,
                codegen_fallbacks=machine.stats.codegen_fallbacks,
                schema_pruned_states=machine.stats.schema_pruned_states,
                schema_pruned_edges=machine.stats.schema_pruned_edges,
                schema_fallbacks=machine.stats.schema_fallbacks,
            )
        else:
            out.update(
                afa_states=0,
                xpush_states=0,
                hit_ratio=0.0,
                resident_bytes=0,
                table_entries=0,
                evictions=0,
                gc_states=0,
                flushes=0,
                codegen_compile_ms=0.0,
                codegen_handlers=0,
                codegen_fallbacks=0,
                schema_pruned_states=0,
                schema_pruned_edges=0,
                schema_fallbacks=0,
            )
        out["runtime"] = self.config.options.runtime
        out["schema_mode"] = self.config.options.schema_mode
        out["backend"] = self.config.backend
        out["shard_load"] = [float(out["afa_states"])]
        return out

    def snapshot(self) -> dict[str, Any]:
        # Record the runtime so a restored engine rebuilds the same
        # machine shape (compiled codegen handlers are derived data,
        # rebuilt on load exactly like the bitmask tables), and the
        # schema identity (mode + DTD fingerprint) so restore rebuilds
        # identical pruned tables — or refuses a mismatched DTD.
        out = super().snapshot()
        out["runtime"] = self.config.options.runtime
        record_schema_identity(out, self.config)
        return out

    def restore(self, snapshot: dict[str, Any]) -> None:
        super().restore(snapshot)
        runtime = snapshot.get("runtime")
        if isinstance(runtime, str) and runtime != self.config.options.runtime:
            self.config = replace(
                self.config, options=replace(self.config.options, runtime=runtime)
            )
        self.config = apply_schema_identity(snapshot, self.config)


class _EagerAdapter:
    """Bridges ``EagerXPushMachine.run`` to ``filter_document``."""

    def __init__(self, machine: Any):
        self.machine = machine

    def filter_document(self, document: Document) -> frozenset[str]:
        result = self.machine.run(document)
        assert isinstance(result, frozenset)
        return result


class EagerEngine(RebuildFilterEngine):
    """The fully-materialised Sec. 3.2 machine.  Every update pays the
    full eager construction — precomputation is the point of it."""

    name = "eager"

    def _build(self, filters: list[XPathFilter]) -> _DocumentEvaluator:
        from repro.xpush.eager import EagerXPushMachine

        return _EagerAdapter(
            EagerXPushMachine(filters, max_states=self.config.eager_max_states)
        )

    def stats(self) -> dict[str, Any]:
        out = super().stats()
        inner = self._inner
        if isinstance(inner, _EagerAdapter):
            out["xpush_states"] = inner.machine.state_count
        return out


class BaselineEngine(RebuildFilterEngine):
    """A related-work baseline behind the protocol; *builder* maps the
    live filter list to the baseline's evaluator."""

    def __init__(
        self,
        name: str,
        builder: Callable[[list[XPathFilter]], _DocumentEvaluator],
        filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
        config: EngineConfig | None = None,
    ):
        self.name = name
        self._builder = builder
        super().__init__(filters, config)

    def _build(self, filters: list[XPathFilter]) -> _DocumentEvaluator:
        return self._builder(filters)


def naive_engine(
    filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
    config: EngineConfig | None = None,
) -> BaselineEngine:
    from repro.baselines.naive import NaiveEngine

    return BaselineEngine("naive", lambda fs: NaiveEngine(fs), filters, config)


def xfilter_engine(
    filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
    config: EngineConfig | None = None,
) -> BaselineEngine:
    from repro.baselines.xfilter import PerQueryEngine

    return BaselineEngine("xfilter", lambda fs: PerQueryEngine(fs), filters, config)


def yfilter_engine(
    filters: Sequence[XPathFilter] | Mapping[str, str] | Iterable[str] | None,
    config: EngineConfig | None = None,
) -> BaselineEngine:
    from repro.baselines.yfilter import SharedPathEngine

    return BaselineEngine("yfilter", lambda fs: SharedPathEngine(fs), filters, config)
