"""Session-cached sweep data shared by the figure benchmarks.

Figures 5/6/7 plot three metrics of the *same* runs (filtering time,
state count, state size), as do Figures 9/10/11 for the k-sweep and the
data-size sweep.  Computing each run once and letting every bench read
its metric keeps the benchmark suite's wall-clock reasonable.
"""

from __future__ import annotations

from functools import lru_cache

from repro.afa.build import build_workload_automata
from repro.bench.harness import VariantResult, run_variant
from repro.bench.workloads import (
    PAPER_DATA_BYTES,
    PAPER_QUERY_SWEEP,
    scaled,
    standard_stream,
    standard_workload,
)
from repro.xpush.machine import XPushMachine
from repro.xpush.options import variant_options

#: Series of Figs. 5-7 (Fig. 5 adds the parse-only floor separately).
FIG5_VARIANTS = ("basic", "TD", "TD-order", "TD-order-train", "TD-order-early-train")
FIG6_VARIANTS = ("basic", "TD", "TD-order", "TD-order-train")


def query_sweep(mean_predicates: float) -> tuple[int, ...]:
    """The x-axis of Figs. 5-7: scaled versions of the paper's sweep.

    At 1.15 predicates/query the paper sweeps 50k-200k queries; at
    10.45 it sweeps 5k-20k (keeping total atomic predicates 50k-200k).
    """
    divisor = 1 if mean_predicates < 5 else 10
    return tuple(scaled(q // divisor, minimum=10) for q in PAPER_QUERY_SWEEP)


@lru_cache(maxsize=None)
def _workload_automata(queries: int, mean_predicates: float, exact: int | None):
    filters, dataset = standard_workload(
        queries, mean_predicates=mean_predicates, exact_predicates=exact
    )
    return build_workload_automata(filters), dataset


@lru_cache(maxsize=None)
def sweep_point(
    variant: str,
    queries: int,
    mean_predicates: float,
    exact: int | None = None,
    stream_bytes: int | None = None,
) -> VariantResult:
    """One (variant, workload, stream) measurement, cached per session."""
    workload, dataset = _workload_automata(queries, mean_predicates, exact)
    stream = standard_stream(stream_bytes or scaled(PAPER_DATA_BYTES, minimum=20_000))
    return run_variant(variant, workload, stream, dtd=dataset.dtd)


@lru_cache(maxsize=4)
def warm_machine(queries: int, mean_predicates: float) -> tuple[XPushMachine, str]:
    """A machine already run once over the standard stream — the
    paper's "completed machine"; benchmarks time its second pass."""
    workload, dataset = _workload_automata(queries, mean_predicates, None)
    stream = standard_stream(scaled(PAPER_DATA_BYTES, minimum=20_000))
    machine = XPushMachine(workload, variant_options("TD-order"), dtd=dataset.dtd)
    machine.filter_stream(stream)
    machine.clear_results()
    return machine, stream
