"""Standard workloads and streams for the figure benchmarks.

The paper sweeps 50 000-200 000 queries over a 9.12 MB Protein fragment
on a 700 MHz Pentium III running C++.  Pure CPython is roughly two
orders of magnitude slower per event, so the default scale runs the
same *shapes* at 1/100 size: 500-2 000 queries over ~100 KB-1 MB
streams.  Set ``REPRO_BENCH_SCALE`` (a float; 1.0 = paper scale) to
move along that axis; every bench prints the parameters it actually
used so the numbers are interpretable.

Workload knobs mirror Sec. 7: wildcard and descendant probabilities are
0, predicates-per-query averages 1.15 or 10.45 (or an exact k for the
Fig. 9-11 sweeps), constants are drawn from the dataset's value pools.
"""

from __future__ import annotations

import os
import random
from functools import lru_cache

from repro.data.protein import ProteinDataset, document_to_xml
from repro.xpath.ast import XPathFilter, count_atomic_predicates
from repro.xpath.generator import GeneratorConfig, QueryGenerator

#: The paper's reference points, used to derive scaled defaults.
PAPER_QUERY_SWEEP = (50_000, 100_000, 150_000, 200_000)
PAPER_DATA_BYTES = 9_120_000  # the 9.12 MB Protein fragment


def bench_scale() -> float:
    """Scale factor vs. the paper's workload sizes (default 1/100)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))


def scaled(paper_value: int, minimum: int = 1) -> int:
    """*paper_value* scaled by :func:`bench_scale`, floored."""
    return max(minimum, int(paper_value * bench_scale()))


@lru_cache(maxsize=8)
def _dataset(seed: int) -> ProteinDataset:
    return ProteinDataset(seed=seed)


def standard_workload(
    queries: int,
    mean_predicates: float = 1.15,
    exact_predicates: int | None = None,
    seed: int = 0,
    dataset_seed: int = 0,
) -> tuple[list[XPathFilter], ProteinDataset]:
    """A Sec. 7 workload over the (synthetic) Protein dataset.

    Returns the filters and the dataset (whose DTD the machine variants
    need for the order optimisation and training).
    """
    dataset = _dataset(dataset_seed)
    config = GeneratorConfig(
        seed=seed,
        prob_wildcard=0.0,
        prob_descendant=0.0,
        mean_predicates=mean_predicates,
        exact_predicates=exact_predicates,
        path_depth_min=2,
        path_depth_max=4,
        prob_inequality=0.1,
        prob_attribute_predicate=0.3,
    )
    generator = QueryGenerator(dataset.dtd, dataset.value_pool, config)
    filters = generator.generate(queries)
    return filters, dataset


def workload_stats(filters: list[XPathFilter]) -> dict:
    total = sum(count_atomic_predicates(f.path) for f in filters)
    return {
        "queries": len(filters),
        "atomic_predicates": total,
        "predicates_per_query": total / len(filters) if filters else 0.0,
    }


@lru_cache(maxsize=8)
def standard_stream(target_bytes: int, seed: int = 0) -> str:
    """A Protein stream of roughly *target_bytes* UTF-8 bytes."""
    return _dataset(seed).stream_of_bytes(target_bytes)


@lru_cache(maxsize=8)
def locality_stream(
    target_bytes: int,
    hot_docs: int = 8,
    hot_fraction: float = 0.75,
    seed: int = 0,
) -> str:
    """A Protein stream with document-level locality.

    Sec. 6's infinite streams are not uniform: real feeds repeat a small
    set of recurring message shapes (the hot pool, *hot_fraction* of the
    documents) while novel content keeps arriving and growing the state
    space without bound (the tail, every document distinct).  This is
    the access pattern memory management has to cope with — the tail
    forces eviction forever, and a policy is judged by whether the hot
    pool's states survive it.  ``standard_stream`` has no such reuse:
    every document is distinct, so replaying it makes every reuse
    distance equal to the whole stream and no bounded policy can do
    better than any other.
    """
    dataset = _dataset(seed)
    hot = [document_to_xml(doc) for doc in dataset.documents(hot_docs)]
    tail = ProteinDataset(seed=seed + 1).documents(1 << 30)
    rng = random.Random(seed + 2)
    pieces: list[str] = []
    total = 0
    while total < target_bytes:
        text = rng.choice(hot) if rng.random() < hot_fraction else document_to_xml(next(tail))
        pieces.append(text)
        total += len(text.encode("utf-8"))
    return "".join(pieces)
