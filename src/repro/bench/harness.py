"""Timed machine runs and the counters the figures plot."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.afa.automaton import WorkloadAutomata
from repro.afa.build import build_workload_automata
from repro.xmlstream.dtd import DTD
from repro.xmlstream.parser import count_bytes, iterparse
from repro.xpath.ast import XPathFilter
from repro.xpush.machine import XPushMachine
from repro.xpush.options import variant_options


def timed(callable_, *args, **kwargs) -> tuple[object, float]:
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class VariantResult:
    """One data point of a figure: a machine variant on one workload."""

    variant: str
    queries: int
    filtering_seconds: float  # parse + filter, cold (the Fig. 5 metric)
    states: int  # Fig. 6 metric
    average_state_size: float  # Fig. 7 metric
    hit_ratio: float  # Fig. 8 metric
    bytes_processed: int
    build_seconds: float = 0.0
    warm_seconds: float | None = None  # second pass over same data

    @property
    def throughput_mb_s(self) -> float:
        if not self.filtering_seconds:
            return 0.0
        return self.bytes_processed / 1e6 / self.filtering_seconds

    @property
    def warm_throughput_mb_s(self) -> float | None:
        if not self.warm_seconds:
            return None
        return self.bytes_processed / 1e6 / self.warm_seconds


def measure_parse_only(stream_text: str) -> float:
    """Time to drain the SAX parser over the stream (the paper's
    parse-time floor series)."""

    def drain():
        for _ in iterparse(stream_text):
            pass

    _, seconds = timed(drain)
    return seconds


def run_variant(
    variant: str,
    workload: WorkloadAutomata | list[XPathFilter],
    stream_text: str,
    dtd: DTD | None = None,
    warm_pass: bool = False,
) -> VariantResult:
    """Build a machine variant, run it cold over *stream_text*, and
    collect the figure counters.  ``warm_pass`` adds a second pass over
    the same data (the paper's "completed machine" measurement)."""
    if isinstance(workload, list):
        workload = build_workload_automata(workload)
    options = variant_options(variant)
    machine, build_seconds = timed(XPushMachine, workload, options, dtd)
    _, filter_seconds = timed(machine.filter_stream, stream_text)
    warm_seconds = None
    if warm_pass:
        machine.clear_results()
        _, warm_seconds = timed(machine.filter_stream, stream_text)
    return VariantResult(
        variant=variant,
        queries=len(workload.afas),
        filtering_seconds=filter_seconds,
        states=machine.state_count,
        average_state_size=machine.average_state_size,
        hit_ratio=machine.stats.hit_ratio,
        bytes_processed=count_bytes(stream_text),
        build_seconds=build_seconds,
        warm_seconds=warm_seconds,
    )
