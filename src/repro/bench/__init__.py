"""Shared harness for the benchmark suite (one bench per paper figure).

- :mod:`repro.bench.workloads` — standard workload/stream builders with
  the paper's parameters, scaled for CPython via ``REPRO_BENCH_SCALE``;
- :mod:`repro.bench.harness` — timed runs of each machine variant with
  the counters the figures plot;
- :mod:`repro.bench.reporting` — plain-text series tables printed by the
  benches (the "same rows the paper's figures plot").
"""

from repro.bench.harness import (
    VariantResult,
    measure_parse_only,
    run_variant,
    timed,
)
from repro.bench.reporting import print_series_table, format_table
from repro.bench.workloads import (
    bench_scale,
    scaled,
    standard_stream,
    standard_workload,
)

__all__ = [
    "VariantResult",
    "bench_scale",
    "format_table",
    "measure_parse_only",
    "print_series_table",
    "run_variant",
    "scaled",
    "standard_stream",
    "standard_workload",
    "timed",
]
