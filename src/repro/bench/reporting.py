"""Plain-text tables for the benchmark output.

Each figure bench prints one table whose rows are the figure's x-axis
points and whose columns are its series — the same rows/series the
paper plots, so EXPERIMENTS.md can compare shapes point by point.

pytest captures stdout, so every table is *also* appended to
``figures_output.txt`` in the working directory (truncated at the
first table of each process); override the location with the
``REPRO_REPORT_FILE`` environment variable, or disable with
``REPRO_REPORT_FILE=``.
"""

from __future__ import annotations

import os
from typing import Sequence

_report_initialised = False


def _report_path() -> str | None:
    path = os.environ.get("REPRO_REPORT_FILE", "figures_output.txt")
    return path or None


def _tee_to_report(text: str) -> None:
    global _report_initialised
    path = _report_path()
    if path is None:
        return
    mode = "a" if _report_initialised else "w"
    _report_initialised = True
    try:
        with open(path, mode, encoding="utf-8") as handle:
            handle.write(text + "\n\n")
    except OSError:
        pass  # reporting must never break a benchmark run


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [title, "-" * len(title)]
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered_rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_series_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    text = format_table(title, headers, rows)
    print("\n" + text + "\n")
    _tee_to_report(text)
    return text


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)
