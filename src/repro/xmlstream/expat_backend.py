"""Streaming expat backend for the five-event model.

:class:`ExpatScanner` wraps the C expat parser behind the same
``feed(chunk)`` / ``close()`` push protocol as
:class:`repro.xmlstream.parser.PushScanner`, with the fidelity rules of
the hand-written scanner layered on top:

- **whitespace-only text is suppressed**: character data (including
  CDATA content) is accumulated across expat callbacks and flushed as
  one ``text`` event at the next structural event, only when it is
  non-whitespace — expat otherwise reports inter-element whitespace and
  splits large text nodes arbitrarily;
- **attributes keep source order**: ``ordered_attributes`` mode is used
  (expat's dict form reorders under some builds), and each attribute is
  lowered to the paper's ``@name`` pseudo-element triple;
- **multiple concatenated documents** are supported even though a C
  expat parser handles exactly one document: when expat reports *junk
  after document element* the error byte offset is used to restart a
  fresh parser on the remaining input, so ``<a/><b/>`` parses as two
  documents exactly like the python scanner.  The restart is O(1) per
  document boundary — no rescanning of document bodies;
- input is always decoded as UTF-8 (``ParserCreate("utf-8")``), the
  hand parser's convention, regardless of what an XML declaration
  claims;
- expat errors surface as :class:`repro.errors.XMLSyntaxError`, the
  library-wide parse-failure type.

Like the python scanner, the handler callbacks are invoked directly —
no event objects are allocated on this path, and the tokenisation
itself runs in C.
"""

from __future__ import annotations

import xml.parsers.expat as _expat
from xml.parsers.expat import errors as _expat_errors

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import EventHandler

_JUNK_AFTER_DOC = _expat_errors.codes[_expat_errors.XML_ERROR_JUNK_AFTER_DOC_ELEMENT]
_NO_ELEMENTS = _expat_errors.codes[_expat_errors.XML_ERROR_NO_ELEMENTS]

# When a second document's ``<`` arrives at the end of one chunk, expat
# buffers the incomplete token ("<", "<!", "<!-") and reports the junk
# error only on the next feed, with the error offset pointing a few
# bytes *before* that feed's data.  A short tail of previously-fed bytes
# is retained so the restart can always reconstruct the remainder.
_TAIL_BYTES = 64


class ExpatScanner:
    """Push-mode scanner backed by C expat; multi-document capable."""

    __slots__ = (
        "_on_start_document",
        "_on_start",
        "_on_text",
        "_on_end",
        "_on_end_document",
        "_parser",
        "_pending",
        "_depth",
        "_any_element",
        "_fed",
        "_tail",
        "_closed",
    )

    def __init__(self, handler: EventHandler):
        self._on_start_document = handler.start_document
        self._on_start = handler.start_element
        self._on_text = handler.text
        self._on_end = handler.end_element
        self._on_end_document = handler.end_document
        self._pending: list[str] = []
        self._depth = 0
        self._closed = False
        self._new_parser()

    @property
    def line(self) -> int:
        """Current 1-based input line (within the current document)."""
        return max(1, self._parser.CurrentLineNumber)

    def _new_parser(self) -> None:
        parser = _expat.ParserCreate("utf-8")
        parser.buffer_text = True
        parser.ordered_attributes = True
        parser.StartElementHandler = self._start
        parser.EndElementHandler = self._end
        parser.CharacterDataHandler = self._pending.append
        self._parser = parser
        self._any_element = False
        self._fed = 0
        self._tail = b""

    # ------------------------------------------------------------------
    # expat callbacks
    # ------------------------------------------------------------------

    def _flush_text(self) -> None:
        pending = self._pending
        if not pending:
            return
        value = pending[0] if len(pending) == 1 else "".join(pending)
        pending.clear()
        if value.strip():
            self._on_text(value)

    def _start(self, name: str, attrs: list[str]) -> None:
        self._flush_text()
        if self._depth == 0:
            self._any_element = True
            self._on_start_document()
        self._depth += 1
        self._on_start(name)
        if attrs:
            on_start = self._on_start
            on_text = self._on_text
            on_end = self._on_end
            for i in range(0, len(attrs), 2):
                label = "@" + attrs[i]
                on_start(label)
                on_text(attrs[i + 1])
                on_end(label)

    def _end(self, name: str) -> None:
        self._flush_text()
        self._depth -= 1
        self._on_end(name)
        if self._depth == 0:
            self._on_end_document()

    # ------------------------------------------------------------------
    # Push protocol
    # ------------------------------------------------------------------

    def feed(self, chunk: str | bytes) -> None:
        if self._closed:
            raise XMLSyntaxError("feed() after close()")
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        data = chunk
        while data:
            parser = self._parser
            try:
                parser.Parse(data, False)
            except _expat.ExpatError as error:
                if error.code != _JUNK_AFTER_DOC:
                    raise XMLSyntaxError(str(error), error.lineno, error.offset) from None
                # A new top-level document begins at the error offset:
                # restart a fresh parser on the remaining bytes.
                start = parser.ErrorByteIndex - self._fed
                if start >= 0:
                    data = data[start:]
                else:
                    if -start > len(self._tail):  # pragma: no cover - safety net
                        raise XMLSyntaxError(
                            "cannot locate document boundary", error.lineno
                        ) from None
                    data = self._tail[start:] + data
                self._new_parser()
                continue
            self._fed += len(data)
            self._tail = (self._tail + data)[-_TAIL_BYTES:]
            return

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._parser.Parse(b"", True)
        except _expat.ExpatError as error:
            # An input that ends without ever starting an element
            # (empty, whitespace, comments/PIs only) is an empty stream
            # to the python scanner, not an error; match it.
            if error.code == _NO_ELEMENTS and not self._any_element:
                return
            raise XMLSyntaxError(str(error), error.lineno, error.offset) from None
