"""XML substrate: SAX-style events, streaming parser, DOM, writer, DTD.

This package implements everything the paper assumes about XML:

- the five-event SAX model of Sec. 2, with attributes lowered to
  ``@name`` pseudo-elements (:mod:`repro.xmlstream.events`);
- a from-scratch streaming parser producing those events
  (:mod:`repro.xmlstream.parser`);
- a small DOM used by the reference evaluator, the baselines and the
  data generators (:mod:`repro.xmlstream.dom`);
- a serialiser (:mod:`repro.xmlstream.writer`);
- a DTD model with the sibling-order relation needed by the order
  optimisation, plus DTD-driven document generation
  (:mod:`repro.xmlstream.dtd`).
"""

from repro.xmlstream.dom import Document, Element, parse_document, parse_forest
from repro.xmlstream.dtd import DTD, ContentParticle, ElementDecl
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    events_of_document,
    is_attribute_label,
)
from repro.xmlstream.events import EventHandler
from repro.xmlstream.parser import (
    BACKENDS,
    PushScanner,
    iterparse,
    make_scanner,
    parse_events,
    parse_into,
    resolve_backend,
)
from repro.xmlstream.writer import document_to_xml, element_to_xml

__all__ = [
    "BACKENDS",
    "DTD",
    "ContentParticle",
    "Document",
    "Element",
    "ElementDecl",
    "EndDocument",
    "EndElement",
    "Event",
    "EventHandler",
    "PushScanner",
    "StartDocument",
    "StartElement",
    "Text",
    "document_to_xml",
    "element_to_xml",
    "events_of_document",
    "is_attribute_label",
    "iterparse",
    "make_scanner",
    "parse_document",
    "parse_forest",
    "parse_events",
    "parse_into",
    "resolve_backend",
]
