"""A small in-memory XML tree.

The XPush machine itself never materialises documents — that is its
point — but a DOM is still needed elsewhere in the system:

- the *reference evaluator* (:mod:`repro.xpath.semantics`) defines
  ground-truth filter semantics on trees;
- the *naive baseline* evaluates each filter per document on a DOM;
- the data and training generators build trees before serialising them.

The model matches the paper's data model: element nodes carry a label,
an ordered list of attributes, and either text content *or* element
children (mixed content is representable but flagged, since the XPush
machine rejects it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import XMLSyntaxError


@dataclass(slots=True)
class Element:
    """One element node.

    Attributes:
        label: the element name.
        attributes: ordered ``(name, value)`` pairs (names without ``@``).
        text: character content, or ``None`` when the element has element
            children or is empty.
        children: child elements, in document order.
    """

    label: str
    attributes: list[tuple[str, str]] = field(default_factory=list)
    text: str | None = None
    children: list["Element"] = field(default_factory=list)

    def attribute(self, name: str) -> str | None:
        """Return the value of attribute *name*, or None when absent."""
        for key, value in self.attributes:
            if key == name:
                return value
        return None

    def find_children(self, label: str) -> list["Element"]:
        """Return the child elements with the given label."""
        return [child for child in self.children if child.label == label]

    def iter_descendants(self) -> Iterator["Element"]:
        """Yield self and every descendant element, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    @property
    def has_mixed_content(self) -> bool:
        """True when the element has both text and element children."""
        return self.text is not None and bool(self.children)

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Number of element nodes in the subtree (attributes excluded)."""
        return 1 + sum(child.size() for child in self.children)


@dataclass(slots=True)
class Document:
    """One XML document: a single root element.

    ``event_cache`` holds the document's serialised event list after
    the first :func:`repro.xmlstream.events.events_of_document` call —
    parsed documents are never mutated, and callers (benchmarks, the
    serving tier) replay the same document many times."""

    root: Element
    event_cache: "list | None" = field(
        default=None, repr=False, compare=False
    )

    def depth(self) -> int:
        return self.root.depth()

    def size(self) -> int:
        return self.root.size()

    def has_mixed_content(self) -> bool:
        return any(node.has_mixed_content for node in self.root.iter_descendants())


class _TreeBuilder:
    """Event handler that assembles a Document from the five-event stream."""

    def __init__(self) -> None:
        self.documents: list[Document] = []
        self._stack: list[Element] = []
        self._attr: str | None = None
        self._root: Element | None = None

    def start_document(self) -> None:
        self._stack = []
        self._root = None
        self._attr = None

    def start_element(self, label: str) -> None:
        if label.startswith("@"):
            if self._attr is not None:
                raise XMLSyntaxError("nested attribute pseudo-elements")
            self._attr = label[1:]
            self._stack[-1].attributes.append((self._attr, ""))
            return
        element = Element(label)
        if self._stack:
            self._stack[-1].children.append(element)
        elif self._root is None:
            self._root = element
        else:
            raise XMLSyntaxError("multiple root elements in one document")
        self._stack.append(element)

    def text(self, value: str) -> None:
        if self._attr is not None:
            owner = self._stack[-1]
            name, old = owner.attributes[-1]
            owner.attributes[-1] = (name, old + value)
            return
        if not self._stack:
            raise XMLSyntaxError("text outside the root element")
        node = self._stack[-1]
        node.text = value if node.text is None else node.text + value

    def end_element(self, label: str) -> None:
        if label.startswith("@"):
            if self._attr != label[1:]:
                raise XMLSyntaxError(f"mismatched attribute close: {label}")
            self._attr = None
            return
        if not self._stack or self._stack[-1].label != label:
            raise XMLSyntaxError(f"mismatched end tag </{label}>")
        self._stack.pop()

    def end_document(self) -> None:
        if self._stack:
            raise XMLSyntaxError(f"unclosed element <{self._stack[-1].label}>")
        if self._root is None:
            raise XMLSyntaxError("empty document")
        self.documents.append(Document(self._root))


def documents_of_events(events: Sequence) -> list[Document]:
    """Assemble Documents from a five-event stream (inverse of
    :func:`repro.xmlstream.events.events_of_document`)."""
    from repro.xmlstream.events import dispatch

    builder = _TreeBuilder()
    dispatch(iter(events), builder)
    return builder.documents


def parse_document(text: str, backend: str = "python") -> Document:
    """Parse XML *text* containing exactly one document into a DOM."""
    documents = parse_forest(text, backend)
    if len(documents) != 1:
        raise XMLSyntaxError(f"expected one document, found {len(documents)}")
    return documents[0]


def parse_forest(text: str, backend: str = "python") -> list[Document]:
    """Parse XML *text* containing zero or more concatenated documents.

    The tree builder is fed directly from the push-mode scanner
    selected by *backend* (see :func:`repro.xmlstream.parser.parse_into`),
    so no intermediate event objects are materialised.
    """
    from repro.xmlstream.parser import parse_into

    builder = _TreeBuilder()
    parse_into(text, builder, backend=backend)
    return builder.documents
