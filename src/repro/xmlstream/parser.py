"""A from-scratch streaming (incremental) XML parser — push-mode core.

Produces the paper's five-event stream (:mod:`repro.xmlstream.events`)
without ever materialising the document: the scanner keeps only a small
input buffer and the open-element stack, so arbitrarily large documents
and infinite concatenated streams are processed in O(depth) memory —
the property the XPush machine relies on.

Architecture (this module):

- :class:`PushScanner` is the core engine: an *incremental push-mode*
  scanner with ``feed(chunk)`` / ``close()``.  Its inner loops are
  run-based — ``str.find``, compiled regexes and slicing over the
  buffered text instead of per-character method calls — and it invokes
  the five :class:`~repro.xmlstream.events.EventHandler` callbacks
  *directly*, so the hot path allocates no per-event objects at all.
  A token that straddles a chunk boundary is detected by a speculative
  parse that rolls back (nothing is emitted) and resumes on the next
  ``feed``.
- :func:`parse_into` drives a scanner over a string / bytes / file-like
  source and returns the number of UTF-8 bytes processed.  The
  ``backend`` argument selects this pure-python scanner, the streaming
  C-expat backend (:mod:`repro.xmlstream.expat_backend`), or ``auto``.
- :func:`iterparse` — the original pull-mode API — is kept as a thin
  generator over the push path: a small buffering handler materialises
  :class:`~repro.xmlstream.events.Event` values chunk by chunk.

Scope (deliberately matched to the paper's data model):

- elements, attributes, character data, CDATA sections;
- comments, processing instructions, XML declarations and DOCTYPE
  declarations are parsed and skipped;
- predefined and numeric character references are decoded;
- whitespace-only text between elements is treated as ignorable (it is
  never content in the paper's datasets, and treating it as text would
  make every document look mixed-content);
- **multiple concatenated documents** in one input are supported: each
  top-level element yields its own ``StartDocument``/``EndDocument``
  pair.  This is exactly the "stream of XML documents" of Sec. 2.

Attributes are emitted as ``@name`` pseudo-elements in source order,
immediately after the owning ``startElement`` — the paper's modified
SAX convention.
"""

from __future__ import annotations

import codecs
import re
from typing import IO, Iterator

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    EventHandler,
    StartDocument,
    StartElement,
    Text,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_ASCII = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS_ASCII = _NAME_START_ASCII | set("0123456789.-")

# ASCII fast paths; non-ASCII names fall back to the char predicates.
_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_:.\-]*")
_NAME_CONT_RE = re.compile(r"[A-Za-z0-9_:.\-]*")
_WS_RUN = re.compile(r"[ \t\r\n]+")
_DOCTYPE_DELIM = re.compile(r"[\[\]>]")

#: Valid values for the ``backend`` argument accepted across the library.
BACKENDS = ("python", "expat", "auto")


def _is_name_start(ch: str) -> bool:
    return ch in _NAME_START_ASCII or (ord(ch) > 127 and ch.isalpha())


def _is_name_char(ch: str) -> bool:
    return ch in _NAME_CHARS_ASCII or (ord(ch) > 127 and (ch.isalnum() or ch == "·"))


def decode_entities(raw: str) -> str:
    """Decode predefined and numeric character references in *raw*."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    find = raw.find
    while i < n:
        amp = find("&", i)
        if amp < 0:
            out.append(raw[i:])
            break
        if amp > i:
            out.append(raw[i:amp])
        end = find(";", amp + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated entity reference")
        name = raw[amp + 1 : end]
        try:
            if name.startswith("#x") or name.startswith("#X"):
                out.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                out.append(chr(int(name[1:])))
            elif name in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[name])
            else:
                raise XMLSyntaxError(f"unknown entity &{name};")
        except (ValueError, OverflowError):
            raise XMLSyntaxError(f"bad character reference &{name};") from None
        i = end + 1
    return "".join(out)


class _Underflow(Exception):
    """Internal: a token straddles the end of the buffered input; roll
    back and wait for the next ``feed`` (or fail at ``close``)."""


class PushScanner:
    """Incremental push-mode scanner over the five-event model.

    Feed string chunks with :meth:`feed` and finish with :meth:`close`;
    the handler's ``start_document`` / ``start_element`` / ``text`` /
    ``end_element`` / ``end_document`` callbacks are invoked directly as
    runs of input are consumed — no event objects are allocated.

    The scanner only retains unconsumed input: memory is bounded by the
    chunk size plus the largest single token/text node, and the open
    element stack (O(depth)).
    """

    __slots__ = (
        "_on_start_document",
        "_on_start",
        "_on_text",
        "_on_end",
        "_on_end_document",
        "_data",
        "_pos",
        "_eof",
        "_closed",
        "_stack",
        "_pending",
        "line",
    )

    def __init__(self, handler: EventHandler):
        self._on_start_document = handler.start_document
        self._on_start = handler.start_element
        self._on_text = handler.text
        self._on_end = handler.end_element
        self._on_end_document = handler.end_document
        self._data = ""
        self._pos = 0
        self._eof = False
        self._closed = False
        self._stack: list[str] = []
        self._pending: list[str] = []
        self.line = 1

    # ------------------------------------------------------------------
    # Public protocol
    # ------------------------------------------------------------------

    def feed(self, chunk: str) -> None:
        """Consume as much of the buffered input + *chunk* as possible."""
        if self._closed:
            raise XMLSyntaxError("feed() after close()")
        if self._pos:
            self._data = self._data[self._pos :] + chunk
            self._pos = 0
        elif self._data:
            self._data += chunk
        else:
            self._data = chunk
        self._run()

    def close(self) -> None:
        """Signal end of input; flushes trailing text and validates."""
        if self._closed:
            return
        self._closed = True
        self._eof = True
        self._run()
        self._flush_text()
        if self._stack:
            raise XMLSyntaxError(
                f"unclosed element <{self._stack[-1]}> at end of input", self.line
            )
        self._data = ""
        self._pos = 0

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        data = self._data
        n = len(data)
        pos = self._pos
        find = data.find
        pending = self._pending
        while pos < n:
            if data[pos] != "<":
                # Character-data run up to the next '<' (or buffer end).
                lt = find("<", pos)
                if lt < 0:
                    if not self._eof:
                        break  # run may continue; wait for more input
                    run = data[pos:]
                    pos = n
                else:
                    run = data[pos:lt]
                    pos = lt
                self.line += run.count("\n")
                if "&" in run:
                    run = decode_entities(run)
                pending.append(run)
                continue
            try:
                pos = self._markup(data, pos, n)
            except _Underflow:
                if self._eof:
                    raise XMLSyntaxError(
                        "unexpected end of input inside markup", self.line
                    ) from None
                break
        self._pos = pos

    def _markup(self, data: str, pos: int, n: int) -> int:
        """Consume one markup item starting at ``data[pos] == '<'``.

        Returns the new position.  Raises :class:`_Underflow` (with *no*
        state mutated and *no* events emitted) when the item is not yet
        complete in the buffer.
        """
        nxt = pos + 1
        if nxt >= n:
            raise _Underflow
        ch = data[nxt]
        if ch not in "/?!":
            return self._start_tag(data, pos, n)
        if ch == "/":
            return self._end_tag(data, pos, n)
        if ch == "?":
            end = data.find("?>", nxt + 1)
            if end < 0:
                raise _Underflow
            self.line += data.count("\n", pos, end)
            return end + 2
        # '<!': comment, CDATA section or DOCTYPE declaration.
        if data.startswith("<!--", pos):
            end = data.find("-->", pos + 4)
            if end < 0:
                raise _Underflow
            self.line += data.count("\n", pos, end)
            return end + 3
        if data.startswith("<![CDATA[", pos):
            end = data.find("]]>", pos + 9)
            if end < 0:
                raise _Underflow
            run = data[pos + 9 : end]
            self.line += run.count("\n")
            self._pending.append(run)  # CDATA content: no entity decoding
            return end + 3
        if data.startswith("<!DOCTYPE", pos):
            return self._doctype(data, pos, n)
        if not self._eof and n - pos < 9:
            raise _Underflow  # could still become <!-- / <![CDATA[ / <!DOCTYPE
        raise XMLSyntaxError("malformed markup declaration", self.line)

    def _doctype(self, data: str, pos: int, n: int) -> int:
        """Skip a DOCTYPE declaration, including an internal subset."""
        nesting = 0
        i = pos + 9
        while True:
            match = _DOCTYPE_DELIM.search(data, i)
            if match is None:
                raise _Underflow
            delim = data[match.start()]
            i = match.end()
            if delim == "[":
                nesting += 1
            elif delim == "]":
                nesting -= 1
            elif nesting <= 0:  # '>'
                self.line += data.count("\n", pos, i)
                return i

    def _name(self, data: str, pos: int, n: int) -> tuple[str, int]:
        if pos >= n:
            raise _Underflow
        match = _NAME_RE.match(data, pos)
        if match is None:
            if not _is_name_start(data[pos]):
                raise XMLSyntaxError(
                    f"expected a name, found {data[pos]!r}", self.line
                )
            j = _NAME_CONT_RE.match(data, pos + 1).end()
        else:
            j = match.end()
        # Rare path: names containing non-ASCII characters.
        while j < n and ord(data[j]) > 127 and _is_name_char(data[j]):
            j = _NAME_CONT_RE.match(data, j + 1).end()
        if j >= n and not self._eof:
            raise _Underflow  # the name may continue in the next chunk
        return data[pos:j], j

    def _end_tag(self, data: str, pos: int, n: int) -> int:
        name, j = self._name(data, pos + 2, n)
        while True:
            if j >= n:
                raise _Underflow
            ch = data[j]
            if ch == ">":
                break
            if ch in " \t\r\n":
                j += 1
                continue
            raise XMLSyntaxError(f"expected '>' in </{name}>", self.line)
        end = j + 1
        self.line += data.count("\n", pos, end)
        self._flush_text()
        stack = self._stack
        if not stack or stack[-1] != name:
            opened = stack[-1] if stack else None
            raise XMLSyntaxError(f"</{name}> does not match <{opened}>", self.line)
        stack.pop()
        self._on_end(name)
        if not stack:
            self._on_end_document()
        return end

    def _start_tag(self, data: str, pos: int, n: int) -> int:
        name, j = self._name(data, pos + 1, n)
        if j >= n:
            raise _Underflow
        stack = self._stack
        ch = data[j]
        if ch == ">":
            # Fast path: no attributes, no whitespace.
            self._flush_text()
            if not stack:
                self._on_start_document()
            self._on_start(name)
            stack.append(name)
            return j + 1
        attributes: list[tuple[str, str]] | None = None
        while True:
            if ch in " \t\r\n":
                j = _WS_RUN.match(data, j).end()
                if j >= n:
                    raise _Underflow
                ch = data[j]
                continue
            if ch == ">":
                empty = False
                j += 1
                break
            if ch == "/":
                if j + 1 >= n:
                    raise _Underflow
                if data[j + 1] != ">":
                    raise XMLSyntaxError(f"expected '/>' in <{name}>", self.line)
                empty = True
                j += 2
                break
            attr_name, j = self._name(data, j, n)
            if j < n and data[j] in " \t\r\n":
                j = _WS_RUN.match(data, j).end()
            if j >= n:
                raise _Underflow
            if data[j] != "=":
                raise XMLSyntaxError(
                    f"expected '=' after attribute {attr_name!r}", self.line
                )
            j += 1
            if j < n and data[j] in " \t\r\n":
                j = _WS_RUN.match(data, j).end()
            if j >= n:
                raise _Underflow
            quote = data[j]
            if quote != '"' and quote != "'":
                raise XMLSyntaxError("attribute value must be quoted", self.line)
            endq = data.find(quote, j + 1)
            if endq < 0:
                raise _Underflow
            value = data[j + 1 : endq]
            if "&" in value:
                value = decode_entities(value)
            if attributes is None:
                attributes = [(attr_name, value)]
            else:
                attributes.append((attr_name, value))
            j = endq + 1
            if j >= n:
                raise _Underflow
            ch = data[j]
        # Committed: the whole tag is in the buffer.  Emit.
        self.line += data.count("\n", pos, j)
        self._flush_text()
        if not stack:
            self._on_start_document()
        self._on_start(name)
        if attributes is not None:
            on_start = self._on_start
            on_text = self._on_text
            on_end = self._on_end
            for attr_name, value in attributes:
                label = "@" + attr_name
                on_start(label)
                on_text(value)
                on_end(label)
        if empty:
            self._on_end(name)
            if not stack:
                self._on_end_document()
        else:
            stack.append(name)
        return j

    def _flush_text(self) -> None:
        pending = self._pending
        if not pending:
            return
        value = pending[0] if len(pending) == 1 else "".join(pending)
        pending.clear()
        if value.strip():
            if not self._stack:
                raise XMLSyntaxError("text outside any element", self.line)
            self._on_text(value)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def resolve_backend(backend: str = "auto") -> str:
    """Normalise a backend name: ``auto`` picks ``expat`` when the C
    parser is importable (it always is on CPython), else ``python``."""
    if backend == "python" or backend == "expat":
        return backend
    if backend != "auto":
        raise ValueError(
            f"unknown parser backend {backend!r} (expected one of {BACKENDS})"
        )
    try:
        import xml.parsers.expat  # noqa: F401

        return "expat"
    except ImportError:  # pragma: no cover - CPython always ships expat
        return "python"


def make_scanner(handler: EventHandler, backend: str = "auto"):
    """A push-mode scanner (``feed``/``close``) for *handler*."""
    if resolve_backend(backend) == "expat":
        from repro.xmlstream.expat_backend import ExpatScanner

        return ExpatScanner(handler)
    return PushScanner(handler)


# ----------------------------------------------------------------------
# Driving a scanner over a source
# ----------------------------------------------------------------------


def _utf8_length(chunk: str) -> int:
    # Pure-ASCII strings (the overwhelmingly common chunk) are free to
    # measure; only genuinely non-ASCII chunks pay for an encode.
    return len(chunk) if chunk.isascii() else len(chunk.encode("utf-8"))


def parse_into(
    source: str | bytes | IO,
    handler: EventHandler,
    backend: str = "auto",
    chunk_size: int = 1 << 16,
) -> int:
    """Push-parse *source* straight into *handler*'s callbacks.

    This is the zero-allocation event path: no ``Event`` objects are
    created between the scanner and the handler.  *source* may be a
    string, UTF-8 bytes, or a file-like object open in text or binary
    mode.  Returns the number of UTF-8 **bytes** processed, so callers
    can account throughput for file-like sources too.
    """
    scanner = make_scanner(handler, backend)
    if isinstance(source, (str, bytes)):
        if isinstance(source, bytes):
            total = len(source)
            source = source.decode("utf-8")
        else:
            total = _utf8_length(source)
        scanner.feed(source)
        scanner.close()
        return total
    total = 0
    decoder = None
    while True:
        chunk = source.read(chunk_size)
        if not chunk:
            break
        if isinstance(chunk, bytes):
            total += len(chunk)
            if decoder is None:
                decoder = codecs.getincrementaldecoder("utf-8")()
            chunk = decoder.decode(chunk)
            if not chunk:
                continue
        else:
            total += _utf8_length(chunk)
        scanner.feed(chunk)
    if decoder is not None:
        tail = decoder.decode(b"", True)
        if tail:
            scanner.feed(tail)
    scanner.close()
    return total


class _EventBuffer(EventHandler):
    """Bridge handler materialising Event objects for pull-mode callers."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def start_document(self) -> None:
        self.events.append(StartDocument())

    def start_element(self, label: str) -> None:
        self.events.append(StartElement(label))

    def text(self, value: str) -> None:
        self.events.append(Text(value))

    def end_element(self, label: str) -> None:
        self.events.append(EndElement(label))

    def end_document(self) -> None:
        self.events.append(EndDocument())


def iterparse(
    source: str | bytes | IO,
    chunk_size: int = 1 << 16,
    backend: str = "python",
) -> Iterator[Event]:
    """Lazily parse *source* (a string, bytes, or file-like object)
    into the five-event stream, in O(depth) memory.

    This pull-mode API is a thin generator over the push path: events
    are materialised chunk by chunk from a :class:`PushScanner` (or the
    expat backend when ``backend="expat"``).  Prefer :func:`parse_into`
    on hot paths — it skips event materialisation entirely.
    """
    sink = _EventBuffer()
    scanner = make_scanner(sink, backend)
    events = sink.events
    if isinstance(source, bytes):
        source = source.decode("utf-8")
    if isinstance(source, str):
        for start in range(0, len(source), chunk_size):
            scanner.feed(source[start : start + chunk_size])
            if events:
                yield from events
                events.clear()
    else:
        decoder = None
        while True:
            chunk = source.read(chunk_size)
            if not chunk:
                break
            if isinstance(chunk, bytes):
                if decoder is None:
                    decoder = codecs.getincrementaldecoder("utf-8")()
                chunk = decoder.decode(chunk)
                if not chunk:
                    continue
            scanner.feed(chunk)
            if events:
                yield from events
                events.clear()
        if decoder is not None:
            tail = decoder.decode(b"", True)
            if tail:
                scanner.feed(tail)
    scanner.close()
    yield from events
    events.clear()


def parse_events(text: str, backend: str = "python") -> list[Event]:
    """Parse *text* eagerly and return the full event list."""
    sink = _EventBuffer()
    scanner = make_scanner(sink, backend)
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    scanner.feed(text)
    scanner.close()
    return sink.events


def iterparse_path(path: str, chunk_size: int = 1 << 16) -> Iterator[Event]:
    """Lazily parse the file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iterparse(handle, chunk_size)


def count_bytes(text: str) -> int:
    """UTF-8 size of *text*; used for MB/s throughput accounting."""
    return _utf8_length(text)


def expat_events(text: str) -> list[Event]:
    """Event list produced by the streaming C-expat backend.

    The scan itself is the from-scratch parser above; this variant
    exists so benchmarks can separate "our parser" cost from engine
    cost, the way the paper compares against the Apache parser.  Backed
    by :class:`repro.xmlstream.expat_backend.ExpatScanner`, it now
    supports the same multi-document streams as the python scanner.
    """
    return parse_events(text, backend="expat")
