"""A from-scratch streaming (incremental) XML parser.

Produces the paper's five-event stream (:mod:`repro.xmlstream.events`)
without ever materialising the document: the scanner keeps only a small
input buffer and the open-element stack, so arbitrarily large documents
and infinite concatenated streams are processed in O(depth) memory —
the property the XPush machine relies on.

Scope (deliberately matched to the paper's data model):

- elements, attributes, character data, CDATA sections;
- comments, processing instructions, XML declarations and DOCTYPE
  declarations are parsed and skipped;
- predefined and numeric character references are decoded;
- whitespace-only text between elements is treated as ignorable (it is
  never content in the paper's datasets, and treating it as text would
  make every document look mixed-content);
- **multiple concatenated documents** in one input are supported: each
  top-level element yields its own ``StartDocument``/``EndDocument``
  pair.  This is exactly the "stream of XML documents" of Sec. 2.

Attributes are emitted as ``@name`` pseudo-elements in source order,
immediately after the owning ``startElement`` — the paper's modified
SAX convention.
"""

from __future__ import annotations

import io
from typing import IO, Iterable, Iterator

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    attribute_label,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_ASCII = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS_ASCII = _NAME_START_ASCII | set("0123456789.-")


def _is_name_start(ch: str) -> bool:
    return ch in _NAME_START_ASCII or (ord(ch) > 127 and ch.isalpha())


def _is_name_char(ch: str) -> bool:
    return ch in _NAME_CHARS_ASCII or (ord(ch) > 127 and (ch.isalnum() or ch == "·"))


def decode_entities(raw: str) -> str:
    """Decode predefined and numeric character references in *raw*."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated entity reference")
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


class _Buffer:
    """Incremental text buffer fed from an iterator of string chunks."""

    def __init__(self, chunks: Iterator[str]):
        self._chunks = chunks
        self._data = ""
        self._pos = 0
        self._eof = False
        self.line = 1

    def _fill(self) -> bool:
        """Pull one more chunk; return False at end of input."""
        if self._eof:
            return False
        try:
            chunk = next(self._chunks)
        except StopIteration:
            self._eof = True
            return False
        # Compact consumed prefix so memory stays bounded by chunk size.
        if self._pos:
            self._data = self._data[self._pos :]
            self._pos = 0
        self._data += chunk
        return True

    def peek(self) -> str:
        """Return the next character without consuming it ('' at EOF)."""
        while self._pos >= len(self._data):
            if not self._fill():
                return ""
        return self._data[self._pos]

    def next_char(self) -> str:
        ch = self.peek()
        if ch:
            self._pos += 1
            if ch == "\n":
                self.line += 1
        return ch

    def read_until(self, terminator: str) -> str:
        """Consume and return text up to (excluding) *terminator*; the
        terminator itself is consumed as well."""
        while True:
            idx = self._data.find(terminator, self._pos)
            if idx >= 0:
                chunk = self._data[self._pos : idx]
                self.line += chunk.count("\n")
                self._pos = idx + len(terminator)
                return chunk
            if not self._fill():
                raise XMLSyntaxError(f"unexpected end of input looking for {terminator!r}", self.line)

    def read_text_run(self) -> str:
        """Consume and return character data up to the next '<' or EOF."""
        pieces: list[str] = []
        while True:
            idx = self._data.find("<", self._pos)
            if idx >= 0:
                pieces.append(self._data[self._pos : idx])
                self._pos = idx
                break
            pieces.append(self._data[self._pos :])
            self._pos = len(self._data)
            if not self._fill():
                break
        run = "".join(pieces)
        self.line += run.count("\n")
        return run

    def skip_whitespace(self) -> None:
        while True:
            data = self._data
            i = self._pos
            n = len(data)
            start = i
            while i < n and data[i] in " \t\r\n":
                i += 1
            if i != start:
                self.line += data.count("\n", start, i)
                self._pos = i
            if i < n or not self._fill():
                return

    def expect(self, literal: str) -> None:
        for expected in literal:
            got = self.next_char()
            if got != expected:
                raise XMLSyntaxError(f"expected {literal!r}", self.line)

    def match(self, literal: str) -> bool:
        """Consume *literal* if it is next in the input; return success."""
        while len(self._data) - self._pos < len(literal):
            if not self._fill():
                break
        if self._data.startswith(literal, self._pos):
            self._pos += len(literal)
            self.line += literal.count("\n")
            return True
        return False

    def read_name(self) -> str:
        ch = self.peek()
        if not ch or not _is_name_start(ch):
            raise XMLSyntaxError(f"expected a name, found {ch!r}", self.line)
        # Fast path: scan the in-memory buffer directly (names contain
        # no newlines, so the line counter is unaffected).
        data = self._data
        i = self._pos
        j = i + 1
        n = len(data)
        ascii_chars = _NAME_CHARS_ASCII
        while j < n:
            c = data[j]
            if c in ascii_chars or (ord(c) > 127 and _is_name_char(c)):
                j += 1
            else:
                break
        self._pos = j
        name = data[i:j]
        if j >= n:
            # The name may continue into the next chunk; fall back to
            # the slow per-character path for the straddling tail.
            tail: list[str] = []
            while True:
                ch = self.peek()  # refills as needed
                if ch and _is_name_char(ch):
                    tail.append(self.next_char())
                else:
                    break
            if tail:
                name += "".join(tail)
        return name


def _scan(buffer: _Buffer) -> Iterator[Event]:
    """Core scanner: turn raw XML text into the five-event stream."""
    depth = 0
    stack: list[str] = []
    pending_text: list[str] = []

    def flush_text() -> Iterator[Event]:
        if pending_text:
            value = "".join(pending_text)
            pending_text.clear()
            if value.strip():
                if depth == 0:
                    raise XMLSyntaxError("text outside any element", buffer.line)
                yield Text(value)

    while True:
        ch = buffer.peek()
        if not ch:
            yield from flush_text()
            if stack:
                raise XMLSyntaxError(f"unclosed element <{stack[-1]}> at end of input", buffer.line)
            return
        if ch != "<":
            pending_text.append(decode_entities(buffer.read_text_run()))
            continue
        buffer.next_char()  # consume '<'
        ch = buffer.peek()
        if ch == "?":
            buffer.read_until("?>")
            continue
        if ch == "!":
            buffer.next_char()
            if buffer.match("--"):
                buffer.read_until("-->")
            elif buffer.match("[CDATA["):
                pending_text.append(buffer.read_until("]]>"))
            elif buffer.match("DOCTYPE"):
                _skip_doctype(buffer)
            else:
                raise XMLSyntaxError("malformed markup declaration", buffer.line)
            continue
        if ch == "/":
            buffer.next_char()
            name = buffer.read_name()
            buffer.skip_whitespace()
            buffer.expect(">")
            yield from flush_text()
            if not stack or stack[-1] != name:
                opened = stack[-1] if stack else None
                raise XMLSyntaxError(f"</{name}> does not match <{opened}>", buffer.line)
            stack.pop()
            depth -= 1
            yield EndElement(name)
            if depth == 0:
                yield EndDocument()
            continue
        # A start tag.
        yield from flush_text()
        name = buffer.read_name()
        attributes = _scan_attributes(buffer)
        if depth == 0:
            yield StartDocument()
        yield StartElement(name)
        for attr_name, attr_value in attributes:
            label = attribute_label(attr_name)
            yield StartElement(label)
            yield Text(attr_value)
            yield EndElement(label)
        buffer.skip_whitespace()
        if buffer.match("/>"):
            if depth == 0:
                yield EndElement(name)
                yield EndDocument()
            else:
                yield EndElement(name)
            continue
        buffer.expect(">")
        stack.append(name)
        depth += 1


def _scan_attributes(buffer: _Buffer) -> list[tuple[str, str]]:
    attributes: list[tuple[str, str]] = []
    while True:
        buffer.skip_whitespace()
        ch = buffer.peek()
        if not ch:
            raise XMLSyntaxError("unexpected end of input in start tag", buffer.line)
        if ch in "/>":
            return attributes
        name = buffer.read_name()
        buffer.skip_whitespace()
        buffer.expect("=")
        buffer.skip_whitespace()
        quote = buffer.next_char()
        if quote not in "'\"":
            raise XMLSyntaxError("attribute value must be quoted", buffer.line)
        value = decode_entities(buffer.read_until(quote))
        attributes.append((name, value))


def _skip_doctype(buffer: _Buffer) -> None:
    """Skip a DOCTYPE declaration, including an internal subset."""
    nesting = 0
    while True:
        ch = buffer.next_char()
        if not ch:
            raise XMLSyntaxError("unterminated DOCTYPE", buffer.line)
        if ch == "[":
            nesting += 1
        elif ch == "]":
            nesting -= 1
        elif ch == ">" and nesting <= 0:
            return


def _chunks_of(source: str | bytes | IO, chunk_size: int) -> Iterator[str]:
    if isinstance(source, bytes):
        source = source.decode("utf-8")
    if isinstance(source, str):
        for start in range(0, len(source), chunk_size):
            yield source[start : start + chunk_size]
        return
    while True:
        chunk = source.read(chunk_size)
        if not chunk:
            return
        if isinstance(chunk, bytes):
            chunk = chunk.decode("utf-8")
        yield chunk


def iterparse(source: str | bytes | IO, chunk_size: int = 1 << 16) -> Iterator[Event]:
    """Lazily parse *source* (a string, bytes, or file-like object)
    into the five-event stream, in O(depth) memory."""
    return _scan(_Buffer(_chunks_of(source, chunk_size)))


def parse_events(text: str) -> list[Event]:
    """Parse *text* eagerly and return the full event list."""
    return list(iterparse(text))


def iterparse_path(path: str, chunk_size: int = 1 << 16) -> Iterator[Event]:
    """Lazily parse the file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iterparse(handle, chunk_size)


def count_bytes(text: str) -> int:
    """UTF-8 size of *text*; used for MB/s throughput accounting."""
    return len(text.encode("utf-8"))


def expat_events(text: str) -> list[Event]:
    """Alternative event source backed by the C expat parser.

    The scan itself is the from-scratch parser above; this variant exists
    so benchmarks can separate "our parser" cost from engine cost, the
    way the paper compares against the Apache parser.  Only single
    documents (well-formed XML) are supported, as expat requires.
    """
    import xml.parsers.expat as expat

    out: list[Event] = [StartDocument()]
    parser = expat.ParserCreate()

    def start(name: str, attrs: dict) -> None:
        out.append(StartElement(name))
        for key, value in attrs.items():
            label = attribute_label(key)
            out.append(StartElement(label))
            out.append(Text(value))
            out.append(EndElement(label))

    def end(name: str) -> None:
        out.append(EndElement(name))

    def chars(data: str) -> None:
        if data.strip():
            out.append(Text(data))

    parser.StartElementHandler = start
    parser.EndElementHandler = end
    parser.CharacterDataHandler = chars
    parser.buffer_text = True
    parser.Parse(text, True)
    out.append(EndDocument())
    return out
