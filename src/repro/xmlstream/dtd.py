"""DTD model: content models, sibling order, generation, validation.

The paper uses the DTD in three ways, all implemented here:

1. **Order optimisation** (Sec. 5): "we use the DTD to define a partial
   order on elements and attributes: ``a ≺ b`` if *a* must precede *b*
   whenever *a* and *b* are siblings.  Every attribute always precedes
   every element."  :meth:`DTD.sibling_order` extracts exactly that
   relation, conservatively, from the content models.
2. **Training** (Sec. 5): wildcards and ``//`` in queries are expanded
   using the DTD, and training documents list children in DTD order.
3. **Dataset structure**: the Protein DTD is non-recursive with maximum
   document depth 7, the NASA DTD is recursive with depth 8
   (:mod:`repro.data.dtds`); :meth:`DTD.generate` produces random
   conforming documents, and :meth:`DTD.validate` checks conformance
   (content models are compiled to NFAs by Thompson construction and
   simulated over the child-label sequence).

Content models are the standard DTD particles: ``EMPTY``, ``(#PCDATA)``,
element references, sequences and choices, each with an occurrence
indicator ``''``/``?``/``*``/``+``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import DTDError
from repro.xmlstream.dom import Document, Element
from repro.xmlstream.events import attribute_label

OCCURRENCES = ("", "?", "*", "+")


@dataclass(frozen=True)
class ContentParticle:
    """One node of a DTD content model.

    Attributes:
        kind: ``"element"``, ``"seq"``, ``"choice"``, ``"pcdata"`` or
            ``"empty"``.
        label: referenced element name (``kind == "element"`` only).
        children: sub-particles (``seq``/``choice`` only).
        occurrence: ``""`` (exactly once), ``"?"``, ``"*"`` or ``"+"``.
    """

    kind: str
    label: str | None = None
    children: tuple["ContentParticle", ...] = ()
    occurrence: str = ""

    def __post_init__(self):
        if self.kind not in ("element", "seq", "choice", "pcdata", "empty"):
            raise DTDError(f"unknown particle kind {self.kind!r}")
        if self.occurrence not in OCCURRENCES:
            raise DTDError(f"bad occurrence indicator {self.occurrence!r}")
        if self.kind == "element" and not self.label:
            raise DTDError("element particle requires a label")
        if self.kind in ("seq", "choice") and not self.children:
            raise DTDError(f"{self.kind} particle requires children")

    def labels(self) -> frozenset[str]:
        """All element labels that can occur anywhere in this particle."""
        if self.kind == "element":
            return frozenset((self.label,))
        out: set[str] = set()
        for child in self.children:
            out |= child.labels()
        return frozenset(out)

    def __str__(self) -> str:
        if self.kind == "empty":
            return "EMPTY"
        if self.kind == "pcdata":
            return "(#PCDATA)"
        if self.kind == "element":
            return self.label + self.occurrence
        sep = ", " if self.kind == "seq" else " | "
        return "(" + sep.join(str(c) for c in self.children) + ")" + self.occurrence


def elem(label: str, occurrence: str = "") -> ContentParticle:
    """Element-reference particle (``b?``, ``b*``…)."""
    return ContentParticle("element", label=label, occurrence=occurrence)


def seq(*children: ContentParticle, occurrence: str = "") -> ContentParticle:
    """Sequence particle ``(c1, c2, …)``."""
    return ContentParticle("seq", children=tuple(children), occurrence=occurrence)


def choice(*children: ContentParticle, occurrence: str = "") -> ContentParticle:
    """Choice particle ``(c1 | c2 | …)``."""
    return ContentParticle("choice", children=tuple(children), occurrence=occurrence)


PCDATA = ContentParticle("pcdata")
EMPTY = ContentParticle("empty")


@dataclass(frozen=True)
class AttributeDecl:
    """One declared attribute: its name and whether it is #REQUIRED."""

    name: str
    required: bool = False


@dataclass(frozen=True)
class ElementDecl:
    """One <!ELEMENT …> plus its <!ATTLIST …>."""

    name: str
    content: ContentParticle
    attributes: tuple[AttributeDecl, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.content.kind in ("pcdata", "empty")


class DTD:
    """A document type: a root element and a set of element declarations."""

    def __init__(self, root: str, declarations: Iterable[ElementDecl]):
        self.root = root
        self.elements: dict[str, ElementDecl] = {}
        for decl in declarations:
            if decl.name in self.elements:
                raise DTDError(f"duplicate declaration for element {decl.name!r}")
            self.elements[decl.name] = decl
        if root not in self.elements:
            raise DTDError(f"root element {root!r} is not declared")
        for decl in self.elements.values():
            for label in decl.content.labels():
                if label not in self.elements:
                    raise DTDError(f"element {decl.name!r} references undeclared {label!r}")
        self._order_cache: frozenset[tuple[str, str]] | None = None
        self._min_depth_cache: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Structural analysis
    # ------------------------------------------------------------------

    def element_labels(self) -> list[str]:
        return list(self.elements)

    def attribute_labels(self) -> list[str]:
        """All ``@name`` pseudo-element labels declared anywhere."""
        out: list[str] = []
        seen: set[str] = set()
        for decl in self.elements.values():
            for attr in decl.attributes:
                label = attribute_label(attr.name)
                if label not in seen:
                    seen.add(label)
                    out.append(label)
        return out

    def children_map(self) -> dict[str, frozenset[str]]:
        """label → set of element labels allowed as its children."""
        return {name: decl.content.labels() for name, decl in self.elements.items()}

    def is_recursive(self) -> bool:
        """True if some element can (transitively) contain itself."""
        children = self.children_map()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in children}

        def visit(name: str) -> bool:
            colour[name] = GREY
            for child in children[name]:
                if colour[child] == GREY:
                    return True
                if colour[child] == WHITE and visit(child):
                    return True
            colour[name] = BLACK
            return False

        return any(visit(name) for name in children if colour[name] == WHITE)

    def max_depth(self) -> int | None:
        """Maximum element-nesting depth, or None for a recursive DTD."""
        if self.is_recursive():
            return None
        children = self.children_map()
        memo: dict[str, int] = {}

        def depth(name: str) -> int:
            if name not in memo:
                kids = children[name]
                memo[name] = 1 + (max(depth(k) for k in kids) if kids else 0)
            return memo[name]

        return depth(self.root)

    def min_depths(self) -> dict[str, int]:
        """Minimum subtree depth needed to complete each element.

        Used by the generator to steer away from recursion when the
        depth budget runs low.  Computed as a fixpoint so recursive DTDs
        are handled (an element whose every expansion recurses forever
        would keep an infinite bound; our DTDs always terminate).
        """
        if self._min_depth_cache is not None:
            return self._min_depth_cache
        INF = 10**9
        depth = {name: INF for name in self.elements}

        def particle_min(particle: ContentParticle) -> int:
            if particle.kind in ("pcdata", "empty"):
                return 0
            if particle.occurrence in ("?", "*"):
                return 0
            if particle.kind == "element":
                return depth[particle.label]
            if particle.kind == "seq":
                return max(particle_min(child) for child in particle.children)
            return min(particle_min(child) for child in particle.children)

        changed = True
        while changed:
            changed = False
            for name, decl in self.elements.items():
                new = 1 + particle_min(decl.content)
                if new < depth[name]:
                    depth[name] = new
                    changed = True
        self._min_depth_cache = depth
        return depth

    # ------------------------------------------------------------------
    # Sibling order (Sec. 5, order optimisation)
    # ------------------------------------------------------------------

    def sibling_order(self) -> frozenset[tuple[str, str]]:
        """The partial order ``a ≺ b`` of Sec. 5 as a set of pairs.

        ``(a, b)`` is in the result iff *a* must precede *b* whenever
        the two occur as siblings.  Element/element pairs are derived
        conservatively from the content models; in addition every
        declared attribute label precedes every element label ("every
        attribute always precedes every element").
        """
        if self._order_cache is not None:
            return self._order_cache
        votes: dict[tuple[str, str], bool] = {}
        cooccur: set[frozenset[str]] = set()
        for decl in self.elements.values():
            pairs, labels = _ordered_pairs(decl.content)
            for x in labels:
                for y in labels:
                    if x != y:
                        cooccur.add(frozenset((x, y)))
            for pair in pairs:
                votes.setdefault(pair, True)
            # A pair that co-occurs here without a guaranteed order kills
            # the global claim.
            for x in labels:
                for y in labels:
                    if x != y and (x, y) not in pairs:
                        votes[(x, y)] = False
        order = {pair for pair, ok in votes.items() if ok}
        # Contradictions (possible when the same labels appear in several
        # declarations with opposite orders) cancel out.
        order = {(x, y) for (x, y) in order if (y, x) not in order}
        for attr in self.attribute_labels():
            for element in self.elements:
                order.add((attr, element))
        self._order_cache = frozenset(order)
        return self._order_cache

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, document: Document) -> None:
        """Raise :class:`DTDError` unless *document* conforms to the DTD."""
        if document.root.label != self.root:
            raise DTDError(f"root is <{document.root.label}>, expected <{self.root}>")
        for node in document.root.iter_descendants():
            self._validate_element(node)

    def _validate_element(self, node: Element) -> None:
        decl = self.elements.get(node.label)
        if decl is None:
            raise DTDError(f"undeclared element <{node.label}>")
        declared = {attr.name for attr in decl.attributes}
        present = {name for name, _ in node.attributes}
        for attr in decl.attributes:
            if attr.required and attr.name not in present:
                raise DTDError(f"<{node.label}> is missing required attribute {attr.name!r}")
        undeclared = present - declared
        if undeclared:
            raise DTDError(f"<{node.label}> has undeclared attributes {sorted(undeclared)}")
        content = decl.content
        if content.kind == "empty":
            if node.children or (node.text is not None and node.text.strip()):
                raise DTDError(f"<{node.label}> is declared EMPTY but has content")
            return
        if content.kind == "pcdata":
            if node.children:
                raise DTDError(f"<{node.label}> is declared (#PCDATA) but has element children")
            return
        if node.text is not None and node.text.strip():
            raise DTDError(f"<{node.label}> has element content but contains text")
        nfa = _content_nfa(content)
        if not nfa.accepts([child.label for child in node.children]):
            got = ", ".join(child.label for child in node.children) or "(nothing)"
            raise DTDError(f"children of <{node.label}> [{got}] do not match {content}")

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(
        self,
        rng: random.Random,
        text_for: Callable[[str, random.Random], str],
        max_depth: int | None = None,
        repeat_mean: float = 2.0,
        optional_probability: float = 0.5,
    ) -> Document:
        """Generate a random document conforming to this DTD.

        Args:
            rng: source of randomness (pass a seeded ``random.Random``
                for reproducible streams).
            text_for: callback producing the text value for a leaf
                element or attribute label (attribute labels carry the
                ``@`` prefix).
            max_depth: hard cap on nesting; required for recursive DTDs.
            repeat_mean: mean repetition count for ``*``/``+`` particles
                (geometric distribution).
            optional_probability: probability that a ``?`` particle or
                optional attribute is emitted.
        """
        min_depth = self.min_depths()
        if max_depth is None:
            max_depth = self.max_depth()
            if max_depth is None:
                raise DTDError("recursive DTD requires an explicit max_depth")

        def build(label: str, budget: int) -> Element:
            decl = self.elements[label]
            node = Element(label)
            for attr in decl.attributes:
                if attr.required or rng.random() < optional_probability:
                    node.attributes.append((attr.name, text_for(attribute_label(attr.name), rng)))
            if decl.content.kind == "pcdata":
                node.text = text_for(label, rng)
                return node
            if decl.content.kind == "empty":
                return node
            for child_label in self._expand(decl.content, budget - 1, rng, min_depth, repeat_mean, optional_probability):
                node.children.append(build(child_label, budget - 1))
            return node

        if min_depth[self.root] > max_depth:
            raise DTDError(f"max_depth={max_depth} cannot accommodate the root")
        return Document(build(self.root, max_depth))

    def _expand(
        self,
        particle: ContentParticle,
        budget: int,
        rng: random.Random,
        min_depth: Mapping[str, int],
        repeat_mean: float,
        optional_probability: float,
    ) -> list[str]:
        """Expand a content particle into a child-label sequence that
        fits within *budget* levels below the current element."""

        def fits(p: ContentParticle) -> bool:
            return _particle_min_depth(p, min_depth) <= budget

        def repetitions(at_least_one: bool) -> int:
            count = 1 if at_least_one else 0
            stop = 1.0 / max(repeat_mean, 1.0)
            while rng.random() > stop:
                count += 1
            return count

        out: list[str] = []

        def walk(p: ContentParticle) -> None:
            if p.kind in ("pcdata", "empty"):
                return
            occurrence = p.occurrence
            if occurrence == "?":
                if not fits(p.__class__(p.kind, p.label, p.children, "")) or rng.random() >= optional_probability:
                    return
                times = 1
            elif occurrence == "*":
                if not fits(ContentParticle(p.kind, p.label, p.children, "")):
                    return
                times = repetitions(at_least_one=False)
            elif occurrence == "+":
                times = repetitions(at_least_one=True)
            else:
                times = 1
            bare = ContentParticle(p.kind, p.label, p.children, "")
            for _ in range(times):
                if p.kind == "element":
                    out.append(p.label)
                elif p.kind == "seq":
                    for child in p.children:
                        walk(child)
                else:  # choice
                    viable = [c for c in p.children if _particle_min_depth(c, min_depth) <= budget]
                    if not viable:
                        raise DTDError(f"no viable alternative of {bare} fits depth budget {budget}")
                    walk(rng.choice(viable))

        walk(particle)
        return out


def _particle_min_depth(particle: ContentParticle, min_depth: Mapping[str, int]) -> int:
    """Levels strictly required below the parent to satisfy *particle*
    once (its own occurrence indicator is ignored by callers that have
    already decided to emit it)."""
    if particle.kind in ("pcdata", "empty"):
        return 0
    if particle.kind == "element":
        return min_depth[particle.label]
    if particle.kind == "seq":
        return max(
            _particle_min_depth(c, min_depth) if c.occurrence in ("", "+") else 0
            for c in particle.children
        )
    return min(_particle_min_depth(c, min_depth) for c in particle.children)


def _ordered_pairs(particle: ContentParticle) -> tuple[set[tuple[str, str]], frozenset[str]]:
    """Return (guaranteed-order pairs, labels) for one content model.

    ``(x, y)`` is included iff every instance of *x* precedes every
    instance of *y* among the children generated by this particle.
    Repetition (``*``/``+``) of a compound particle interleaves copies,
    so it destroys all order guarantees inside it.
    """
    labels = particle.labels()
    if particle.kind in ("pcdata", "empty", "element"):
        return set(), labels
    if particle.occurrence in ("*", "+"):
        return set(), labels
    if particle.kind == "choice":
        pairs: set[tuple[str, str]] = set()
        for child in particle.children:
            child_pairs, _ = _ordered_pairs(child)
            pairs |= child_pairs
        return pairs, labels
    # Sequence with occurrence "" or "?": children keep internal order and
    # earlier slots precede later slots.
    pairs = set()
    child_labels = [child.labels() for child in particle.children]
    for i, child in enumerate(particle.children):
        child_pairs, _ = _ordered_pairs(child)
        pairs |= child_pairs
        for j in range(i + 1, len(particle.children)):
            for x in child_labels[i]:
                for y in child_labels[j]:
                    if x != y:
                        pairs.add((x, y))
    # A label occurring in two different slots orders both ways; drop it.
    pairs = {(x, y) for (x, y) in pairs if (y, x) not in pairs}
    return pairs, labels


# ----------------------------------------------------------------------
# Content-model NFA (Thompson construction) for validation
# ----------------------------------------------------------------------


class _NFA:
    """Classic ε-NFA over element labels."""

    def __init__(self) -> None:
        self.transitions: list[dict[str, list[int]]] = []
        self.epsilon: list[list[int]] = []
        self.start = self.new_state()
        self.accept: int = -1

    def new_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append([])
        return len(self.transitions) - 1

    def add(self, src: int, label: str, dst: int) -> None:
        self.transitions[src].setdefault(label, []).append(dst)

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon[src].append(dst)

    def closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def accepts(self, word: list[str]) -> bool:
        current = self.closure({self.start})
        for symbol in word:
            nxt: set[int] = set()
            for state in current:
                nxt.update(self.transitions[state].get(symbol, ()))
            if not nxt:
                return False
            current = self.closure(nxt)
        return self.accept in current


_NFA_CACHE: dict[ContentParticle, _NFA] = {}


def _content_nfa(particle: ContentParticle) -> _NFA:
    nfa = _NFA_CACHE.get(particle)
    if nfa is not None:
        return nfa
    nfa = _NFA()
    nfa.accept = _thompson(nfa, particle, nfa.start)
    _NFA_CACHE[particle] = nfa
    return nfa


def _thompson(nfa: _NFA, particle: ContentParticle, entry: int) -> int:
    """Wire *particle* starting at state *entry*; return its exit state."""
    if particle.kind in ("pcdata", "empty"):
        return entry

    def once(start: int) -> int:
        if particle.kind == "element":
            end = nfa.new_state()
            nfa.add(start, particle.label, end)
            return end
        if particle.kind == "seq":
            cursor = start
            for child in particle.children:
                cursor = _thompson(nfa, child, cursor)
            return cursor
        # choice
        join = nfa.new_state()
        for child in particle.children:
            fork = nfa.new_state()
            nfa.add_epsilon(start, fork)
            nfa.add_epsilon(_thompson(nfa, child, fork), join)
        return join

    occurrence = particle.occurrence
    if occurrence == "":
        return once(entry)
    if occurrence == "?":
        exit_state = once(entry)
        nfa.add_epsilon(entry, exit_state)
        return exit_state
    # * and +: loop back from the body's exit to its entry.
    body_entry = nfa.new_state()
    nfa.add_epsilon(entry, body_entry)
    body_exit = once(body_entry)
    nfa.add_epsilon(body_exit, body_entry)
    exit_state = nfa.new_state()
    nfa.add_epsilon(body_exit, exit_state)
    if occurrence == "*":
        nfa.add_epsilon(entry, exit_state)
    return exit_state
