"""The SAX event model of the paper (Sec. 2).

The paper uses a *modified* SAX parser that generates exactly five event
types::

    startDocument()
    startElement(a)
    text(s)
    endElement(a)
    endDocument()

with one deliberate simplification: **attributes are treated like
elements**.  An attribute ``c="3"`` on element ``a`` is delivered as the
pseudo-element sequence ``startElement(@c) text("3") endElement(@c)``
immediately after ``startElement(a)`` and before any child element.
Throughout the library, a *label* is therefore either an element name
(``a``) or an attribute name prefixed with ``@`` (``@c``).

Events are plain, immutable dataclass values so that streams can be
generated, stored, replayed and compared cheaply; every consumer in the
library (XPush machine, baselines, validators) is written against this
event vocabulary rather than against raw XML text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

ATTRIBUTE_PREFIX = "@"


def is_attribute_label(label: str) -> bool:
    """Return True if *label* names an attribute pseudo-element (``@c``)."""
    return label.startswith(ATTRIBUTE_PREFIX)


def attribute_label(name: str) -> str:
    """Return the pseudo-element label for attribute *name* (``c`` → ``@c``)."""
    return ATTRIBUTE_PREFIX + name


@dataclass(frozen=True, slots=True)
class StartDocument:
    """Marks the beginning of one XML document on the stream."""


@dataclass(frozen=True, slots=True)
class StartElement:
    """Opens an element or attribute pseudo-element.

    Attributes:
        label: element name, or ``@name`` for an attribute.
    """

    label: str

    @property
    def is_attribute(self) -> bool:
        return is_attribute_label(self.label)


@dataclass(frozen=True, slots=True)
class Text:
    """Character data (element text content or an attribute's value)."""

    value: str


@dataclass(frozen=True, slots=True)
class EndElement:
    """Closes the innermost open element or attribute pseudo-element."""

    label: str

    @property
    def is_attribute(self) -> bool:
        return is_attribute_label(self.label)


@dataclass(frozen=True, slots=True)
class EndDocument:
    """Marks the end of one XML document on the stream."""


Event = Union[StartDocument, StartElement, Text, EndElement, EndDocument]


class EventHandler:
    """Callback interface mirroring Fig. 2 of the paper.

    Subclass and override the five methods; :func:`dispatch` routes a
    stream of :class:`Event` values to them.  The XPush machine, the
    baselines and the document validators all implement this interface.
    """

    def start_document(self) -> None:  # pragma: no cover - trivial default
        pass

    def start_element(self, label: str) -> None:  # pragma: no cover
        pass

    def text(self, value: str) -> None:  # pragma: no cover
        pass

    def end_element(self, label: str) -> None:  # pragma: no cover
        pass

    def end_document(self) -> None:  # pragma: no cover
        pass


def dispatch(events: Iterator[Event] | list[Event], handler: EventHandler) -> None:
    """Feed each event in *events* to the matching *handler* callback."""
    for event in events:
        kind = type(event)
        if kind is StartElement:
            handler.start_element(event.label)
        elif kind is Text:
            handler.text(event.value)
        elif kind is EndElement:
            handler.end_element(event.label)
        elif kind is StartDocument:
            handler.start_document()
        elif kind is EndDocument:
            handler.end_document()
        else:  # defensive: streams may be user-supplied
            raise TypeError(f"not an XML stream event: {event!r}")


def events_of_document(document) -> list[Event]:
    """Serialise a :class:`repro.xmlstream.dom.Document` to its event list.

    Attributes are lowered to ``@name`` pseudo-elements in document
    order, before element children, exactly as the paper's modified SAX
    parser does.  The list is cached on the document (parsed documents
    are immutable; replaying one must not re-walk the tree each time).
    """
    cached = document.event_cache
    if cached is not None:
        return cached
    out: list[Event] = [StartDocument()]
    _element_events(document.root, out)
    out.append(EndDocument())
    document.event_cache = out
    return out


def _element_events(element, out: list[Event]) -> None:
    out.append(StartElement(element.label))
    for name, value in element.attributes:
        out.append(StartElement(attribute_label(name)))
        out.append(Text(value))
        out.append(EndElement(attribute_label(name)))
    if element.text is not None:
        out.append(Text(element.text))
    for child in element.children:
        _element_events(child, out)
    out.append(EndElement(element.label))
