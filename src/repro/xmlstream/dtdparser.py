"""Parser for external DTD text (``<!ELEMENT …>`` / ``<!ATTLIST …>``).

The in-code DTD model (:mod:`repro.xmlstream.dtd`) is what the engine
consumes; this module parses the standard DTD surface syntax into that
model so users can point the CLI and the machine at real ``.dtd``
files.  Supported (the subset the paper's datasets need):

- ``<!ELEMENT name EMPTY>``, ``<!ELEMENT name (#PCDATA)>``;
- element content: sequences ``(a, b)``, choices ``(a | b)``, nesting,
  occurrence indicators ``?``/``*``/``+`` on names and groups;
- ``<!ATTLIST name attr CDATA #REQUIRED|#IMPLIED|"default">`` with any
  attribute type token (types beyond CDATA are treated as CDATA);
- comments and parameter-entity-free prose are skipped.

Mixed content declarations ``(#PCDATA | a)*`` are rejected: the XPush
machine assumes no mixed content (Sec. 3.2).
"""

from __future__ import annotations

from repro.errors import DTDError
from repro.xmlstream.dtd import (
    DTD,
    AttributeDecl,
    ContentParticle,
    ElementDecl,
    EMPTY,
    PCDATA,
)

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-:"
)


class _Cursor:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal: str) -> None:
        self.skip_ws()
        if not self.text.startswith(literal, self.pos):
            context = self.text[self.pos : self.pos + 20]
            raise DTDError(f"expected {literal!r} at …{context!r}")
        self.pos += len(literal)

    def match(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def name(self) -> str:
        self.skip_ws()
        start = self.pos
        while not self.eof() and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if start == self.pos:
            raise DTDError(f"expected a name at position {self.pos}")
        return self.text[start : self.pos]

    def occurrence(self) -> str:
        ch = self.peek()
        if ch in "?*+":
            self.advance()
            return ch
        return ""


def _parse_group(cursor: _Cursor) -> ContentParticle:
    """Parse a parenthesised content group; '(' already consumed."""
    particles: list[ContentParticle] = []
    separator: str | None = None
    while True:
        cursor.skip_ws()
        if cursor.match("("):
            inner = _parse_group(cursor)
            particles.append(inner)
        else:
            label = cursor.name()
            occurrence = cursor.occurrence()
            particles.append(ContentParticle("element", label=label, occurrence=occurrence))
        cursor.skip_ws()
        ch = cursor.advance()
        if ch == ")":
            break
        if ch not in ",|":
            raise DTDError(f"expected ',', '|' or ')' in content model, found {ch!r}")
        if separator is None:
            separator = ch
        elif separator != ch:
            raise DTDError("mixed ',' and '|' at the same group level")
    occurrence = cursor.occurrence()
    if len(particles) == 1 and occurrence == "":
        return particles[0]
    kind = "choice" if separator == "|" else "seq"
    return ContentParticle(kind, children=tuple(particles), occurrence=occurrence)


def _parse_content(cursor: _Cursor) -> ContentParticle:
    cursor.skip_ws()
    if cursor.match("EMPTY"):
        return EMPTY
    if cursor.match("ANY"):
        raise DTDError("ANY content models are not supported")
    cursor.expect("(")
    cursor.skip_ws()
    if cursor.match("#PCDATA"):
        cursor.skip_ws()
        if cursor.peek() == "|":
            raise DTDError("mixed content (#PCDATA | …) is not supported (Sec. 3.2)")
        cursor.expect(")")
        cursor.occurrence()
        return PCDATA
    return _parse_group(cursor)


def _parse_attlist(cursor: _Cursor) -> tuple[str, list[AttributeDecl]]:
    owner = cursor.name()
    attributes: list[AttributeDecl] = []
    while True:
        cursor.skip_ws()
        if cursor.peek() == ">":
            cursor.advance()
            return owner, attributes
        attr_name = cursor.name()
        cursor.skip_ws()
        if cursor.peek() == "(":  # enumerated type
            cursor.advance()
            _parse_group(cursor)
        else:
            cursor.name()  # the type token (CDATA, ID, NMTOKEN, …)
        cursor.skip_ws()
        required = False
        if cursor.match("#REQUIRED"):
            required = True
        elif cursor.match("#IMPLIED") or cursor.match("#FIXED"):
            cursor.skip_ws()
            if cursor.peek() in "'\"":
                _parse_quoted(cursor)
        elif cursor.peek() in "'\"":
            _parse_quoted(cursor)  # default value
        attributes.append(AttributeDecl(attr_name, required=required))


def _parse_quoted(cursor: _Cursor) -> str:
    quote = cursor.advance()
    start = cursor.pos
    end = cursor.text.find(quote, start)
    if end < 0:
        raise DTDError("unterminated quoted value in DTD")
    cursor.pos = end + 1
    return cursor.text[start:end]


def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse DTD *text*; *root* defaults to the first declared element."""
    cursor = _Cursor(text)
    elements: dict[str, ContentParticle] = {}
    order: list[str] = []
    attlists: dict[str, list[AttributeDecl]] = {}
    while True:
        cursor.skip_ws()
        if cursor.eof():
            break
        if cursor.match("<!--"):
            end = cursor.text.find("-->", cursor.pos)
            if end < 0:
                raise DTDError("unterminated comment in DTD")
            cursor.pos = end + 3
            continue
        if cursor.match("<!ELEMENT"):
            name = cursor.name()
            if name in elements:
                raise DTDError(f"duplicate <!ELEMENT {name}>")
            elements[name] = _parse_content(cursor)
            order.append(name)
            cursor.expect(">")
            continue
        if cursor.match("<!ATTLIST"):
            owner, attributes = _parse_attlist(cursor)
            attlists.setdefault(owner, []).extend(attributes)
            continue
        if cursor.match("<?"):
            end = cursor.text.find("?>", cursor.pos)
            if end < 0:
                raise DTDError("unterminated processing instruction in DTD")
            cursor.pos = end + 2
            continue
        context = cursor.text[cursor.pos : cursor.pos + 30]
        raise DTDError(f"unrecognised DTD construct at …{context!r}")
    if not elements:
        raise DTDError("DTD declares no elements")
    for owner in attlists:
        if owner not in elements:
            raise DTDError(f"<!ATTLIST {owner}> for undeclared element")
    declarations = [
        ElementDecl(name, elements[name], tuple(attlists.get(name, ())))
        for name in order
    ]
    return DTD(root or order[0], declarations)


def parse_dtd_file(path: str, root: str | None = None) -> DTD:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dtd(handle.read(), root)


def dtd_to_text(dtd: DTD) -> str:
    """Serialise a DTD model back to declaration syntax (round-trips
    through :func:`parse_dtd` up to attribute types)."""
    lines = []
    for decl in dtd.elements.values():
        content = str(decl.content)
        if decl.content.kind == "element":
            content = f"({content})"  # bare names need a group in DTD syntax
        lines.append(f"<!ELEMENT {decl.name} {content}>")
        if decl.attributes:
            attrs = "\n  ".join(
                f"{a.name} CDATA {'#REQUIRED' if a.required else '#IMPLIED'}"
                for a in decl.attributes
            )
            lines.append(f"<!ATTLIST {decl.name}\n  {attrs}>")
    return "\n".join(lines) + "\n"
