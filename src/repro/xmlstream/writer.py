"""Serialisation of DOM trees and event streams back to XML text.

Used by the data generators (synthetic Protein/NASA streams), the
training-document generator (Sec. 5) and the round-trip tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.xmlstream.dom import Document, Element


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return escape_text(value).replace('"', "&quot;")


def element_to_xml(element: Element, indent: int | None = None, _level: int = 0) -> str:
    """Serialise *element*; pretty-print with *indent* spaces when given.

    Pretty-printing only inserts whitespace between element children
    (never inside text content), so it round-trips through the parser,
    which treats inter-element whitespace as ignorable.
    """
    pieces: list[str] = []
    _write_element(element, pieces, indent, _level)
    return "".join(pieces)


def _write_element(element: Element, out: list[str], indent: int | None, level: int) -> None:
    pad = "" if indent is None else " " * (indent * level)
    newline = "" if indent is None else "\n"
    out.append(pad)
    out.append(f"<{element.label}")
    for name, value in element.attributes:
        out.append(f' {name}="{escape_attribute(value)}"')
    if element.text is None and not element.children:
        out.append("/>")
        out.append(newline)
        return
    out.append(">")
    if element.text is not None:
        out.append(escape_text(element.text))
    if element.children:
        out.append(newline)
        for child in element.children:
            _write_element(child, out, indent, level + 1)
        out.append(pad)
    out.append(f"</{element.label}>")
    out.append(newline)


def document_to_xml(document: Document, indent: int | None = None) -> str:
    """Serialise one document."""
    return element_to_xml(document.root, indent)


def stream_to_xml(documents: Iterable[Document], indent: int | None = None) -> str:
    """Serialise a stream of documents to one concatenated text blob,
    the on-the-wire format consumed by :func:`repro.xmlstream.iterparse`."""
    return "".join(document_to_xml(doc, indent) for doc in documents)
