"""Command-line interface: ``python -m repro <command> …``.

Commands:

- ``filter`` — evaluate a workload of XPath filters over an XML stream
  (the core use case: one line of oids per document);
- ``subscribe`` / ``unsubscribe`` / ``compact`` — the update control
  plane on a persisted engine state file: add or drop filters without
  recompiling the warmed base workload, and fold the accumulated delta
  in on demand (Sec. 8); ``filter --state`` then serves the updated
  workload;
- ``serve`` — run the network serving tier (``repro.serving``): accept
  documents from concurrent publishers over TCP frames and HTTP POST,
  fan matched oids out to per-consumer queues, and keep the
  subscribe/unsubscribe/compact control plane live as API verbs;
- ``generate-data`` — emit a synthetic Protein/NASA stream;
- ``generate-queries`` — emit a synthetic workload for a dataset;
- ``inspect`` — show how a filter parses and compiles (AST, AFA
  summary, atomic predicates);
- ``bench`` — a one-shot throughput measurement.

Query files contain one filter per line, either bare XPath (oids are
assigned ``q0, q1, …``) or ``oid <TAB> xpath``.  Blank lines and lines
starting with ``#`` are skipped.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.afa.build import build_workload_automata
from repro.errors import ReproError
from repro.xmlstream.dtdparser import parse_dtd_file
from repro.xpath.ast import count_atomic_predicates, is_linear
from repro.xpath.parser import parse_xpath
from repro.xpush.machine import XPushMachine
from repro.xpush.options import (
    EVICTION_POLICIES,
    RUNTIMES,
    SCHEMA_MODES,
    VARIANTS,
    variant_options,
)


def _parse_bytes(text: str) -> int:
    """A byte count with optional K/M/G suffix: '64M', '512K', '2G'."""
    raw = text.strip()
    scale = 1
    suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3}
    body = raw
    if body and body[-1].upper() in suffixes:
        scale = suffixes[body[-1].upper()]
        body = body[:-1]
    try:
        value = int(float(body) * scale)
    except ValueError:
        raise ReproError(f"bad byte size {raw!r} (use e.g. 64M, 512K, 2G)") from None
    if value < 1:
        raise ReproError(f"byte size must be positive, got {raw!r}")
    return value


def _load_queries(path: str):
    from repro.xpath.workload_io import load_workload

    try:
        return load_workload(path)
    except ReproError as error:
        raise ReproError(f"{path}: {error}") from None


def _dataset(name: str, seed: int):
    if name == "protein":
        from repro.data import ProteinDataset

        return ProteinDataset(seed=seed)
    if name == "nasa":
        from repro.data import NasaDataset

        return NasaDataset(seed=seed)
    if name == "auction":
        from repro.data import AuctionDataset

        return AuctionDataset(seed=seed)
    raise ReproError(f"unknown dataset {name!r} (try protein, nasa or auction)")


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# Engine state files (the persisted update control plane)
# ----------------------------------------------------------------------


def _engine_kind_of(snapshot: dict) -> str:
    """Which registered engine kind a snapshot file belongs to."""
    fmt = snapshot.get("format", "")
    if fmt == "repro-layered-engine":
        return "layered"
    if fmt == "repro-sharded-engine":
        return "sharded"
    if fmt == "repro-engine-workload":
        return str(snapshot.get("engine", "xpush"))
    raise ReproError(f"unrecognised engine state format {fmt!r}")


def _load_state(path: str, engine_kind: str | None = None):
    """An engine restored from *path*, or a fresh empty one when the
    file does not exist yet (``engine_kind`` picks the kind, default
    layered — the engine whose updates never flush warmed tables)."""
    import os

    from repro.engine import EngineConfig, create_engine
    from repro.xpush.persist import load_engine_snapshot

    if os.path.exists(path):
        snapshot = load_engine_snapshot(path)
        kind = _engine_kind_of(snapshot)
        if engine_kind and engine_kind != kind:
            raise ReproError(
                f"{path} holds a {kind!r} engine, not {engine_kind!r}"
            )
        # CLI invocations are one-shot: stay in-process even for a
        # sharded state (answers are mode-independent by contract).
        return create_engine(EngineConfig(engine=kind, parallel=False), snapshot=snapshot)
    return create_engine(EngineConfig(engine=engine_kind or "layered", parallel=False))


def _save_state(engine, path: str) -> None:
    from repro.xpush.persist import save_engine_snapshot

    save_engine_snapshot(engine.snapshot(), path)


def cmd_subscribe(args) -> int:
    engine = _load_state(args.state, args.engine)
    try:
        engine.subscribe(args.oid, args.xpath)
        _save_state(engine, args.state)
        stats = engine.stats()
    finally:
        engine.close()
    print(
        f"# subscribed {args.oid}, {stats['filters']} filters in {args.state}",
        file=sys.stderr,
    )
    return 0


def cmd_unsubscribe(args) -> int:
    engine = _load_state(args.state)
    try:
        engine.unsubscribe(args.oid)
        _save_state(engine, args.state)
        stats = engine.stats()
    finally:
        engine.close()
    print(
        f"# unsubscribed {args.oid}, {stats['filters']} filters in {args.state}",
        file=sys.stderr,
    )
    return 0


def cmd_compact(args) -> int:
    engine = _load_state(args.state)
    try:
        compact = getattr(engine, "compact", None)
        if compact is None:
            raise ReproError(
                f"{args.state}: engine {engine.stats().get('engine')!r} "
                "has no delta layer to compact"
            )
        compact()
        _save_state(engine, args.state)
        stats = engine.stats()
    finally:
        engine.close()
    print(
        f"# compacted {args.state}: {stats['filters']} filters in the base layer",
        file=sys.stderr,
    )
    return 0


def cmd_rebalance(args) -> int:
    engine = _load_state(args.state, "sharded")
    try:
        rebalance = getattr(engine, "rebalance", None)
        if rebalance is None:
            raise ReproError(
                f"{args.state}: engine {engine.stats().get('engine')!r} "
                "has no shards to rebalance"
            )
        moves = rebalance()
        _save_state(engine, args.state)
        stats = engine.stats()
    finally:
        engine.close()
    for move in moves:
        print(f"  {move.oid}: shard {move.source} -> {move.target}", file=sys.stderr)
    print(
        f"# rebalanced {args.state}: {len(moves)} moves, "
        f"imbalance {stats.get('imbalance', 1.0):.3f} "
        f"over {stats.get('shards', 1)} shards",
        file=sys.stderr,
    )
    return 0


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_filter(args) -> int:
    from dataclasses import replace

    dtd = parse_dtd_file(args.dtd) if args.dtd else None
    options = replace(
        variant_options(args.variant),
        runtime=args.runtime,
        eviction=args.eviction,
        schema_mode=args.schema_mode,
    )
    if args.early:
        options = replace(options, early=True)
    if args.max_memory:
        options = replace(options, max_memory_bytes=_parse_bytes(args.max_memory))
    if options.order and dtd is None:
        raise ReproError(f"variant {args.variant!r} needs --dtd for the order optimisation")
    if options.schema_mode != "off" and dtd is None:
        raise ReproError(f"--schema-mode {options.schema_mode} needs --dtd")
    if sum(bool(source) for source in (args.queries, args.compiled, args.state)) > 1:
        raise ReproError("pass exactly one of --queries, --compiled or --state")
    if args.shards < 1:
        raise ReproError("--shards must be >= 1")
    if args.state:
        text = _read_input(args.input)
        engine = _load_state(args.state)
        try:
            start = time.perf_counter()
            results = engine.filter_stream(text)
            elapsed = time.perf_counter() - start
            stats = engine.stats()
        finally:
            engine.close()
        for i, matched in enumerate(results):
            print(f"{i}\t{','.join(sorted(matched)) or '-'}")
        megabytes = len(text.encode("utf-8")) / 1e6
        print(
            f"# {len(results)} documents, {stats['filters']} filters, "
            f"state={args.state} engine={stats.get('engine')}, "
            f"{elapsed:.3f}s ({megabytes / elapsed if elapsed else 0:.2f} MB/s)",
            file=sys.stderr,
        )
        return 0
    if args.compiled:
        from repro.xpush.persist import load_workload as load_compiled

        workload = load_compiled(args.compiled)
        filters = [parse_xpath(afa.source, afa.oid) for afa in workload.afas]
    elif args.queries:
        filters = _load_queries(args.queries)
        workload = build_workload_automata(filters)
    else:
        raise ReproError("filter requires --queries or --compiled")
    text = _read_input(args.input)
    if args.shards > 1:
        from repro.service import ShardedFilterEngine

        with ShardedFilterEngine(
            filters,
            args.shards,
            options=options,
            dtd=dtd,
            strategy=args.strategy,
            batch_size=args.batch_size,
            backend=args.backend,
            placement=args.placement,
        ) as engine:
            start = time.perf_counter()
            results = engine.filter_stream(text)
            elapsed = time.perf_counter() - start
            stats = engine.stats()
        footer = (
            f"{args.shards} shards ({stats['strategy']}"
            f"{', ' + stats['placement'] + ' placement' if stats['placement'] != 'hash' else ''}"
            f"{', serial fallback' if stats['serial_fallback'] else ''}), "
            f"{sum(e['xpush_states'] for e in stats['per_shard'])} states, "
            f"{stats['worker_restarts']} restarts"
        )
    else:
        machine = XPushMachine(workload, options, dtd=dtd)
        start = time.perf_counter()
        results = machine.filter_stream(text, backend=args.backend)
        elapsed = time.perf_counter() - start
        footer = f"{machine.state_count} states, hit ratio {machine.stats.hit_ratio:.1%}"
        if options.max_memory_bytes is not None or options.max_states is not None:
            footer += (
                f", {machine.stats.evictions} evictions, "
                f"{machine.stats.flushes} flushes, "
                f"{machine.stats.resident_bytes} resident bytes"
            )
    for i, matched in enumerate(results):
        print(f"{i}\t{','.join(sorted(matched)) or '-'}")
    megabytes = len(text.encode("utf-8")) / 1e6
    print(
        f"# {len(results)} documents, {len(filters)} filters, "
        f"backend={args.backend}, "
        f"{elapsed:.3f}s ({megabytes / elapsed if elapsed else 0:.2f} MB/s), "
        f"{footer}",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args) -> int:
    import asyncio
    from dataclasses import replace

    from repro.engine import EngineConfig
    from repro.serving import FilterServer

    if args.queries and args.state:
        raise ReproError("pass at most one of --queries and --state")
    dtd = parse_dtd_file(args.dtd) if args.dtd else None
    if args.order and dtd is None:
        raise ReproError("--order needs --dtd (the sibling order comes from it)")
    if args.schema_mode != "off" and dtd is None:
        raise ReproError(f"--schema-mode {args.schema_mode} needs --dtd")
    config = EngineConfig(
        engine=args.engine,
        backend=args.backend,
        shards=max(args.shards, 1) if args.engine == "sharded" else 1,
        placement=args.placement if args.engine == "sharded" else "hash",
        batch_size=args.batch_size,
        parallel=None if args.engine == "sharded" else False,
        dtd=dtd,
    )
    config = replace(
        config,
        options=replace(
            config.options,
            order=args.order,
            schema_mode=args.schema_mode,
            early=args.early,
        ),
    )
    borrowed_engine = None
    if args.state:
        borrowed_engine = _load_state(args.state, args.engine)
        server = FilterServer(
            borrowed_engine,
            host=args.host,
            port=args.port,
            default_policy=args.policy,
            high_watermark=args.high_watermark,
            early=args.early,
        )
    else:
        filters = _load_queries(args.queries) if args.queries else None
        server = FilterServer(
            config=config,
            filters=filters,
            host=args.host,
            port=args.port,
            default_policy=args.policy,
            high_watermark=args.high_watermark,
            early=args.early,
        )

    async def _run() -> None:
        await server.start()
        print(
            f"# serving engine={args.engine} on {server.host}:{server.port} "
            f"(TCP frames + HTTP; policy={args.policy}, "
            f"high_watermark={args.high_watermark})",
            file=sys.stderr,
        )
        try:
            if args.duration:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass
        finally:
            await server.stop()
            stats = server.stats_nowait()
            print(
                f"# served {stats['publishes']} publishes "
                f"({stats['published_docs']} documents, "
                f"{stats['deliveries']} deliveries, "
                f"epoch {stats['epoch']})",
                file=sys.stderr,
            )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        if borrowed_engine is not None:
            borrowed_engine.close()
    return 0


def cmd_generate_data(args) -> int:
    dataset = _dataset(args.dataset, args.seed)
    if args.bytes:
        text = dataset.stream_of_bytes(args.bytes)
    else:
        text = dataset.stream_text(args.documents, indent=2 if args.pretty else None)
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"# wrote {len(text.encode('utf-8'))} bytes to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_generate_queries(args) -> int:
    from repro.xpath.generator import GeneratorConfig, QueryGenerator

    dataset = _dataset(args.dataset, args.seed)
    config = GeneratorConfig(
        seed=args.seed,
        mean_predicates=args.mean_predicates,
        exact_predicates=args.exact_predicates,
        prob_wildcard=args.prob_wildcard,
        prob_descendant=args.prob_descendant,
        prob_or=args.prob_or,
        prob_not=args.prob_not,
        prob_nested=args.prob_nested,
        prob_string_function=args.prob_string_function,
    )
    generator = QueryGenerator(dataset.dtd, dataset.value_pool, config)
    out = sys.stdout
    close = False
    if args.out and args.out != "-":
        out = open(args.out, "w", encoding="utf-8")
        close = True
    try:
        for f in generator.generate(args.count):
            out.write(f"{f.oid}\t{f.source}\n")
    finally:
        if close:
            out.close()
    return 0


def cmd_inspect(args) -> int:
    xpath_filter = parse_xpath(args.query, "q")
    path = xpath_filter.path
    print(f"source      : {args.query}")
    print(f"normalised  : {path}")
    print(f"steps       : {len(path.steps)}")
    print(f"atomic preds: {count_atomic_predicates(path)}")
    print(f"linear      : {is_linear(path)}")
    workload = build_workload_automata([xpath_filter])
    afa = workload.afas[0]
    print(f"AFA states  : {len(afa.state_sids)}")
    kinds = {}
    for sid in afa.state_sids:
        state = workload.states[sid]
        label = state.kind.name + ("/terminal" if state.is_terminal else "")
        kinds[label] = kinds.get(label, 0) + 1
    for label in sorted(kinds):
        print(f"  {label:<13} {kinds[label]}")
    note = workload.states[afa.notification]
    print(f"notification: s{afa.notification} ({note.kind.name})")
    if args.verbose:
        print("transitions :")
        for sid in afa.state_sids:
            state = workload.states[sid]
            for label, targets in sorted(state.edges.items()):
                for target in targets:
                    print(f"  s{sid} --{label}--> s{target}")
            for child in state.eps:
                print(f"  s{sid} --ε--> s{child}")
            for label in sorted(state.top_labels):
                print(f"  s{sid} --{label}--> ⊤")
            if state.is_terminal:
                print(f"  s{sid}: π = {state.predicate}")
    return 0


def _explain_placement(args, filters) -> int:
    """Dump the placement cost table and compare hash vs cost shard
    loads (``repro explain --placement``)."""
    from repro.service.partition import shard_of_oid
    from repro.service.placement import CostModel, imbalance, place_filters, shard_loads

    model = CostModel()
    for xpath_filter in filters:
        model.add(xpath_filter)
    if args.sample > 0:
        dataset = _dataset(args.dataset, args.seed)
        model.seed(filters, list(dataset.documents(args.sample)))
        print(
            f"# selectivity sampled over {args.sample} {args.dataset} documents",
            file=sys.stderr,
        )
    print(f"{'oid':<24} {'states':>6} {'sigma':>7} {'cost':>9}")
    for row in model.table():
        print(f"{row.oid:<24} {row.states:>6} {row.selectivity:>7.3f} {row.cost:>9.2f}")
    shards = max(args.shards, 1)
    costs = model.costs()
    hash_routing = {f.oid: shard_of_oid(f.oid, shards) for f in filters}
    hash_loads = shard_loads(hash_routing, costs, shards)
    cost_routing = {
        f.oid: shard
        for shard, placed in enumerate(place_filters(filters, shards, model))
        for f in placed
    }
    cost_loads = shard_loads(cost_routing, costs, shards)
    print()
    for policy, loads in (("hash", hash_loads), ("cost", cost_loads)):
        rendered = ", ".join(f"{load:.1f}" for load in loads)
        print(
            f"{policy:<5} placement over {shards} shards: "
            f"loads [{rendered}], imbalance {imbalance(loads):.3f}"
        )
    return 0


def cmd_explain(args) -> int:
    """Show the compiled form of a whole workload — counts by default,
    the generated straight-line Python with ``--codegen``, the
    placement cost table with ``--placement``."""
    from repro.xpush.options import XPushOptions

    if not args.query and not args.queries:
        raise ReproError("explain needs --queries FILE or --query XPATH")
    filters = (
        [parse_xpath(args.query, "q")] if args.query else _load_queries(args.queries)
    )
    if args.placement:
        return _explain_placement(args, filters)
    workload = build_workload_automata(filters)
    print(f"filters     : {len(workload.afas)}")
    print(f"AFA states  : {workload.state_count}")
    if args.schema:
        if not args.dtd:
            raise ReproError("explain --schema needs --dtd FILE")
        from repro.afa.schema import specialize

        spec = specialize(workload, parse_dtd_file(args.dtd))
        print()
        print(spec.describe())
    if not args.codegen:
        return 0
    options = XPushOptions(runtime="codegen")
    if args.max_handlers is not None:
        options = XPushOptions(
            runtime="codegen", codegen_max_handlers=args.max_handlers
        )
    machine = XPushMachine(workload, options)
    source = machine.dump_source()
    if source is None:
        print(
            "codegen declined (handler bound exceeded); "
            "running on the interpreted bitmask tables",
            file=sys.stderr,
        )
        return 1
    stats = machine.stats
    print(
        f"codegen     : {stats.codegen_handlers} handlers, "
        f"compiled in {stats.codegen_compile_ms:.1f} ms"
    )
    print()
    print(source)
    return 0


def cmd_compile(args) -> int:
    from repro.xpush.persist import save_workload

    filters = _load_queries(args.queries)
    workload = build_workload_automata(filters)
    save_workload(workload, args.out)
    print(
        f"# compiled {len(workload.afas)} filters "
        f"({workload.state_count} AFA states) to {args.out}",
        file=sys.stderr,
    )
    return 0


def cmd_analyze(args) -> int:
    from repro.xpath.analysis import most_shared_predicates, profile_workload
    from repro.xpath.dedupe import DeduplicatedWorkload

    filters = _load_queries(args.queries)
    profile = profile_workload(filters)
    dedup = DeduplicatedWorkload(filters)
    print(profile.describe())
    print(
        f"duplicate filters: {dedup.duplicates_removed} "
        f"({dedup.class_count} equivalence classes)"
    )
    print(f"max predicates in one query: {profile.max_predicates_in_one_query}")
    top = most_shared_predicates(filters, top=args.top)
    if top:
        print("most shared atomic predicates:")
        for (path, op, constant), count in top:
            const = "" if constant is None else f" {constant!r}"
            print(f"  {count:>5}x  {path} {op}{const}")
    return 0


def cmd_bench(args) -> int:
    from dataclasses import replace

    from repro.xpath.generator import GeneratorConfig, QueryGenerator

    dataset = _dataset(args.dataset, args.seed)
    generator = QueryGenerator(
        dataset.dtd,
        dataset.value_pool,
        GeneratorConfig(seed=args.seed, mean_predicates=args.mean_predicates),
    )
    filters = generator.generate(args.queries)
    stream = dataset.stream_of_bytes(args.bytes)
    megabytes = len(stream.encode("utf-8")) / 1e6
    workload = build_workload_automata(filters)
    options = replace(
        variant_options(args.variant),
        runtime=args.runtime,
        eviction=args.eviction,
        schema_mode=args.schema_mode,
    )
    if args.early:
        options = replace(options, early=True)
    if args.max_memory:
        options = replace(options, max_memory_bytes=_parse_bytes(args.max_memory))
    machine = XPushMachine(workload, options, dtd=dataset.dtd)
    start = time.perf_counter()
    machine.filter_stream(stream, backend=args.backend)
    cold = time.perf_counter() - start
    machine.clear_results()
    start = time.perf_counter()
    machine.filter_stream(stream, backend=args.backend)
    warm = time.perf_counter() - start
    print(
        f"variant={args.variant} queries={args.queries} data={megabytes:.2f}MB "
        f"backend={args.backend} runtime={args.runtime}"
    )
    print(f"cold: {cold:.3f}s ({megabytes / cold:.2f} MB/s)")
    print(f"warm: {warm:.3f}s ({megabytes / warm:.2f} MB/s)")
    print(f"states={machine.state_count} avg_size={machine.average_state_size:.1f} "
          f"hit_ratio={machine.stats.hit_ratio:.1%}")
    if args.runtime == "codegen":
        print(
            f"codegen: compile={machine.stats.codegen_compile_ms:.1f}ms "
            f"handlers={machine.stats.codegen_handlers} "
            f"fallbacks={machine.stats.codegen_fallbacks}"
        )
    if options.schema_mode != "off":
        print(
            f"schema: mode={options.schema_mode} "
            f"pruned_states={machine.stats.schema_pruned_states} "
            f"pruned_edges={machine.stats.schema_pruned_edges} "
            f"fallbacks={machine.stats.schema_fallbacks}"
        )
    if options.max_memory_bytes is not None:
        print(
            f"memory: bound={options.max_memory_bytes} eviction={options.eviction} "
            f"resident={machine.stats.resident_bytes} "
            f"evictions={machine.stats.evictions} flushes={machine.stats.flushes} "
            f"gc_states={machine.stats.gc_states}"
        )
    if args.shards > 1:
        from repro.service import ShardedFilterEngine
        from repro.xmlstream.dom import parse_forest

        documents = parse_forest(stream)
        with ShardedFilterEngine(
            filters,
            args.shards,
            options=options,
            dtd=dataset.dtd,
            batch_size=args.batch_size,
            backend=args.backend,
            placement=args.placement,
        ) as engine:
            engine.filter_batch(documents)  # warm the shard machines
            start = time.perf_counter()
            engine.filter_batch(documents)
            sharded = time.perf_counter() - start
            stats = engine.stats()
        latency = stats["batch_latency"]
        print(
            f"sharded({args.shards}x, batch={args.batch_size}"
            f"{', serial fallback' if stats['serial_fallback'] else ''}): "
            f"{sharded:.3f}s ({megabytes / sharded:.2f} MB/s), "
            f"speedup x{warm / sharded:.2f} vs warm serial"
        )
        print(
            f"batch latency ms: p50={latency['p50_ms']:.1f} "
            f"p90={latency['p90_ms']:.1f} p99={latency['p99_ms']:.1f}"
        )
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XPush machine: stream processing of XPath queries with predicates",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("filter", help="filter an XML stream with a query file")
    p.add_argument("--queries", help="query file (oid<TAB>xpath per line)")
    p.add_argument("--compiled", help="compiled workload (see `compile`) instead of --queries")
    p.add_argument("--state", help="engine state file maintained by "
                   "`subscribe`/`unsubscribe`/`compact` instead of --queries")
    p.add_argument("--input", default="-", help="XML stream file, or - for stdin")
    p.add_argument("--variant", default="TD", choices=sorted(VARIANTS))
    p.add_argument("--dtd", help="DTD file (needed for order/training variants)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the workload over N worker processes (docs/scaling.md)")
    p.add_argument("--batch-size", type=int, default=16,
                   help="documents per work item in sharded mode")
    p.add_argument("--strategy", default="hash",
                   choices=["hash", "round_robin", "size_balanced"],
                   help="shard partitioning strategy")
    p.add_argument("--placement", default="hash", choices=["hash", "cost"],
                   help="routing policy for filters in sharded mode "
                        "(cost = selectivity-weighted LPT, docs/scaling.md)")
    p.add_argument("--backend", default="auto", choices=["python", "expat", "auto"],
                   help="parser backend for the push-mode event path "
                        "(auto = expat when available)")
    p.add_argument("--runtime", default="bitmask", choices=sorted(RUNTIMES),
                   help="state-set representation for cold-path transitions "
                        "(bitmask = compiled integer masks, sets = reference)")
    p.add_argument("--max-memory",
                   help="bound resident states+tables per machine "
                        "(bytes, or K/M/G suffix, e.g. 64M); crossing it at a "
                        "document boundary triggers --eviction")
    p.add_argument("--eviction", default="clock", choices=sorted(EVICTION_POLICIES),
                   help="policy when --max-memory is crossed "
                        "(clock = incremental second-chance sweep, "
                        "flush = drop all states and tables)")
    p.add_argument("--early", action="store_true",
                   help="event-time earliest answering: decide filters at the "
                        "earliest deciding event (requires a top-down variant)")
    p.add_argument("--schema-mode", default="off", choices=sorted(SCHEMA_MODES),
                   help="schema-aware AFA specialization against --dtd "
                        "(trust = assume conforming input, validate = check "
                        "per event and fall back unpruned on violation)")
    p.set_defaults(func=cmd_filter)

    p = sub.add_parser("compile", help="pre-compile a query file to a workload JSON")
    p.add_argument("--queries", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "subscribe",
        help="add a filter to an engine state file (created if missing)",
    )
    p.add_argument("--state", required=True, help="engine state file (JSON)")
    p.add_argument("--oid", required=True, help="subscription id")
    p.add_argument("--xpath", required=True, help="the XPath filter")
    p.add_argument("--engine", choices=["layered", "xpush", "sharded"],
                   help="engine kind when creating a new state file "
                        "(default layered: updates keep the warmed base)")
    p.set_defaults(func=cmd_subscribe)

    p = sub.add_parser("unsubscribe", help="drop a filter from an engine state file")
    p.add_argument("--state", required=True, help="engine state file (JSON)")
    p.add_argument("--oid", required=True, help="subscription id to drop")
    p.set_defaults(func=cmd_unsubscribe)

    p = sub.add_parser(
        "compact",
        help="fold an engine state file's delta and tombstones into its base",
    )
    p.add_argument("--state", required=True, help="engine state file (JSON)")
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser(
        "rebalance",
        help="migrate filters between a sharded state file's shards until balanced",
    )
    p.add_argument("--state", required=True, help="sharded engine state file (JSON)")
    p.set_defaults(func=cmd_rebalance)

    p = sub.add_parser(
        "serve",
        help="run the network serving tier (TCP frames + HTTP on one port)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9723,
                   help="TCP port (0 = pick an ephemeral port)")
    p.add_argument("--queries", help="initial workload file (oid<TAB>xpath per line)")
    p.add_argument("--state", help="engine state file (see `subscribe`) to serve")
    p.add_argument("--engine", default="layered",
                   choices=["xpush", "layered", "sharded"],
                   help="engine kind behind the server (default layered: "
                        "live updates never flush the warmed base)")
    p.add_argument("--shards", type=int, default=2,
                   help="shard count when --engine sharded")
    p.add_argument("--placement", default="hash", choices=["hash", "cost"],
                   help="shard placement policy when --engine sharded "
                        "(cost = selectivity-driven cost model, "
                        "lightest-shard routing for live subscribes)")
    p.add_argument("--batch-size", type=int, default=16,
                   help="documents per work item when --engine sharded")
    p.add_argument("--backend", default="auto", choices=["python", "expat", "auto"],
                   help="parser backend for the push-mode event path")
    p.add_argument("--dtd", help="DTD file (order optimisation / schema specialization)")
    p.add_argument("--order", action="store_true",
                   help="enable the Sec. 5 order optimisation (needs --dtd)")
    p.add_argument("--early", action="store_true",
                   help="event-time earliest answering: decide filters at the "
                        "earliest deciding event (requires a top-down variant)")
    p.add_argument("--schema-mode", default="off", choices=sorted(SCHEMA_MODES),
                   help="schema-aware AFA specialization against --dtd")
    p.add_argument("--policy", default="block",
                   choices=["block", "drop_oldest", "evict"],
                   help="default slow-consumer policy at the high watermark")
    p.add_argument("--high-watermark", type=int, default=256,
                   help="default per-consumer queue bound (events)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="serve for N seconds then drain and exit (0 = forever)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("analyze", help="profile a workload's sharing structure")
    p.add_argument("--queries", required=True)
    p.add_argument("--top", type=int, default=10, help="how many shared predicates to list")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("generate-data", help="emit a synthetic XML stream")
    p.add_argument("--dataset", default="protein", choices=["protein", "nasa", "auction"])
    p.add_argument("--documents", type=int, default=10)
    p.add_argument("--bytes", type=int, help="target size instead of a document count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pretty", action="store_true")
    p.add_argument("--out", default="-")
    p.set_defaults(func=cmd_generate_data)

    p = sub.add_parser("generate-queries", help="emit a synthetic workload")
    p.add_argument("--dataset", default="protein", choices=["protein", "nasa", "auction"])
    p.add_argument("--count", type=int, default=100)
    p.add_argument("--mean-predicates", type=float, default=1.15)
    p.add_argument("--exact-predicates", type=int)
    p.add_argument("--prob-wildcard", type=float, default=0.0)
    p.add_argument("--prob-descendant", type=float, default=0.0)
    p.add_argument("--prob-or", type=float, default=0.0)
    p.add_argument("--prob-not", type=float, default=0.0)
    p.add_argument("--prob-nested", type=float, default=0.0)
    p.add_argument("--prob-string-function", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="-")
    p.set_defaults(func=cmd_generate_queries)

    p = sub.add_parser("inspect", help="show how one filter compiles")
    p.add_argument("query")
    p.add_argument("--verbose", "-v", action="store_true")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "explain", help="show the compiled form of a workload"
    )
    p.add_argument("--queries", help="query file (oid<TAB>xpath per line)")
    p.add_argument("--query", help="a single XPath filter instead of --queries")
    p.add_argument("--codegen", action="store_true",
                   help="print the workload-specialized Python the codegen "
                        "runtime dispatches into")
    p.add_argument("--max-handlers", type=int, default=None,
                   help="override the codegen handler bound "
                        "(XPushOptions.codegen_max_handlers)")
    p.add_argument("--schema", action="store_true",
                   help="show the DTD×AFA specialization: pruned states and "
                        "edges, per-depth label sets, derived depth bound")
    p.add_argument("--dtd", help="DTD file for --schema")
    p.add_argument("--placement", action="store_true",
                   help="dump the placement cost table (AFA states × σ̂) and "
                        "compare hash vs cost shard loads")
    p.add_argument("--shards", type=int, default=4,
                   help="shard count the --placement comparison partitions over")
    p.add_argument("--dataset", default="protein",
                   choices=["protein", "nasa", "auction"],
                   help="document pool --placement samples σ from")
    p.add_argument("--sample", type=int, default=0,
                   help="documents to sample for σ estimation (0 = skip "
                        "sampling, costs reduce to AFA state counts)")
    p.add_argument("--seed", type=int, default=0,
                   help="sample-pool seed for --placement")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("bench", help="one-shot throughput measurement")
    p.add_argument("--dataset", default="protein", choices=["protein", "nasa", "auction"])
    p.add_argument("--queries", type=int, default=500)
    p.add_argument("--mean-predicates", type=float, default=1.15)
    p.add_argument("--bytes", type=int, default=100_000)
    p.add_argument("--variant", default="TD-order-train", choices=sorted(VARIANTS))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="also measure a sharded engine with N worker processes")
    p.add_argument("--batch-size", type=int, default=16,
                   help="documents per work item in sharded mode")
    p.add_argument("--placement", default="hash", choices=["hash", "cost"],
                   help="routing policy for filters in sharded mode")
    p.add_argument("--backend", default="auto", choices=["python", "expat", "auto"],
                   help="parser backend for the push-mode event path")
    p.add_argument("--runtime", default="bitmask", choices=sorted(RUNTIMES),
                   help="state-set representation for cold-path transitions")
    p.add_argument("--max-memory",
                   help="bound resident states+tables per machine "
                        "(bytes, or K/M/G suffix, e.g. 64M)")
    p.add_argument("--eviction", default="clock", choices=sorted(EVICTION_POLICIES),
                   help="policy when --max-memory is crossed")
    p.add_argument("--early", action="store_true",
                   help="event-time earliest answering: decide filters at the "
                        "earliest deciding event (requires a top-down variant)")
    p.add_argument("--schema-mode", default="off", choices=sorted(SCHEMA_MODES),
                   help="schema-aware AFA specialization against the "
                        "dataset's own DTD")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
