"""Graphviz (dot) export for AFAs and lazily materialised XPush states.

Produces the Fig. 4-style picture of a workload's automata for
debugging and documentation (render with ``dot -Tsvg``).  No graphviz
dependency: we only emit the text format.
"""

from __future__ import annotations

from repro.afa.automaton import StateKind, WorkloadAutomata


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def afa_to_dot(workload: WorkloadAutomata, title: str = "workload") -> str:
    """The workload's AFAs as one dot digraph, clustered per filter."""
    lines = [
        f"digraph {_quote(title)} {{",
        "  rankdir=TB;",
        "  node [fontsize=10];",
    ]
    for index, afa in enumerate(workload.afas):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(f'{afa.oid}: {afa.source}')};")
        for sid in afa.state_sids:
            state = workload.states[sid]
            label = f"s{sid}"
            shape = "circle"
            if state.kind is StateKind.AND:
                label += "\\nAND"
                shape = "box"
            elif state.kind is StateKind.NOT:
                label += "\\nNOT"
                shape = "diamond"
            if state.is_terminal:
                label += f"\\n{state.predicate}"
                shape = "doublecircle"
            extra = ", peripheries=2" if sid == afa.initial and not state.is_terminal else ""
            lines.append(f"    n{sid} [label={_quote(label)}, shape={shape}{extra}];")
            if state.top_labels:
                lines.append(f"    top{sid} [label={_quote('⊤')}, shape=plaintext];")
        for sid in afa.state_sids:
            state = workload.states[sid]
            for label, targets in sorted(state.edges.items()):
                for target in targets:
                    lines.append(f"    n{sid} -> n{target} [label={_quote(label)}];")
            for child in state.eps:
                lines.append(f"    n{sid} -> n{child} [label={_quote('ε')}, style=dashed];")
            for label in sorted(state.top_labels):
                lines.append(f"    n{sid} -> top{sid} [label={_quote(label)}];")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def machine_states_to_dot(machine, max_states: int = 200, title: str = "xpush") -> str:
    """The materialised bottom-up states and their t_pop/t_badd edges.

    Caps at *max_states* nodes — the lazy machine can hold thousands.
    """
    states = machine.store.bottom_states()[:max_states]
    shown = {state.uid for state in states}
    lines = [
        f"digraph {_quote(title)} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=9];",
    ]
    for state in states:
        body = ",".join(str(s) for s in state.sids[:10])
        if len(state.sids) > 10:
            body += ",…"
        label = f"q{state.uid}\\n{{{body}}}"
        if state.accepts:
            label += "\\naccepts " + ",".join(sorted(state.accepts))
        lines.append(f"  q{state.uid} [label={_quote(label)}];")
    for state in states:
        for key, (target, _notified) in state.pop_table.items():
            if target.uid in shown:
                tag = key if isinstance(key, str) else key[0]
                lines.append(
                    f"  q{state.uid} -> q{target.uid} [label={_quote('pop ' + str(tag))}];"
                )
        for other_uid, target in state.add_table.items():
            if target.uid in shown and other_uid != target.uid:
                lines.append(
                    f"  q{state.uid} -> q{target.uid} "
                    f"[label={_quote(f'+q{other_uid}')}, style=dotted];"
                )
    lines.append("}")
    return "\n".join(lines) + "\n"
