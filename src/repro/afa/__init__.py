"""Alternating Finite Automata and the atomic predicate machinery.

Step 1 of the paper's compilation pipeline (Sec. 3.2): each XPath filter
becomes an AFA whose states are labelled AND, OR or NOT, with
ε-transitions for the boolean connectives, label transitions for
navigation, terminal states carrying atomic predicates on data values,
and a ⊤ sink for pure existence tests.

The atomic predicate index (Sec. 2) answers "given a data value v, which
predicates are true on v" in logarithmic time; it is shared by the XPush
machine's ``t_value`` and by the baselines.
"""

from repro.afa.automaton import AFA, AfaState, StateKind, WorkloadAutomata
from repro.afa.build import build_afa, build_workload_automata
from repro.afa.index import AtomicPredicateIndex
from repro.afa.predicates import AtomicPredicate, canonical_value, compare

__all__ = [
    "AFA",
    "AfaState",
    "AtomicPredicate",
    "AtomicPredicateIndex",
    "StateKind",
    "WorkloadAutomata",
    "build_afa",
    "build_workload_automata",
    "canonical_value",
    "compare",
]
