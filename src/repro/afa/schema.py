"""Schema-aware AFA specialization (DTD × AFA product pruning).

The datasets this library benchmarks against are generated from DTDs
(:mod:`repro.data.dtds`), and the paper already consumes the DTD for
the Sec. 5 order optimisation and training.  This module closes the
loop at compile time, in the spirit of schema-based scheduling of
event processors: intersect the workload's AFA with what the schema
can actually produce, *before* the bitmask and codegen runtimes build
their tables, so every downstream mask, sweep window and generated
handler shrinks for free.

Three analyses feed the specialization:

1. **Producible labels** — the parent→child label relation
   (:meth:`~repro.xmlstream.dtd.DTD.children_map`) closed from the
   root, plus the ``@name`` pseudo-labels of reachable elements.
   Label edges (and ⊤-edges) on labels the schema can never produce
   are deleted.
2. **Forward reachability** — after edge pruning, any AFA state no
   longer forward-reachable from an initial or notification state can
   never influence an answer on conforming input; its edges, ε-arcs,
   ⊤-edges and terminal predicate are stripped, so it vanishes from
   δ⁻¹, ``t_push``, the rank buckets and the atomic predicate index.
3. **Depth bound** — ``is_recursive``/``max_depth`` derive a hard
   stack bound for non-recursive schemas (attributes are pushed as
   pseudo-elements one level deeper), so the machine runs on a
   preallocated frame buffer instead of a growing list.

The pruned automaton is a genuine second
:class:`~repro.afa.automaton.WorkloadAutomata` over the *same* sid
space, finalized normally — its :class:`CompiledMasks` and compiled
handlers are built by the ordinary machinery and are cached per DTD
fingerprint on the original workload, so machines, shards and layered
epochs over one workload share one specialization.

Soundness (``schema_mode="trust"``) holds exactly on documents that
only use producible labels and respect the depth bound; those are the
only two assumptions the pruning makes, and they are precisely what
``schema_mode="validate"`` checks per event, falling back to the
unpruned tables for a non-conforming document instead of
mis-answering.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.afa.automaton import (
    AFA,
    ATTRIBUTE_WILDCARD,
    WILDCARD,
    WorkloadAutomata,
)
from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xmlstream.events import attribute_label

#: Hard cap on the per-depth reachable-label iteration for recursive
#: DTDs (the level sequence must cycle within the label alphabet).
_LEVEL_CAP_SLACK = 2

#: Sentinel target sid for a pruned ⊤-edge (⊤ is not a state).
TOP = -1


def dtd_fingerprint(dtd: DTD) -> str:
    """A stable content hash of a DTD — root, content models (via the
    canonical :meth:`ContentParticle.__str__` serialization) and
    attribute declarations.  Engine snapshots record it so ``restore``
    can prove the caller supplied the same schema the pruned tables
    were derived from."""
    digest = hashlib.sha256()
    digest.update(f"root={dtd.root}\n".encode("utf-8"))
    for name in sorted(dtd.elements):
        decl = dtd.elements[name]
        attrs = ",".join(
            f"{attr.name}{'!' if attr.required else ''}"
            for attr in sorted(decl.attributes, key=lambda a: a.name)
        )
        digest.update(f"{name}:{decl.content}:{attrs}\n".encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class SchemaAnalysis:
    """What the DTD can produce, from the specializer's point of view.

    Attributes:
        fingerprint: :func:`dtd_fingerprint` of the source DTD.
        element_labels: element labels reachable from the root.
        attribute_labels: ``@name`` pseudo-labels of reachable elements.
        producible: the union — every label a conforming document can
            fire a start-element event for.
        levels: per-depth reachable element-label sets (depth 1 = the
            root); truncated at the saturation point for recursive DTDs.
        saturated: True when *levels* was cut off by recursion.
        is_recursive: :meth:`DTD.is_recursive`.
        max_depth: :meth:`DTD.max_depth` (None when recursive).
        depth_bound: hard bound on machine stack depth — element depth
            plus one pseudo-level when any reachable element declares
            attributes; None when the DTD is recursive.
    """

    fingerprint: str
    element_labels: frozenset[str]
    attribute_labels: frozenset[str]
    producible: frozenset[str]
    levels: tuple[frozenset[str], ...]
    saturated: bool
    is_recursive: bool
    max_depth: int | None
    depth_bound: int | None


def analyze(dtd: DTD) -> SchemaAnalysis:
    """The schema-side half of the specialization: producible labels,
    per-depth reachable sets and the stack depth bound."""
    children = dtd.children_map()
    reachable: set[str] = set()
    frontier = [dtd.root]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(children[name])
    attrs: set[str] = set()
    for name in reachable:
        for attr in dtd.elements[name].attributes:
            attrs.add(attribute_label(attr.name))

    levels: list[frozenset[str]] = []
    level = frozenset((dtd.root,))
    cap = len(dtd.elements) + _LEVEL_CAP_SLACK
    saturated = False
    while level:
        if level in levels or len(levels) >= cap:
            saturated = True  # recursion: the level sequence cycles
            break
        levels.append(level)
        nxt: set[str] = set()
        for name in level:
            nxt |= children[name]
        level = frozenset(nxt)

    recursive = dtd.is_recursive()
    max_depth = None if recursive else dtd.max_depth()
    depth_bound: int | None = None
    if max_depth is not None:
        depth_bound = max_depth + (1 if attrs else 0)
    return SchemaAnalysis(
        fingerprint=dtd_fingerprint(dtd),
        element_labels=frozenset(reachable),
        attribute_labels=frozenset(attrs),
        producible=frozenset(reachable) | frozenset(attrs),
        levels=tuple(levels),
        saturated=saturated,
        is_recursive=recursive,
        max_depth=max_depth,
        depth_bound=depth_bound,
    )


@dataclass(frozen=True)
class SchemaSpec:
    """One workload × one DTD: the pruned automaton and what was cut.

    Attributes:
        analysis: the schema-side :class:`SchemaAnalysis`.
        workload: the pruned, finalized clone over the same sid space —
            its ``masks`` / ``compiled_handlers`` feed the machine.
        pruned_sids: sids stripped as forward-unreachable.
        pruned_edges: deleted transitions as ``(source sid, label,
            target sid)`` triples (:data:`TOP` marks a pruned ⊤-edge).
    """

    analysis: SchemaAnalysis
    workload: WorkloadAutomata
    pruned_sids: tuple[int, ...]
    pruned_edges: tuple[tuple[int, str, int], ...]

    @property
    def pruned_state_count(self) -> int:
        return len(self.pruned_sids)

    @property
    def pruned_edge_count(self) -> int:
        return len(self.pruned_edges)

    def describe(self) -> str:
        """Human-readable dump for ``repro explain --schema``."""
        analysis = self.analysis
        lines = [
            f"fingerprint : {analysis.fingerprint[:16]}…",
            f"producible  : {len(analysis.element_labels)} elements, "
            f"{len(analysis.attribute_labels)} attribute labels",
            "recursive   : "
            + ("yes (no depth bound)" if analysis.is_recursive
               else f"no (max element depth {analysis.max_depth}, "
                    f"stack bound {analysis.depth_bound})"),
            f"pruned      : {self.pruned_state_count} states, "
            f"{self.pruned_edge_count} edges",
        ]
        for depth, level in enumerate(analysis.levels, start=1):
            lines.append(f"  depth {depth}: {', '.join(sorted(level))}")
        if analysis.saturated:
            lines.append("  depth …: saturated (recursive content model)")
        if self.pruned_sids:
            shown = ", ".join(f"s{sid}" for sid in self.pruned_sids[:20])
            more = len(self.pruned_sids) - 20
            lines.append(
                f"pruned states: {shown}{f', … +{more}' if more > 0 else ''}"
            )
        for source, label, target in self.pruned_edges[:20]:
            arrow = "⊤" if target == TOP else f"s{target}"
            lines.append(f"pruned edge : s{source} --{label}--> {arrow}")
        if len(self.pruned_edges) > 20:
            lines.append(f"pruned edge : … +{len(self.pruned_edges) - 20} more")
        return "\n".join(lines)


def specialize(workload: WorkloadAutomata, dtd: DTD) -> SchemaSpec:
    """The DTD × AFA product pruning, cached per DTD fingerprint on the
    workload (machines, shards and layered epochs share one result).

    The clone keeps the original sid numbering (states are re-created
    in append order), so oids, owners, notification states and every
    externally visible mask bit line up with the unpruned automaton —
    only impossible transitions and dead states are emptied out.
    """
    if workload.masks is None:
        raise WorkloadError(
            "schema specialization needs a finalized workload (call finalize())"
        )
    analysis = analyze(dtd)
    cached = workload._schema_cache.get(analysis.fingerprint)
    if cached is not None:
        return cached

    producible = analysis.producible
    pruned_edges: list[tuple[int, str, int]] = []
    clone = WorkloadAutomata()
    for state in workload.states:
        twin = clone.new_state(state.kind, state.predicate)
        for label, targets in state.edges.items():
            if label in (WILDCARD, ATTRIBUTE_WILDCARD) or label in producible:
                for target in targets:
                    twin.add_edge(label, target)
            else:
                pruned_edges.extend((state.sid, label, target) for target in targets)
        twin.eps = list(state.eps)
        for label in state.top_labels:
            if label in (WILDCARD, ATTRIBUTE_WILDCARD) or label in producible:
                twin.top_labels.add(label)
            else:
                pruned_edges.append((state.sid, label, TOP))

    # Forward reachability from the answer-relevant seeds.  Membership
    # of a state in any computed set can only influence acceptance (or
    # an early notification) along its own edges and ε-arcs, so states
    # outside this cone are dead weight: strip them entirely.
    seeds = {afa.initial for afa in workload.afas}
    seeds.update(afa.notification for afa in workload.afas if afa.notification >= 0)
    reached: set[int] = set()
    stack = list(seeds)
    while stack:
        sid = stack.pop()
        if sid in reached:
            continue
        reached.add(sid)
        twin = clone.states[sid]
        for targets in twin.edges.values():
            stack.extend(targets)
        stack.extend(twin.eps)
    pruned_sids = tuple(
        state.sid for state in clone.states if state.sid not in reached
    )
    for sid in pruned_sids:
        twin = clone.states[sid]
        twin.edges = {}
        twin.eps = []
        twin.top_labels = set()
        twin.predicate = None

    for index, afa in enumerate(workload.afas):
        clone.afas.append(
            AFA(
                oid=afa.oid,
                initial=afa.initial,
                source=afa.source,
                state_sids=afa.state_sids,
                notification=afa.notification,
            )
        )
        for sid in afa.state_sids:
            clone.states[sid].owner = index
    clone.finalize()
    assert clone.masks is not None
    # Per-element-type transition rows: resolve the wildcard push rows
    # to direct per-label table hits for every label the schema can
    # produce, so ``t_push`` never falls through to the wildcard
    # default and codegen emits a literal handler per element type.
    clone.masks.materialize_push_rows(
        sorted(analysis.element_labels), sorted(analysis.attribute_labels)
    )

    spec = SchemaSpec(
        analysis=analysis,
        workload=clone,
        pruned_sids=pruned_sids,
        pruned_edges=tuple(pruned_edges),
    )
    workload._schema_cache[analysis.fingerprint] = spec
    return spec
