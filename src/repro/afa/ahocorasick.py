"""Aho–Corasick dictionary matching, from scratch.

Sec. 2 of the paper notes that the ``starts-with`` and ``contains``
string predicates can be supported in the atomic predicate index "by
adapting Aho and Corasick's dictionary search tree".  This module is
that adaptation: a classic goto/fail automaton whose :meth:`match_set`
returns the set of dictionary patterns occurring in a value, which the
index then combines with prefix information for ``starts-with``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable


class AhoCorasick:
    """Multi-pattern matcher over a fixed dictionary of strings."""

    def __init__(self, patterns: Iterable[str]):
        self.patterns: list[str] = []
        self._goto: list[dict[str, int]] = [{}]
        self._fail: list[int] = [0]
        self._output: list[set[int]] = [set()]
        for pattern in patterns:
            self._insert(pattern)
        self._build_failure_links()

    def _new_node(self) -> int:
        self._goto.append({})
        self._fail.append(0)
        self._output.append(set())
        return len(self._goto) - 1

    def _insert(self, pattern: str) -> None:
        if pattern == "":
            raise ValueError("empty patterns are not allowed")
        index = len(self.patterns)
        self.patterns.append(pattern)
        node = 0
        for ch in pattern:
            nxt = self._goto[node].get(ch)
            if nxt is None:
                nxt = self._new_node()
                self._goto[node][ch] = nxt
            node = nxt
        self._output[node].add(index)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for node in self._goto[0].values():
            self._fail[node] = 0
            queue.append(node)
        while queue:
            current = queue.popleft()
            for ch, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and ch not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(ch, 0)
                if self._fail[nxt] == nxt:  # can happen only from the root
                    self._fail[nxt] = 0
                self._output[nxt] |= self._output[self._fail[nxt]]

    def match_set(self, text: str) -> frozenset[int]:
        """Indexes of all patterns occurring anywhere in *text*."""
        found: set[int] = set()
        node = 0
        for ch in text:
            while node and ch not in self._goto[node]:
                node = self._fail[node]
            node = self._goto[node].get(ch, 0)
            if self._output[node]:
                found |= self._output[node]
        return frozenset(found)

    def __len__(self) -> int:
        return len(self.patterns)
