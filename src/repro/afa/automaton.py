"""Alternating Finite Automata (Sec. 3.2, Step 1).

An AFA is a nondeterministic automaton whose states are labelled AND,
OR or NOT.  Navigation uses *label transitions* ``δ(s, a)`` (with the
wildcards ``*`` over element labels and ``@*`` over attribute labels);
boolean connectives use ε-transitions; terminal states carry an atomic
predicate ``π_s`` on data values.  Matching semantics (on a document
tree) is the paper's:

- an OR state matches a node x if x is a data value and ``π_s(x)``, or
  some transition ``s' ∈ δ(s, a)`` and child y of x labelled *a* (y = x
  for ε) has s' matching y;
- an AND state matches x if all its ε-successors match x;
- a NOT state matches x if its single ε-successor does not match x.

Two pragmatic extensions used by the compiler (:mod:`repro.afa.build`):

- **⊤-edges**: a transition ``s --a--> ⊤`` means "s matches x if x has
  any child labelled a"; ⊤ is not materialised as a state — instead the
  workload keeps, per label, the list of states with a ⊤-edge on it, so
  ``t_pop`` can add them whenever such an element closes (this is how
  pure existence tests like ``a[b]`` witness an *empty* ``<b/>``);
- OR states may carry both label edges and ε-successors (needed for
  ``a//text() = v`` and similar shapes).

The :class:`WorkloadAutomata` aggregates all AFAs of a workload with
the global structures the XPush machine needs: reverse transitions
(δ⁻¹ with back-pointers, Sec. 4), the ε-DAG topological ranks that make
``eval()`` a single ordered pass, the NOT-state list, the terminal list
feeding the atomic predicate index, and each filter's *notification
state* for the early-notification optimisation.

``finalize()`` additionally compiles the whole workload into
:class:`CompiledMasks` — flat integer-bitmask tables where a set of AFA
states is one Python int with bit *sid* set.  The paper's Sec. 4
representation is "a sorted array of AFA states plus a 32 bit
signature"; following the compiled-automaton tradition (YFilter, the
lazy-DFA line of work), the mask tables turn every set operation on the
XPush cold path — ``eval``, δ⁻¹, ε-closures, accept/notification
lookups — into single-int bitwise AND/OR/NOT plus popcount, with no
frozenset churn and no ``tuple(sorted(...))`` at intern time.  The
set-based methods below remain the executable specification the mask
runtime is differentially tested against.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.afa.predicates import AtomicPredicate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.afa.codegen import CompiledHandlers
    from repro.afa.schema import SchemaSpec

WILDCARD = "*"
ATTRIBUTE_WILDCARD = "@*"


def bits_of(mask: int) -> tuple[int, ...]:
    """The set bit positions of *mask*, ascending — the sorted sid
    tuple a bitmask state set denotes (no sorting needed: bit order
    *is* sid order)."""
    out: list[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


class StateKind(enum.Enum):
    AND = "AND"
    OR = "OR"
    NOT = "NOT"

    def __repr__(self) -> str:
        return self.name


class AfaState:
    """One AFA state.  Identified workload-wide by its integer ``sid``
    (assigned in depth-first construction order — the paper's sort key).
    """

    __slots__ = (
        "sid",
        "kind",
        "predicate",
        "edges",
        "eps",
        "top_labels",
        "eps_parents",
        "rev",
        "rank",
        "owner",
        "prec",
    )

    def __init__(self, sid: int, kind: StateKind, predicate: AtomicPredicate | None = None):
        self.sid = sid
        self.kind = kind
        self.predicate = predicate
        self.edges: dict[str, list[int]] = {}  # label -> target sids (δ)
        self.eps: list[int] = []  # ε-successors
        self.top_labels: set[str] = set()  # labels with an edge to ⊤
        self.eps_parents: list[int] = []  # states with ε into self
        self.rev: dict[str, tuple[int, ...]] = {}  # label -> source sids (δ⁻¹)
        self.rank = 0  # ε-DAG topological rank (0 = no ε-successors)
        self.owner = -1  # index of the owning AFA in the workload
        self.prec: frozenset[int] = frozenset()  # order optimisation: must-precede siblings

    @property
    def is_terminal(self) -> bool:
        return self.predicate is not None

    @property
    def is_connective(self) -> bool:
        """True when eval() may add this state (it has ε-successors)."""
        return bool(self.eps)

    def add_edge(self, label: str, target: int) -> None:
        self.edges.setdefault(label, []).append(target)

    def outgoing_labels(self) -> frozenset[str]:
        """Labels on outgoing transitions (order optimisation, Sec. 5)."""
        return frozenset(self.edges) | frozenset(self.top_labels)

    def __repr__(self) -> str:
        tag = self.kind.name
        if self.is_terminal:
            tag += f"[{self.predicate}]"
        return f"<s{self.sid} {tag}>"


@dataclass
class AFA:
    """One filter's automaton: its initial state, oid and metadata."""

    oid: str
    initial: int
    source: str = ""
    state_sids: tuple[int, ...] = ()
    notification: int = -1  # first branching state (early notification)

    def __repr__(self) -> str:
        return f"AFA(oid={self.oid!r}, initial=s{self.initial}, states={len(self.state_sids)})"


class WorkloadAutomata:
    """All AFAs of a workload plus the global evaluation structures."""

    def __init__(self) -> None:
        self.states: list[AfaState] = []
        self.afas: list[AFA] = []
        self.top_by_label: dict[str, tuple[int, ...]] = {}
        self.top_wild: tuple[int, ...] = ()
        self.top_attr_wild: tuple[int, ...] = ()
        self.not_sids: tuple[int, ...] = ()
        self.terminals: tuple[int, ...] = ()
        self.initial_sids: frozenset[int] = frozenset()
        self._oid_by_initial: dict[int, list[str]] = {}
        self._oid_by_notification: dict[int, list[str]] = {}
        self.masks: CompiledMasks | None = None  # built by finalize()
        # Lazy per-bound cache of workload-specialized handlers (the
        # "codegen" runtime); None caches a declined compilation so the
        # fallback warning fires once per workload, not once per machine.
        self._codegen_cache: dict[int | None, "CompiledHandlers | None"] = {}
        # Schema-specialized (DTD-pruned) clones of this workload, one
        # per DTD fingerprint (repro.afa.schema.specialize), so every
        # machine, shard and layered epoch shares one pruning pass.
        self._schema_cache: dict[str, "SchemaSpec"] = {}
        self._finalized = False

    # -- construction-time API (used by repro.afa.build) ----------------

    def new_state(self, kind: StateKind, predicate: AtomicPredicate | None = None) -> AfaState:
        state = AfaState(len(self.states), kind, predicate)
        self.states.append(state)
        return state

    def finalize(self) -> "WorkloadAutomata":
        """Build reverse indexes, ranks and accept maps; call once after
        all AFAs have been added."""
        if self._finalized:
            return self
        top_by_label: dict[str, list[int]] = {}
        rev: dict[int, dict[str, list[int]]] = {}
        for state in self.states:
            for label, targets in state.edges.items():
                for target in targets:
                    rev.setdefault(target, {}).setdefault(label, []).append(state.sid)
            for label in state.top_labels:
                top_by_label.setdefault(label, []).append(state.sid)
            for child in state.eps:
                self.states[child].eps_parents.append(state.sid)
        for target, by_label in rev.items():
            self.states[target].rev = {
                label: tuple(sorted(sources)) for label, sources in by_label.items()
            }
        self.top_by_label = {
            label: tuple(sorted(sids)) for label, sids in top_by_label.items()
        }
        self.top_wild = self.top_by_label.get(WILDCARD, ())
        self.top_attr_wild = self.top_by_label.get(ATTRIBUTE_WILDCARD, ())
        self.not_sids = tuple(s.sid for s in self.states if s.kind is StateKind.NOT)
        self.terminals = tuple(s.sid for s in self.states if s.is_terminal)
        self.initial_sids = frozenset(afa.initial for afa in self.afas)
        for afa in self.afas:
            self._oid_by_initial.setdefault(afa.initial, []).append(afa.oid)
            if afa.notification >= 0:
                self._oid_by_notification.setdefault(afa.notification, []).append(afa.oid)
        self._compute_ranks()
        self.masks = CompiledMasks(self)
        self._finalized = True
        return self

    def _compute_ranks(self) -> None:
        """Topological rank over the ε-DAG: a connective's rank exceeds
        all its ε-successors', so one ordered pass settles eval()."""
        memo: dict[int, int] = {}

        def rank_of(sid: int) -> int:
            known = memo.get(sid)
            if known is not None:
                return known
            state = self.states[sid]
            value = 0 if not state.eps else 1 + max(rank_of(child) for child in state.eps)
            memo[sid] = value
            state.rank = value
            return value

        for state in self.states:
            rank_of(state.sid)

    def compiled_handlers(self, max_handlers: int | None = None) -> "CompiledHandlers | None":
        """The workload-specialized compiled handlers for the
        ``"codegen"`` runtime, built on first request and cached per
        *max_handlers* bound — machines over the same workload (clones,
        shards, a layered engine's base layer across delta epochs)
        share one compilation.

        Returns None — after warning exactly once — when the workload
        exceeds the bound or the emitter declines it; callers fall back
        to the interpreted bitmask tables, never a hard error.
        """
        if self.masks is None:
            from repro.errors import WorkloadError

            raise WorkloadError(
                "codegen needs a finalized workload (call finalize())"
            )
        cache = self._codegen_cache
        if max_handlers in cache:
            return cache[max_handlers]
        from repro.afa.codegen import compile_handlers

        handlers: "CompiledHandlers | None"
        try:
            handlers = compile_handlers(self, max_handlers)
        except Exception as exc:
            warnings.warn(
                f"codegen runtime unavailable for this workload ({exc}); "
                f"falling back to the bitmask runtime",
                RuntimeWarning,
                stacklevel=2,
            )
            handlers = None
        cache[max_handlers] = handlers
        return handlers

    # -- run-time API (used by the XPush machine) ------------------------

    def eval_closure(self, qb: Iterable[int]) -> frozenset[int]:
        """eval(q) of Sec. 3.2: saturate *qb* with all logically implied
        connective states.  AND fires when all ε-successors are present,
        OR when some is, NOT when its successor is absent.  Connectives
        are visited in ε-rank order, so nested connectives — including
        ``not(not(Q))`` — settle in one pass.
        """
        result = set(qb)
        # Candidates: every NOT state (they fire on absence), plus the
        # upward ε-closure of the present states and of the NOTs.
        candidates: set[int] = set()
        stack: list[int] = list(result)
        stack.extend(self.not_sids)
        candidates.update(self.not_sids)
        seen: set[int] = set(stack)
        states = self.states
        while stack:
            sid = stack.pop()
            for parent in states[sid].eps_parents:
                if parent not in seen:
                    seen.add(parent)
                    candidates.add(parent)
                    stack.append(parent)
        for sid in sorted(candidates, key=lambda s: states[s].rank):
            state = states[sid]
            if sid in result:
                continue
            if state.kind is StateKind.AND:
                if all(child in result for child in state.eps):
                    result.add(sid)
            elif state.kind is StateKind.NOT:
                if state.eps[0] not in result:
                    result.add(sid)
            elif state.eps:  # OR with ε-successors
                if any(child in result for child in state.eps):
                    result.add(sid)
        return frozenset(result)

    def delta_inverse(self, evaluated: Iterable[int], label: str, is_attribute: bool) -> set[int]:
        """δ⁻¹(q, a) = {s' | δ(s', a) ∩ q ≠ ∅}, plus the ⊤-edge states
        for *label* (an element labelled *a* closing always witnesses
        existence edges on *a*)."""
        wildcard = ATTRIBUTE_WILDCARD if is_attribute else WILDCARD
        out: set[int] = set()
        states = self.states
        for sid in evaluated:
            rev = states[sid].rev
            sources = rev.get(label)
            if sources:
                out.update(sources)
            sources = rev.get(wildcard)
            if sources:
                out.update(sources)
        top = self.top_by_label.get(label)
        if top:
            out.update(top)
        top = self.top_attr_wild if is_attribute else self.top_wild
        if top:
            out.update(top)
        return out

    def push_targets(self, enabled: Iterable[int], label: str, is_attribute: bool) -> set[int]:
        """Forward step for top-down pruning: states enabled on a child
        labelled *label* given the parent's enabled set (before closure)."""
        wildcard = ATTRIBUTE_WILDCARD if is_attribute else WILDCARD
        out: set[int] = set()
        states = self.states
        for sid in enabled:
            edges = states[sid].edges
            targets = edges.get(label)
            if targets:
                out.update(targets)
            targets = edges.get(wildcard)
            if targets:
                out.update(targets)
        return out

    def epsilon_closure(self, sids: set[int]) -> frozenset[int]:
        """close(q): add ε-successors repeatedly (top-down pruning)."""
        stack = list(sids)
        result = set(sids)
        states = self.states
        while stack:
            sid = stack.pop()
            for child in states[sid].eps:
                if child not in result:
                    result.add(child)
                    stack.append(child)
        return frozenset(result)

    def accepted_oids(self, qb: Iterable[int]) -> frozenset[str]:
        """t_accept: oids whose initial state is in *qb*."""
        out: list[str] = []
        for sid in self.initial_sids.intersection(qb):
            out.extend(self._oid_by_initial[sid])
        return frozenset(out)

    def notified_oids(self, sids: Iterable[int]) -> frozenset[str]:
        """Oids whose notification state occurs in *sids*."""
        out: list[str] = []
        by_notification = self._oid_by_notification
        for sid in sids:
            oids = by_notification.get(sid)
            if oids:
                out.extend(oids)
        return frozenset(out)

    def afa_states_of(self, oid_sids: Iterable[int]) -> set[int]:
        """All sids belonging to the AFAs owning the given sids (used to
        strip a notified filter's states from stored XPush states)."""
        out: set[int] = set()
        for sid in oid_sids:
            afa = self.afas[self.states[sid].owner]
            out.update(afa.state_sids)
        return out

    # -- statistics -------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.states)

    def describe(self) -> str:
        lines = [f"workload: {len(self.afas)} AFAs, {len(self.states)} states"]
        for afa in self.afas:
            lines.append(f"  {afa!r}")
        return "\n".join(lines)


class CompiledMasks:
    """Flat bitmask tables for a finalized workload (the compiled AFA
    runtime).  A *state set* is one int: bit *sid* set ⇔ sid present.

    Every method here is the integer-mask twin of a set-based method on
    :class:`WorkloadAutomata` and must agree with it exactly — the
    differential runtime tests (`tests/xpush/test_runtime_differential`)
    enforce that; the set versions are the executable spec.
    """

    __slots__ = (
        "state_count",
        "all_mask",
        "terminal_mask",
        "not_mask",
        "initial_mask",
        "notification_mask",
        "not_up_mask",
        "_eps_masks",
        "_closure_masks",
        "_up_masks",
        "_rank_buckets",
        "_rev_masks",
        "_rev_targets_by_label",
        "_push_by_label",
        "_push_elem_wild",
        "_push_attr_wild",
        "_top_masks",
        "_top_wild_mask",
        "_top_attr_wild_mask",
        "_owner_masks",
        "_oid_by_initial",
        "_oid_by_notification",
    )

    def __init__(self, workload: WorkloadAutomata):
        states = workload.states
        n = len(states)
        self.state_count = n
        self.all_mask = (1 << n) - 1

        terminal = not_mask = initial = notification = 0
        eps_masks = [0] * n
        rev_masks: list[dict[str, int] | None] = [None] * n
        rev_targets_by_label: dict[str, int] = {}
        for state in states:
            bit = 1 << state.sid
            if state.is_terminal:
                terminal |= bit
            if state.kind is StateKind.NOT:
                not_mask |= bit
            mask = 0
            for child in state.eps:
                mask |= 1 << child
            eps_masks[state.sid] = mask
            if state.rev:
                rev_masks[state.sid] = {
                    label: _mask_of(sources) for label, sources in state.rev.items()
                }
                for label in state.rev:
                    rev_targets_by_label[label] = (
                        rev_targets_by_label.get(label, 0) | bit
                    )
        for afa in workload.afas:
            initial |= 1 << afa.initial
            if afa.notification >= 0:
                notification |= 1 << afa.notification
        self.terminal_mask = terminal
        self.not_mask = not_mask
        self.initial_mask = initial
        self.notification_mask = notification
        self._eps_masks = eps_masks
        self._rev_masks = rev_masks
        self._rev_targets_by_label = rev_targets_by_label
        self._top_masks = {
            label: _mask_of(sids) for label, sids in workload.top_by_label.items()
        }
        self._top_wild_mask = self._top_masks.get(WILDCARD, 0)
        self._top_attr_wild_mask = self._top_masks.get(ATTRIBUTE_WILDCARD, 0)

        # Per-sid transitive ε-closures, both directions.  The ε-graph
        # is a DAG (finalize() computed topological ranks over it), so
        # one pass in rank order suffices: a state's closure is itself
        # plus the union of its ε-children's closures, and its upward
        # closure is itself plus its ε-parents' upward closures.  These
        # tables turn every runtime closure into a single OR-sweep over
        # the argument's bits — no frontier loop, no revisits.
        by_rank = sorted(states, key=lambda s: s.rank)
        closure_masks = [0] * n
        for state in by_rank:  # children (lower rank) first
            mask = 1 << state.sid
            for child in state.eps:
                mask |= closure_masks[child]
            closure_masks[state.sid] = mask
        up_masks = [0] * n
        for state in reversed(by_rank):  # parents (higher rank) first
            mask = 1 << state.sid
            for parent in state.eps_parents:
                mask |= up_masks[parent]
            up_masks[state.sid] = mask
        self._closure_masks = closure_masks
        self._up_masks = up_masks
        not_up = 0
        m = not_mask
        while m:
            low = m & -m
            not_up |= up_masks[low.bit_length() - 1]
            m ^= low
        self.not_up_mask = not_up

        # Label-edge index for t_push, with the targets' ε-closure baked
        # in: per label, the mask of source states carrying that label
        # plus a per-source table of the already-closed target sets —
        # t_push is then one AND, a sweep over the (few) enabled
        # sources, and zero closure calls.
        raw_push: dict[str, tuple[int, dict[int, int]]] = {}
        for state in states:
            for label, targets in state.edges.items():
                closed = 0
                for target in targets:
                    closed |= closure_masks[target]
                sources_mask, by_source = raw_push.get(label, (0, {}))
                by_source[state.sid] = by_source.get(state.sid, 0) | closed
                raw_push[label] = (sources_mask | (1 << state.sid), by_source)
        # Fold the matching wildcard row into every concrete label so
        # t_push is a single lookup + sweep; the bare wildcard rows stay
        # in the table as the fallback for labels with no concrete edge.
        # Each entry also carries the union of all its target closures:
        # when every source for the label is enabled (the common case at
        # shallow depths under top-down evaluation) the sweep collapses
        # to returning that precomputed union.
        push_by_label: dict[str, tuple[int, dict[int, int], int]] = {}
        for label, (sources_mask, by_source) in raw_push.items():
            if label not in (WILDCARD, ATTRIBUTE_WILDCARD):
                wild = raw_push.get(
                    ATTRIBUTE_WILDCARD if label.startswith("@") else WILDCARD
                )
                if wild is not None:
                    wild_sources, wild_by_source = wild
                    sources_mask |= wild_sources
                    merged = dict(wild_by_source)
                    for sid, closed in by_source.items():
                        merged[sid] = merged.get(sid, 0) | closed
                    by_source = merged
            full_union = 0
            for closed in by_source.values():
                full_union |= closed
            push_by_label[label] = (sources_mask, by_source, full_union)
        self._push_by_label = push_by_label
        self._push_elem_wild = push_by_label.get(WILDCARD)
        self._push_attr_wild = push_by_label.get(ATTRIBUTE_WILDCARD)

        # Rank-bucketed eval structures: per ε-rank ≥ 1, one candidate
        # mask per connective kind, so eval_closure is a rank-by-rank
        # sweep over (candidates ∩ bucket) with one subset/overlap test
        # per fired state — no sorting, no frozenset allocation.
        max_rank = max((s.rank for s in states), default=0)
        buckets = [[0, 0, 0] for _ in range(max_rank + 1)]
        for state in states:
            if not state.eps:
                continue
            bit = 1 << state.sid
            if state.kind is StateKind.AND:
                buckets[state.rank][0] |= bit
            elif state.kind is StateKind.NOT:
                buckets[state.rank][1] |= bit
            else:  # OR with ε-successors
                buckets[state.rank][2] |= bit
        self._rank_buckets = tuple(tuple(b) for b in buckets[1:] if any(b))

        # Per-sid mask of the owning AFA's states (early notification
        # strips a notified filter's whole automaton) and the oid maps
        # behind t_accept / notification answers.
        afa_masks = [_mask_of(afa.state_sids) for afa in workload.afas]
        self._owner_masks = [
            afa_masks[state.owner] if state.owner >= 0 else 0 for state in states
        ]
        self._oid_by_initial = {
            sid: tuple(oids) for sid, oids in workload._oid_by_initial.items()
        }
        self._oid_by_notification = {
            sid: tuple(oids) for sid, oids in workload._oid_by_notification.items()
        }

    # -- set algebra on masks --------------------------------------------

    @staticmethod
    def mask_of(sids: Iterable[int]) -> int:
        """The mask denoting the set *sids*."""
        return _mask_of(sids)

    @staticmethod
    def sids_of(mask: int) -> tuple[int, ...]:
        """The sorted sid tuple a mask denotes."""
        return bits_of(mask)

    def materialize_push_rows(
        self, element_labels: Iterable[str], attribute_labels: Iterable[str]
    ) -> int:
        """Insert a direct ``_push_by_label`` row for every given label
        that currently has none, aliasing the matching wildcard row.

        Wildcard edges are normally resolved at lookup time: a label
        with no concrete row falls through to the ``*``/``@*`` entry.
        When the producible label alphabet is known (a DTD is supplied
        — :mod:`repro.afa.schema`), resolving that fallback at build
        time makes ``t_push`` a single dict hit per label and lets the
        code generator emit one literal handler per element type.
        Returns the number of rows added."""
        added = 0
        for labels, wild in (
            (element_labels, self._push_elem_wild),
            (attribute_labels, self._push_attr_wild),
        ):
            if wild is None:
                continue
            for label in labels:
                if label not in self._push_by_label:
                    self._push_by_label[label] = wild
                    added += 1
        return added

    # -- emit-ready table exports (consumed by repro.afa.codegen) ---------

    def rev_rows(self) -> dict[str, dict[int, int]]:
        """δ⁻¹ regrouped by label: ``label -> {target sid -> mask of
        source states}`` — the per-label view the code generator
        specializes pop handlers from."""
        rows: dict[str, dict[int, int]] = {}
        for sid, by_label in enumerate(self._rev_masks):
            if by_label:
                for label, sources in by_label.items():
                    rows.setdefault(label, {})[sid] = sources
        return rows

    def push_rows(self) -> dict[str, tuple[int, dict[int, int], int]]:
        """The t_push label index: ``label -> (sources mask, {source
        sid -> ε-closed targets mask}, union of all target closures)``,
        wildcard rows already folded into concrete labels."""
        return dict(self._push_by_label)

    def top_rows(self) -> dict[str, int]:
        """⊤-edge owners per label (owners of ``s --a--> ⊤``)."""
        return dict(self._top_masks)

    def eps_rows(self) -> list[int]:
        """Per-sid mask of direct ε-successors."""
        return list(self._eps_masks)

    def up_rows(self) -> list[int]:
        """Per-sid transitive upward ε-closure masks."""
        return list(self._up_masks)

    def rank_bucket_rows(self) -> tuple[tuple[int, int, int], ...]:
        """Per ε-rank ≥ 1: (AND, NOT, OR) connective masks."""
        return self._rank_buckets

    # -- runtime transitions ---------------------------------------------

    def eval_closure(self, qb_mask: int) -> int:
        """Mask twin of :meth:`WorkloadAutomata.eval_closure`."""
        result = qb_mask
        # Candidate connectives: every NOT state plus the upward
        # ε-closure of the present states and of the NOTs (the NOT part
        # is the precomputed ``not_up_mask``).
        up = self._up_masks
        seen = self.not_up_mask
        m = qb_mask
        while m:
            low = m & -m
            seen |= up[low.bit_length() - 1]
            m ^= low
        eps = self._eps_masks
        for and_bucket, not_bucket, or_bucket in self._rank_buckets:
            m = and_bucket & seen & ~result
            while m:
                low = m & -m
                mask = eps[low.bit_length() - 1]
                if mask & result == mask:
                    result |= low
                m ^= low
            m = not_bucket & seen & ~result
            while m:
                low = m & -m
                if not eps[low.bit_length() - 1] & result:
                    result |= low
                m ^= low
            m = or_bucket & seen & ~result
            while m:
                low = m & -m
                if eps[low.bit_length() - 1] & result:
                    result |= low
                m ^= low
        return result

    def delta_inverse(self, evaluated_mask: int, label: str, is_attribute: bool) -> int:
        """Mask twin of :meth:`WorkloadAutomata.delta_inverse`."""
        out = self._top_masks.get(label, 0)
        out |= self._top_attr_wild_mask if is_attribute else self._top_wild_mask
        rev = self._rev_masks
        targets = self._rev_targets_by_label.get(label)
        if targets is not None:
            m = evaluated_mask & targets
            while m:
                low = m & -m
                out |= rev[low.bit_length() - 1][label]
                m ^= low
        wildcard = ATTRIBUTE_WILDCARD if is_attribute else WILDCARD
        targets = self._rev_targets_by_label.get(wildcard)
        if targets is not None:
            m = evaluated_mask & targets
            while m:
                low = m & -m
                out |= rev[low.bit_length() - 1][wildcard]
                m ^= low
        return out

    def push_targets_closure(
        self, enabled_mask: int, label: str, is_attribute: bool
    ) -> int:
        """ε-closed mask twin of ``epsilon_closure(push_targets(...))``:
        the target closures are baked into the label index at build
        time (wildcard rows pre-merged), so t_push costs at most one
        sweep over the enabled sources for the label."""
        entry = self._push_by_label.get(label)
        if entry is None:
            entry = self._push_attr_wild if is_attribute else self._push_elem_wild
            if entry is None:
                return 0
        sources_mask, by_source, full_union = entry
        m = enabled_mask & sources_mask
        if m == sources_mask:
            return full_union
        out = 0
        while m:
            low = m & -m
            out |= by_source[low.bit_length() - 1]
            m ^= low
        return out

    def epsilon_closure(self, mask: int) -> int:
        """Mask twin of :meth:`WorkloadAutomata.epsilon_closure`."""
        closures = self._closure_masks
        result = mask
        while mask:
            low = mask & -mask
            result |= closures[low.bit_length() - 1]
            mask ^= low
        return result

    def accepted_oids(self, qb_mask: int) -> frozenset[str]:
        """Mask twin of :meth:`WorkloadAutomata.accepted_oids`."""
        hits = qb_mask & self.initial_mask
        if not hits:
            return _EMPTY_OIDS
        out: list[str] = []
        by_initial = self._oid_by_initial
        while hits:
            low = hits & -hits
            out.extend(by_initial[low.bit_length() - 1])
            hits ^= low
        return frozenset(out)

    def notified_oids(self, noted_mask: int) -> frozenset[str]:
        """Mask twin of :meth:`WorkloadAutomata.notified_oids`."""
        out: list[str] = []
        by_notification = self._oid_by_notification
        m = noted_mask & self.notification_mask
        while m:
            low = m & -m
            out.extend(by_notification[low.bit_length() - 1])
            m ^= low
        return frozenset(out)

    def afa_states(self, noted_mask: int) -> int:
        """Mask twin of :meth:`WorkloadAutomata.afa_states_of`."""
        out = 0
        owner_masks = self._owner_masks
        while noted_mask:
            low = noted_mask & -noted_mask
            out |= owner_masks[low.bit_length() - 1]
            noted_mask ^= low
        return out


def _mask_of(sids: Iterable[int]) -> int:
    mask = 0
    for sid in sids:
        mask |= 1 << sid
    return mask


_EMPTY_OIDS: frozenset[str] = frozenset()
