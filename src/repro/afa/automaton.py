"""Alternating Finite Automata (Sec. 3.2, Step 1).

An AFA is a nondeterministic automaton whose states are labelled AND,
OR or NOT.  Navigation uses *label transitions* ``δ(s, a)`` (with the
wildcards ``*`` over element labels and ``@*`` over attribute labels);
boolean connectives use ε-transitions; terminal states carry an atomic
predicate ``π_s`` on data values.  Matching semantics (on a document
tree) is the paper's:

- an OR state matches a node x if x is a data value and ``π_s(x)``, or
  some transition ``s' ∈ δ(s, a)`` and child y of x labelled *a* (y = x
  for ε) has s' matching y;
- an AND state matches x if all its ε-successors match x;
- a NOT state matches x if its single ε-successor does not match x.

Two pragmatic extensions used by the compiler (:mod:`repro.afa.build`):

- **⊤-edges**: a transition ``s --a--> ⊤`` means "s matches x if x has
  any child labelled a"; ⊤ is not materialised as a state — instead the
  workload keeps, per label, the list of states with a ⊤-edge on it, so
  ``t_pop`` can add them whenever such an element closes (this is how
  pure existence tests like ``a[b]`` witness an *empty* ``<b/>``);
- OR states may carry both label edges and ε-successors (needed for
  ``a//text() = v`` and similar shapes).

The :class:`WorkloadAutomata` aggregates all AFAs of a workload with
the global structures the XPush machine needs: reverse transitions
(δ⁻¹ with back-pointers, Sec. 4), the ε-DAG topological ranks that make
``eval()`` a single ordered pass, the NOT-state list, the terminal list
feeding the atomic predicate index, and each filter's *notification
state* for the early-notification optimisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.afa.predicates import AtomicPredicate

WILDCARD = "*"
ATTRIBUTE_WILDCARD = "@*"


class StateKind(enum.Enum):
    AND = "AND"
    OR = "OR"
    NOT = "NOT"

    def __repr__(self) -> str:
        return self.name


class AfaState:
    """One AFA state.  Identified workload-wide by its integer ``sid``
    (assigned in depth-first construction order — the paper's sort key).
    """

    __slots__ = (
        "sid",
        "kind",
        "predicate",
        "edges",
        "eps",
        "top_labels",
        "eps_parents",
        "rev",
        "rank",
        "owner",
        "prec",
    )

    def __init__(self, sid: int, kind: StateKind, predicate: AtomicPredicate | None = None):
        self.sid = sid
        self.kind = kind
        self.predicate = predicate
        self.edges: dict[str, list[int]] = {}  # label -> target sids (δ)
        self.eps: list[int] = []  # ε-successors
        self.top_labels: set[str] = set()  # labels with an edge to ⊤
        self.eps_parents: list[int] = []  # states with ε into self
        self.rev: dict[str, tuple[int, ...]] = {}  # label -> source sids (δ⁻¹)
        self.rank = 0  # ε-DAG topological rank (0 = no ε-successors)
        self.owner = -1  # index of the owning AFA in the workload
        self.prec: frozenset[int] = frozenset()  # order optimisation: must-precede siblings

    @property
    def is_terminal(self) -> bool:
        return self.predicate is not None

    @property
    def is_connective(self) -> bool:
        """True when eval() may add this state (it has ε-successors)."""
        return bool(self.eps)

    def add_edge(self, label: str, target: int) -> None:
        self.edges.setdefault(label, []).append(target)

    def outgoing_labels(self) -> frozenset[str]:
        """Labels on outgoing transitions (order optimisation, Sec. 5)."""
        return frozenset(self.edges) | frozenset(self.top_labels)

    def __repr__(self) -> str:
        tag = self.kind.name
        if self.is_terminal:
            tag += f"[{self.predicate}]"
        return f"<s{self.sid} {tag}>"


@dataclass
class AFA:
    """One filter's automaton: its initial state, oid and metadata."""

    oid: str
    initial: int
    source: str = ""
    state_sids: tuple[int, ...] = ()
    notification: int = -1  # first branching state (early notification)

    def __repr__(self) -> str:
        return f"AFA(oid={self.oid!r}, initial=s{self.initial}, states={len(self.state_sids)})"


class WorkloadAutomata:
    """All AFAs of a workload plus the global evaluation structures."""

    def __init__(self) -> None:
        self.states: list[AfaState] = []
        self.afas: list[AFA] = []
        self.top_by_label: dict[str, tuple[int, ...]] = {}
        self.top_wild: tuple[int, ...] = ()
        self.top_attr_wild: tuple[int, ...] = ()
        self.not_sids: tuple[int, ...] = ()
        self.terminals: tuple[int, ...] = ()
        self.initial_sids: frozenset[int] = frozenset()
        self._oid_by_initial: dict[int, list[str]] = {}
        self._oid_by_notification: dict[int, list[str]] = {}
        self._finalized = False

    # -- construction-time API (used by repro.afa.build) ----------------

    def new_state(self, kind: StateKind, predicate: AtomicPredicate | None = None) -> AfaState:
        state = AfaState(len(self.states), kind, predicate)
        self.states.append(state)
        return state

    def finalize(self) -> "WorkloadAutomata":
        """Build reverse indexes, ranks and accept maps; call once after
        all AFAs have been added."""
        if self._finalized:
            return self
        top_by_label: dict[str, list[int]] = {}
        rev: dict[int, dict[str, list[int]]] = {}
        for state in self.states:
            state.owner = state.owner  # placeholder for readability
            for label, targets in state.edges.items():
                for target in targets:
                    rev.setdefault(target, {}).setdefault(label, []).append(state.sid)
            for label in state.top_labels:
                top_by_label.setdefault(label, []).append(state.sid)
            for child in state.eps:
                self.states[child].eps_parents.append(state.sid)
        for target, by_label in rev.items():
            self.states[target].rev = {
                label: tuple(sorted(sources)) for label, sources in by_label.items()
            }
        self.top_by_label = {
            label: tuple(sorted(sids)) for label, sids in top_by_label.items()
        }
        self.top_wild = self.top_by_label.get(WILDCARD, ())
        self.top_attr_wild = self.top_by_label.get(ATTRIBUTE_WILDCARD, ())
        self.not_sids = tuple(s.sid for s in self.states if s.kind is StateKind.NOT)
        self.terminals = tuple(s.sid for s in self.states if s.is_terminal)
        self.initial_sids = frozenset(afa.initial for afa in self.afas)
        for afa in self.afas:
            self._oid_by_initial.setdefault(afa.initial, []).append(afa.oid)
            if afa.notification >= 0:
                self._oid_by_notification.setdefault(afa.notification, []).append(afa.oid)
        self._compute_ranks()
        self._finalized = True
        return self

    def _compute_ranks(self) -> None:
        """Topological rank over the ε-DAG: a connective's rank exceeds
        all its ε-successors', so one ordered pass settles eval()."""
        memo: dict[int, int] = {}

        def rank_of(sid: int) -> int:
            known = memo.get(sid)
            if known is not None:
                return known
            state = self.states[sid]
            value = 0 if not state.eps else 1 + max(rank_of(child) for child in state.eps)
            memo[sid] = value
            state.rank = value
            return value

        for state in self.states:
            rank_of(state.sid)

    # -- run-time API (used by the XPush machine) ------------------------

    def eval_closure(self, qb: Iterable[int]) -> frozenset[int]:
        """eval(q) of Sec. 3.2: saturate *qb* with all logically implied
        connective states.  AND fires when all ε-successors are present,
        OR when some is, NOT when its successor is absent.  Connectives
        are visited in ε-rank order, so nested connectives — including
        ``not(not(Q))`` — settle in one pass.
        """
        result = set(qb)
        # Candidates: every NOT state (they fire on absence), plus the
        # upward ε-closure of the present states and of the NOTs.
        candidates: set[int] = set()
        stack: list[int] = list(result)
        stack.extend(self.not_sids)
        candidates.update(self.not_sids)
        seen: set[int] = set(stack)
        states = self.states
        while stack:
            sid = stack.pop()
            for parent in states[sid].eps_parents:
                if parent not in seen:
                    seen.add(parent)
                    candidates.add(parent)
                    stack.append(parent)
        for sid in sorted(candidates, key=lambda s: states[s].rank):
            state = states[sid]
            if sid in result:
                continue
            if state.kind is StateKind.AND:
                if all(child in result for child in state.eps):
                    result.add(sid)
            elif state.kind is StateKind.NOT:
                if state.eps[0] not in result:
                    result.add(sid)
            elif state.eps:  # OR with ε-successors
                if any(child in result for child in state.eps):
                    result.add(sid)
        return frozenset(result)

    def delta_inverse(self, evaluated: Iterable[int], label: str, is_attribute: bool) -> set[int]:
        """δ⁻¹(q, a) = {s' | δ(s', a) ∩ q ≠ ∅}, plus the ⊤-edge states
        for *label* (an element labelled *a* closing always witnesses
        existence edges on *a*)."""
        wildcard = ATTRIBUTE_WILDCARD if is_attribute else WILDCARD
        out: set[int] = set()
        states = self.states
        for sid in evaluated:
            rev = states[sid].rev
            sources = rev.get(label)
            if sources:
                out.update(sources)
            sources = rev.get(wildcard)
            if sources:
                out.update(sources)
        top = self.top_by_label.get(label)
        if top:
            out.update(top)
        top = self.top_attr_wild if is_attribute else self.top_wild
        if top:
            out.update(top)
        return out

    def push_targets(self, enabled: Iterable[int], label: str, is_attribute: bool) -> set[int]:
        """Forward step for top-down pruning: states enabled on a child
        labelled *label* given the parent's enabled set (before closure)."""
        wildcard = ATTRIBUTE_WILDCARD if is_attribute else WILDCARD
        out: set[int] = set()
        states = self.states
        for sid in enabled:
            edges = states[sid].edges
            targets = edges.get(label)
            if targets:
                out.update(targets)
            targets = edges.get(wildcard)
            if targets:
                out.update(targets)
        return out

    def epsilon_closure(self, sids: set[int]) -> frozenset[int]:
        """close(q): add ε-successors repeatedly (top-down pruning)."""
        stack = list(sids)
        result = set(sids)
        states = self.states
        while stack:
            sid = stack.pop()
            for child in states[sid].eps:
                if child not in result:
                    result.add(child)
                    stack.append(child)
        return frozenset(result)

    def accepted_oids(self, qb: Iterable[int]) -> frozenset[str]:
        """t_accept: oids whose initial state is in *qb*."""
        out: list[str] = []
        for sid in self.initial_sids.intersection(qb):
            out.extend(self._oid_by_initial[sid])
        return frozenset(out)

    def notified_oids(self, sids: Iterable[int]) -> frozenset[str]:
        """Oids whose notification state occurs in *sids*."""
        out: list[str] = []
        by_notification = self._oid_by_notification
        for sid in sids:
            oids = by_notification.get(sid)
            if oids:
                out.extend(oids)
        return frozenset(out)

    def afa_states_of(self, oid_sids: Iterable[int]) -> set[int]:
        """All sids belonging to the AFAs owning the given sids (used to
        strip a notified filter's states from stored XPush states)."""
        out: set[int] = set()
        for sid in oid_sids:
            afa = self.afas[self.states[sid].owner]
            out.update(afa.state_sids)
        return out

    # -- statistics -------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.states)

    def describe(self) -> str:
        lines = [f"workload: {len(self.afas)} AFAs, {len(self.states)} states"]
        for afa in self.afas:
            lines.append(f"  {afa!r}")
        return "\n".join(lines)
