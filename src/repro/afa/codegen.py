"""Workload-specialized code generation for the XPush cold path.

The ``"bitmask"`` runtime (:class:`repro.afa.automaton.CompiledMasks`)
already turned the paper's set algebra into integer bitwise ops, but it
still *interprets* generic tables per event: every ``t_pop`` walks the
rank-bucketed eval sweep over all connectives and then the per-label
δ⁻¹ rows, every ``t_push`` re-resolves its label row.  Following the
whole-query-optimisation idea (rewrite the workload once, before any
event arrives) this module emits and ``compile()``-s straight-line
Python *specialized to one concrete workload*:

- one **push handler per label**, with the label's source mask and the
  ε-closed target masks inlined as int literals (the all-sources fast
  path becomes ``return <literal>``);
- one **fused pop handler per label** that computes
  ``δ⁻¹(eval(qb), label)`` without materialising ``eval(qb)``: only
  connectives that are δ⁻¹ *targets* of the label (or feed one through
  ε-edges) can contribute, and the rest of eval is elided entirely.
  Conditions that are pure mask tests over ``qb`` — AND/OR over
  non-connective children, the overwhelming majority — are merged by
  children mask into one straight-line test (ORs and single-conjunct
  ANDs fold into the swept table outright); only NOTs, nested sub-DAGs
  and direct-presence mixes remain as boolean assignments.  Large
  sweeps scan 64-bit *windows* of the mask against lazily-built
  per-window union tables — O(words) per pop, not O(set bits) — which
  is what keeps thousand-filter sets (hundreds of live states each)
  cheap;
- one **evaluated-input pop handler per label** for the early-
  notification path, which genuinely needs the full ``eval(qb)`` (the
  notification check inspects every filter's notification state) — so
  the full eval is emitted too, unrolled into one line per connective
  when the DAG is small;
- **dead branches are elided at emit time**: a state that can never
  occur in a bottom-up set (not a terminal, not an edge source, not a
  ⊤-edge owner) is constant-folded out of every firing condition, and
  the folds cascade — a NOT over an impossible child becomes constant
  true, an AND with one impossible conjunct disappears, handlers whose
  tables end up empty collapse to ``return <literal>``.

Specialization contract: the fused pop handlers assume their argument
is a *reachable* bottom-up set — a subset of the "possible" mask
(terminals ∪ edge sources ∪ ⊤-edge owners, plus everything eval can
add), which every set the machine interns is by construction.  The
emitted eval is valid on arbitrary masks.

The generated source is retained on the :class:`CompiledHandlers` for
debugging (``dump_source()``, surfaced by ``repro-xpush explain
--codegen``).  Workloads whose handler count would exceed the
``codegen_max_handlers`` bound raise :class:`CodegenUnsupported`;
:meth:`~repro.afa.automaton.WorkloadAutomata.compiled_handlers`
converts that (and any emitter failure) into a single warning plus a
bitmask-runtime fallback, never a hard error.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.afa.automaton import (
    ATTRIBUTE_WILDCARD,
    WILDCARD,
    CompiledMasks,
    StateKind,
    WorkloadAutomata,
)
from repro.errors import WorkloadError

#: Sweeps over at most this many table entries are unrolled into
#: ``if mask & bit`` lines instead of a chunked table scan.
UNROLL_SWEEP = 6

#: Chunked sweeps split the scanned mask into windows this wide and
#: union one lazily-built table entry per non-zero window — O(words)
#: per call instead of O(set bits) big-int extractions.  Wider windows
#: shrink both the loop count and the cost of the running shift (which
#: is itself O(remaining words) per window, so the whole scan is
#: quadratic in window count); 64 bits keeps window patterns small
#: enough that they still recur across events and stay cheap to hash.
CHUNK_BITS = 64

_CHUNK_MASK = (1 << CHUNK_BITS) - 1

#: A chunk table that somehow outgrows this many lazily-built entries
#: is cleared and refilled (windows seen in real streams repeat; this
#: only bounds the pathological case).
CHUNK_TABLE_LIMIT = 262_144

#: The full eval is unrolled (one line per connective, no candidate
#: filtering) only while the whole connective DAG stays this small;
#: larger DAGs keep the bucketed sweep, with the buckets as literals.
UNROLL_EVAL = 32

#: Name the compiled code reports in tracebacks.
_SOURCE_NAME = "<repro.afa.codegen>"

_VAR = re.compile(r"\bx\d+\b")


class CodegenUnsupported(WorkloadError):
    """The emitter declined this workload (e.g. handler bound exceeded)."""


def _chunk_builder(
    table: dict[int, int], per_bit: dict[int, int]
) -> Callable[[int], int]:
    """Lazy filler for a chunked-sweep table: key ``(window << 16) |
    pattern`` maps to the union of *per_bit* contributions over the
    pattern's bits.  Windows recur across events, so each entry is
    built once and then served by a plain dict probe."""

    def build(key: int) -> int:
        pattern = key & _CHUNK_MASK
        shift = (key >> CHUNK_BITS) * CHUNK_BITS
        union = 0
        while pattern:
            low = pattern & -pattern
            union |= per_bit.get(low << shift, 0)
            pattern ^= low
        if len(table) >= CHUNK_TABLE_LIMIT:
            table.clear()
        table[key] = union
        return union

    return build


@dataclass
class CompiledHandlers:
    """The compiled per-workload transition handlers.

    ``push``/``pop``/``pop_ev`` map concrete labels (wildcard rows
    folded in at emit time) to compiled functions; the ``*_default``
    functions serve labels absent from the tables (wildcard-only
    behaviour).  All handlers map ``int -> int`` over state-set masks.
    """

    source: str
    handler_count: int
    compile_ms: float
    eval_closure: Callable[[int], int]
    push: dict[str, Callable[[int], int]]
    push_elem_default: Callable[[int], int]
    push_attr_default: Callable[[int], int]
    pop: dict[str, Callable[[int], int]]
    pop_elem_default: Callable[[int], int]
    pop_attr_default: Callable[[int], int]
    pop_ev: dict[str, Callable[[int], int]]
    pop_ev_elem_default: Callable[[int], int]
    pop_ev_attr_default: Callable[[int], int]

    def dump_source(self) -> str:
        """The generated Python source (debugging / ``explain`` view)."""
        return self.source


def planned_handler_count(masks: CompiledMasks) -> int:
    """How many functions :func:`compile_handlers` would emit — the
    quantity ``codegen_max_handlers`` bounds, computable without
    emitting anything."""
    pop_labels = set(masks.rev_rows()) | set(masks.top_rows())
    pop_labels.update((WILDCARD, ATTRIBUTE_WILDCARD))
    push_labels = set(masks.push_rows())
    push_labels.update((WILDCARD, ATTRIBUTE_WILDCARD))
    return 2 * len(pop_labels) + len(push_labels) + 1


def compile_handlers(
    workload: WorkloadAutomata, max_handlers: int | None = None
) -> CompiledHandlers:
    """Emit, ``compile()`` and bind the specialized handlers for
    *workload*.  Raises :class:`CodegenUnsupported` when the workload
    needs more than *max_handlers* functions."""
    masks = workload.masks
    if masks is None:
        raise WorkloadError("codegen needs a finalized workload (call finalize())")
    planned = planned_handler_count(masks)
    if max_handlers is not None and planned > max_handlers:
        raise CodegenUnsupported(
            f"workload needs {planned} handlers, codegen_max_handlers={max_handlers}"
        )
    started = time.perf_counter()
    handlers = _Emitter(workload, masks).emit()
    handlers.compile_ms = (time.perf_counter() - started) * 1000.0
    if handlers.handler_count != planned:  # pragma: no cover - emitter invariant
        raise WorkloadError(
            f"codegen emitted {handlers.handler_count} handlers, planned {planned}"
        )
    return handlers


class _Emitter:
    """Builds the generated source plus the exec namespace holding the
    (few) tables too large to unroll; every handler binds its table as
    a default argument so the compiled body does local loads only."""

    def __init__(self, workload: WorkloadAutomata, masks: CompiledMasks) -> None:
        self.workload = workload
        self.masks = masks
        self.states = workload.states
        self.lines: list[str] = []
        self.namespace: dict[str, Any] = {}
        self.count = 0
        self.rev_rows = masks.rev_rows()
        self.push_rows = masks.push_rows()
        self.top_rows = masks.top_rows()
        # The "possible" mask: every sid a bottom-up set can contain.
        # qb is built from t_value results (terminals), δ⁻¹ results
        # (edge sources and ⊤-edge owners) and merges/strips of those.
        possible = masks.terminal_mask
        for sources_mask, _by_source, _full in self.push_rows.values():
            possible |= sources_mask
        for top_mask in self.top_rows.values():
            possible |= top_mask
        self.possible = possible

    # -- emission helpers ----------------------------------------------

    def _bind(self, name: str, table: object, local: str = "_t") -> str:
        """Register *table* under a global name; returns the def-line
        parameter binding it as a default argument."""
        self.namespace[name] = table
        return f", {local}={name}"

    def _sweep_body(
        self,
        name: str,
        arg: str,
        out_init: int,
        entries: dict[int, int],
        has_tail: bool,
    ) -> tuple[str, list[str]]:
        """(def-line params, body lines) computing ``out = out_init |
        ⋃ entries[bit]`` over the set bits of *arg*.  Small tables are
        unrolled into ``if`` lines.  Large ones pick per call: sparse
        masks bit-scan the per-bit table, dense masks (more set bits
        than ``CHUNK_BITS``-wide windows) scan whole windows against a
        lazily-built per-window union table — real sets carry hundreds
        of states, and per-*word* beats per-*bit* exactly then."""
        if not entries:
            if not has_tail:
                return "", [f"    return {out_init:#x}"]
            return "", [f"    out = {out_init:#x}"]
        lines = [f"    out = {out_init:#x}"]
        params = ""
        if len(entries) <= UNROLL_SWEEP:
            for bit, mask in sorted(entries.items()):
                lines.append(f"    if {arg} & {bit:#x}:")
                lines.append(f"        out |= {mask:#x}")
        else:
            table: dict[int, int] = {}
            params = self._bind(f"{name}_p", entries, "_p")
            params += self._bind(f"{name}_t", table)
            params += self._bind(f"{name}_b", _chunk_builder(table, entries), "_b")
            full = 0
            for bit in entries:
                full |= bit
            windows = (full.bit_length() + CHUNK_BITS - 1) // CHUNK_BITS
            lines.append(f"    m = {arg} & {full:#x}")
            lines.append(f"    if m.bit_count() <= {windows}:")
            lines.append("        while m:")
            lines.append("            low = m & -m")
            lines.append("            out |= _p[low]")
            lines.append("            m ^= low")
            lines.append("    else:")
            lines.append("        w = 0")
            lines.append("        while m:")
            lines.append(f"            seg = m & {_CHUNK_MASK:#x}")
            lines.append("            if seg:")
            lines.append("                seg |= w")
            lines.append("                u = _t.get(seg)")
            lines.append("                if u is None:")
            lines.append("                    u = _b(seg)")
            lines.append("                out |= u")
            lines.append(f"            m >>= {CHUNK_BITS}")
            lines.append(f"            w += {1 << CHUNK_BITS:#x}")
        if not has_tail:
            lines.append("    return out")
        return params, lines

    # -- connective sub-DAG folding ------------------------------------

    def _fold_connectives(
        self, roots: list[int]
    ) -> tuple[list[str], dict[int, object], dict[int, tuple[str, int]]]:
        """Straight-line boolean assignments for the connective sub-DAG
        reachable from *roots* through ε-edges, constant-folded against
        the possible mask.  Returns (statements, value map, simple map);
        a value is True/False (folded away) or an expression string over
        ``qb`` (a variable name or a direct-presence test).  The simple
        map covers connectives whose condition is *purely* a mask test
        over ``qb`` — ``("and", m)`` for ``qb & m == m``, ``("or", m)``
        for ``qb & m`` — which pop handlers turn into swept table
        entries instead of unconditional straight-line tests."""
        states = self.states
        dag: set[int] = set()
        stack = list(roots)
        while stack:
            sid = stack.pop()
            if sid in dag:
                continue
            dag.add(sid)
            for child in states[sid].eps:
                if states[child].is_connective:
                    stack.append(child)
        possible = self.possible
        values: dict[int, object] = {}
        simple: dict[int, tuple[str, int]] = {}
        statements: list[str] = []
        for sid in sorted(dag, key=lambda s: (states[s].rank, s)):
            state = states[sid]
            fired: object
            simple_fired: tuple[str, int] | None = None
            if state.kind is StateKind.NOT:
                child = state.eps[0]
                if states[child].is_connective:
                    value = values[child]
                    if value is True:
                        fired = False
                    elif value is False:
                        fired = True
                    else:
                        fired = f"not {value}"
                elif possible & (1 << child):
                    fired = f"not qb & {1 << child:#x}"
                else:
                    fired = True  # child can never match: NOT always fires
            elif state.kind is StateKind.AND:
                nc_mask = 0
                terms: list[str] = []
                fired = None
                for child in state.eps:
                    if states[child].is_connective:
                        value = values[child]
                        if value is False:
                            fired = False  # one conjunct can never hold
                            break
                        if value is not True:
                            terms.append(str(value))
                    else:
                        nc_mask |= 1 << child
                if fired is None:
                    if nc_mask & ~possible:
                        fired = False  # an impossible non-connective conjunct
                    elif not terms and nc_mask:
                        fired = f"qb & {nc_mask:#x} == {nc_mask:#x}"
                        simple_fired = ("and", nc_mask)
                    else:
                        if nc_mask:
                            terms.insert(0, f"qb & {nc_mask:#x} == {nc_mask:#x}")
                        fired = " and ".join(terms) if terms else True
            else:  # OR with ε-successors
                nc_mask = 0
                terms = []
                fired = None
                for child in state.eps:
                    if states[child].is_connective:
                        value = values[child]
                        if value is True:
                            fired = True  # one disjunct always holds
                            break
                        if value is not False:
                            terms.append(str(value))
                    else:
                        nc_mask |= 1 << child
                if fired is None:
                    nc_mask &= possible  # impossible disjuncts fold away
                    if not terms and nc_mask:
                        fired = f"qb & {nc_mask:#x}"
                        simple_fired = ("or", nc_mask)
                    else:
                        if nc_mask:
                            terms.insert(0, f"qb & {nc_mask:#x}")
                        fired = " or ".join(terms) if terms else False
            # x_sid = (sid directly present in qb) or fired
            direct = possible & (1 << sid)
            if fired is True:
                values[sid] = True
            elif fired is False:
                values[sid] = f"qb & {1 << sid:#x}" if direct else False
                if direct:
                    simple[sid] = ("or", direct)
            elif direct:
                statements.append(f"    x{sid} = qb & {1 << sid:#x} or ({fired})")
                values[sid] = f"x{sid}"
            else:
                statements.append(f"    x{sid} = {fired}")
                values[sid] = f"x{sid}"
                if simple_fired is not None:
                    simple[sid] = simple_fired
        return statements, values, simple

    @staticmethod
    def _prune(statements: list[str], tail: list[str]) -> list[str]:
        """Drop assignments whose variable no consumer (transitively)
        reads — targets folded to constants leave dead prefixes."""
        used: set[str] = set()
        for line in tail:
            used.update(_VAR.findall(line))
        kept: list[str] = []
        for line in reversed(statements):
            var, _, rhs = line.strip().partition(" = ")
            if var in used:
                kept.append(line)
                used.update(_VAR.findall(rhs))
        kept.reverse()
        return kept

    # -- handler emitters ----------------------------------------------

    def _pop_tables(self, label: str) -> tuple[dict[int, int], int]:
        """(target sid -> δ⁻¹ contribution, ⊤-edge constant) for a
        label, with the wildcard row folded in."""
        wildcard = ATTRIBUTE_WILDCARD if label.startswith("@") else WILDCARD
        contributions: dict[int, int] = {}
        for row_label in {label, wildcard}:
            for sid, sources in self.rev_rows.get(row_label, {}).items():
                contributions[sid] = contributions.get(sid, 0) | sources
        top = self.top_rows.get(label, 0)
        if label != wildcard:
            top |= self.top_rows.get(wildcard, 0)
        return contributions, top

    def _emit_pop(self, index: int, label: str) -> str:
        """The fused handler: qb -> δ⁻¹(eval(qb), label), specialized
        to reachable qb sets (see module docstring)."""
        name = f"_pop_{index}"
        contributions, top = self._pop_tables(label)
        states = self.states
        conn_targets = sorted(
            sid for sid in contributions if states[sid].is_connective
        )
        statements, values, simple = self._fold_connectives(conn_targets)
        out_init = top
        sweep: dict[int, int] = {}
        conj: dict[int, int] = {}  # conjunction mask -> contribution
        tail: list[str] = []
        for sid, sources in sorted(contributions.items()):
            if states[sid].is_connective:
                value = values[sid]
                if value is True:
                    out_init |= sources  # always fires: fold into the constant
                elif value is False:
                    continue
                elif sid in simple:
                    # A purely-over-qb condition: single-bit and OR
                    # forms merge into the swept table (any child
                    # present fires, unions are idempotent); multi-bit
                    # conjunctions stay as one straight-line test each,
                    # merged by children mask.
                    kind, mask = simple[sid]
                    if kind == "or" or mask & (mask - 1) == 0:
                        while mask:
                            low = mask & -mask
                            sweep[low] = sweep.get(low, 0) | sources
                            mask ^= low
                    else:
                        conj[mask] = conj.get(mask, 0) | sources
                else:
                    tail.append(f"    if {value}:")
                    tail.append(f"        out |= {sources:#x}")
            elif self.possible & (1 << sid):
                bit = 1 << sid
                sweep[bit] = sweep.get(bit, 0) | sources
        statements = self._prune(statements, tail)
        conj_lines: list[str] = []
        for mask, sources in sorted(conj.items()):
            conj_lines.append(f"    if qb & {mask:#x} == {mask:#x}:")
            conj_lines.append(f"        out |= {sources:#x}")
        has_tail = bool(tail or conj_lines)
        sweep_params, sweep_lines = self._sweep_body(
            name, "qb", out_init, sweep, has_tail
        )
        self.lines.append(
            f"def {name}(qb{sweep_params}):  # t_pop, label {label!r}"
        )
        self.lines.extend(sweep_lines)
        if has_tail:
            self.lines.extend(conj_lines)
            self.lines.extend(statements)
            self.lines.extend(tail)
            self.lines.append("    return out")
        self.lines.append("")
        self.count += 1
        return name

    def _emit_pop_ev(self, index: int, label: str) -> str:
        """The evaluated-input handler: eval(qb) -> δ⁻¹(·, label), used
        by the early-notification path."""
        name = f"_ev_{index}"
        contributions, top = self._pop_tables(label)
        states = self.states
        sweep = {
            1 << sid: sources
            for sid, sources in contributions.items()
            # A non-connective never enters a set through eval: if it
            # cannot occur in qb it cannot occur in eval(qb) either.
            if states[sid].is_connective or self.possible & (1 << sid)
        }
        params, body = self._sweep_body(name, "ev", top, sweep, has_tail=False)
        self.lines.append(
            f"def {name}(ev{params}):  # t_pop on eval'd input, label {label!r}"
        )
        self.lines.extend(body)
        self.lines.append("")
        self.count += 1
        return name

    def _emit_push(self, index: int, label: str) -> str:
        name = f"_push_{index}"
        entry = self.push_rows.get(label)
        lines = self.lines
        if entry is None:
            lines.append(f"def {name}(e):  # t_push, label {label!r} (no edges)")
            lines.append("    return 0")
        else:
            sources_mask, by_source, full_union = entry
            entries = {1 << sid: closed for sid, closed in by_source.items()}
            params, body = self._sweep_body(name, "m", 0, entries, has_tail=False)
            lines.append(f"def {name}(e{params}):  # t_push, label {label!r}")
            lines.append(f"    m = e & {sources_mask:#x}")
            lines.append(f"    if m == {sources_mask:#x}:")
            lines.append(f"        return {full_union:#x}")
            lines.extend(body)
        lines.append("")
        self.count += 1
        return name

    def _emit_eval(self) -> str:
        """The full eval(q) closure, specialized to the workload's
        connective DAG (used by the early-notification pop path)."""
        name = "_eval"
        lines = self.lines
        connectives = [s for s in self.states if s.is_connective]
        eps_rows = self.masks.eps_rows()
        if not connectives:
            lines.append(f"def {name}(r):  # eval(q): no connectives")
            lines.append("    return r")
        elif len(connectives) <= UNROLL_EVAL:
            # One straight line per connective, in ε-rank order; the
            # bitmask runtime's candidate filter is an optimisation
            # (a connective only fires off its children), not needed
            # once the sweep itself is this short.
            lines.append(
                f"def {name}(r):  # eval(q), {len(connectives)} connectives unrolled"
            )
            for state in sorted(connectives, key=lambda s: (s.rank, s.sid)):
                eps = eps_rows[state.sid]
                if state.kind is StateKind.AND:
                    lines.append(f"    if r & {eps:#x} == {eps:#x}:")
                elif state.kind is StateKind.NOT:
                    lines.append(f"    if not r & {eps:#x}:")
                else:
                    lines.append(f"    if r & {eps:#x}:")
                lines.append(f"        r |= {1 << state.sid:#x}")
            lines.append("    return r")
        else:
            self.namespace["_up_rows"] = self.masks.up_rows()
            self.namespace["_eps_rows"] = eps_rows
            lines.append(
                f"def {name}(r, _up=_up_rows, _eps=_eps_rows):"
                f"  # eval(q), {len(connectives)} connectives"
            )
            lines.append(f"    seen = {self.masks.not_up_mask:#x}")
            lines.append("    m = r")
            lines.append("    while m:")
            lines.append("        low = m & -m")
            lines.append("        seen |= _up[low.bit_length() - 1]")
            lines.append("        m ^= low")
            tests = ("mask & r == mask", "not mask & r", "mask & r")
            for bucket_row in self.masks.rank_bucket_rows():
                for kind, bucket in enumerate(bucket_row):
                    if not bucket:
                        continue  # no states of this kind at this rank
                    lines.append(f"    m = {bucket:#x} & seen & ~r")
                    lines.append("    while m:")
                    lines.append("        low = m & -m")
                    lines.append("        mask = _eps[low.bit_length() - 1]")
                    lines.append(f"        if {tests[kind]}:")
                    lines.append("            r |= low")
                    lines.append("        m ^= low")
            lines.append("    return r")
        lines.append("")
        self.count += 1
        return name

    # -- driver ---------------------------------------------------------

    def emit(self) -> CompiledHandlers:
        masks = self.masks
        self.lines.append(
            f"# Generated by repro.afa.codegen for a workload of "
            f"{len(self.workload.afas)} filters / {masks.state_count} AFA states."
        )
        self.lines.append("")
        pop_labels = sorted(
            set(self.rev_rows) | set(self.top_rows) | {WILDCARD, ATTRIBUTE_WILDCARD}
        )
        push_labels = sorted(set(self.push_rows) | {WILDCARD, ATTRIBUTE_WILDCARD})
        pop_names = {
            label: self._emit_pop(i, label) for i, label in enumerate(pop_labels)
        }
        ev_names = {
            label: self._emit_pop_ev(i, label) for i, label in enumerate(pop_labels)
        }
        push_names = {
            label: self._emit_push(i, label) for i, label in enumerate(push_labels)
        }
        eval_name = self._emit_eval()
        source = "\n".join(self.lines)
        namespace = self.namespace
        namespace["__builtins__"] = {}
        exec(compile(source, _SOURCE_NAME, "exec"), namespace)  # noqa: S102

        def bound(name: str) -> Callable[[int], int]:
            fn: Callable[[int], int] = namespace[name]
            return fn

        return CompiledHandlers(
            source=source,
            handler_count=self.count,
            compile_ms=0.0,
            eval_closure=bound(eval_name),
            push={label: bound(name) for label, name in push_names.items()},
            push_elem_default=bound(push_names[WILDCARD]),
            push_attr_default=bound(push_names[ATTRIBUTE_WILDCARD]),
            pop={label: bound(name) for label, name in pop_names.items()},
            pop_elem_default=bound(pop_names[WILDCARD]),
            pop_attr_default=bound(pop_names[ATTRIBUTE_WILDCARD]),
            pop_ev={label: bound(name) for label, name in ev_names.items()},
            pop_ev_elem_default=bound(ev_names[WILDCARD]),
            pop_ev_attr_default=bound(ev_names[ATTRIBUTE_WILDCARD]),
        )
