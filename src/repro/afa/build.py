"""Compile XPath filters into Alternating Finite Automata (Sec. 3.2).

The construction mirrors the paper's Example 3.3 exactly; on the running
example it produces the two 7-/6-state automata of Fig. 4 (up to state
numbering).  The rules, right-to-left over the location path:

- a CHILD step ``a`` becomes a label edge ``s --a--> target``;
- a DESCENDANT step adds a ``*`` self-loop to the source state before
  the label edge (how Fig. 4 encodes ``//``);
- a step's predicates conjoin with the navigation continuation through
  an AND state with ε-successors;
- a trailing comparison is a **terminal** state carrying the atomic
  predicate — the paper absorbs the ``text()`` step into the terminal
  (``3 --b--> 4[=1]`` for ``b/text() = 1``), and so do we;
- a trailing existence test is a ⊤-edge (``a[b]`` must also accept an
  empty ``<b/>``, which never produces a text event);
- ``and``/``or``/``not`` become AND/OR/NOT states with ε-transitions.

Each AFA also records its *notification state* — the first branching
state on the unbranched prefix chain from the initial state (Sec. 5,
early notification); the walk stops early at NOT states, which gate
everything beneath them.
"""

from __future__ import annotations

from repro.afa.automaton import AFA, AfaState, StateKind, WorkloadAutomata
from repro.afa.predicates import AtomicPredicate
from repro.errors import WorkloadError
from repro.xpath.ast import (
    And,
    Axis,
    BooleanExpr,
    Comparison,
    Exists,
    LocationPath,
    Not,
    NodeTestKind,
    Or,
    Step,
    XPathFilter,
)

#: Sentinel returned by the compiler for "always matches" (the ⊤ target).
TOP = -1


class _Compiler:
    """Compiles one filter into states of a shared WorkloadAutomata."""

    def __init__(self, workload: WorkloadAutomata):
        self.workload = workload
        self.created: list[int] = []

    def state(self, kind: StateKind, predicate: AtomicPredicate | None = None) -> AfaState:
        node = self.workload.new_state(kind, predicate)
        self.created.append(node.sid)
        return node

    # ------------------------------------------------------------------

    def compile_filter(self, path: LocationPath) -> int:
        initial = self.context_state(list(path.steps), terminal=None)
        if initial == TOP:
            raise WorkloadError(f"filter {path} is trivially true; refusing to compile")
        return initial

    def context_state(self, steps: list[Step], terminal: AtomicPredicate | None) -> int:
        """State matching the *context* node of ``steps``.

        The state matches a node x iff ``steps`` select, starting from
        x, some node that (a) exists, when *terminal* is None, or
        (b) has a value satisfying *terminal* otherwise.
        """
        if not steps:
            return TOP if terminal is None else self.state(StateKind.OR, terminal).sid
        step, rest = steps[0], steps[1:]

        if step.axis is Axis.SELF:
            inner = self.context_state(rest, terminal)
            return self.conjoin(list(step.predicates), inner)

        if step.test.kind is NodeTestKind.TEXT:
            # text() is a trailing step (the grammar has no navigation
            # below text); the selected node is the data value itself.
            if rest or step.predicates:
                raise WorkloadError("text() must be the last step and bare")
            predicate = terminal if terminal is not None else AtomicPredicate.TRUE
            terminal_sid = self.state(StateKind.OR, predicate).sid
            if step.axis is Axis.DESCENDANT:
                # a//text(): the context needs a *-loop plus an ε to the
                # terminal so a direct text child also witnesses it.
                source = self.state(StateKind.OR)
                source.add_edge("*", source.sid)
                source.eps.append(terminal_sid)
                return source.sid
            return terminal_sid

        source = self.state(StateKind.OR)
        if step.axis is Axis.DESCENDANT:
            source.add_edge("*", source.sid)
        label = self.edge_label(step)
        target = self.step_target(step, rest, terminal)
        if target == TOP:
            source.top_labels.add(label)
        else:
            source.add_edge(label, target)
        return source.sid

    @staticmethod
    def edge_label(step: Step) -> str:
        kind = step.test.kind
        if kind is NodeTestKind.NAME or kind is NodeTestKind.ATTRIBUTE:
            return step.test.name
        if kind is NodeTestKind.WILDCARD:
            return "*"
        if kind is NodeTestKind.ATTRIBUTE_WILDCARD:
            return "@*"
        raise WorkloadError(f"cannot navigate through {step.test}")

    def step_target(self, step: Step, rest: list[Step], terminal: AtomicPredicate | None) -> int:
        """State matching the node selected by *step* itself."""
        predicates = list(step.predicates)
        if rest and rest[0].test.kind is NodeTestKind.TEXT and rest[0].axis is Axis.CHILD and len(rest) == 1 and not rest[0].predicates:
            # Absorb a trailing `/text()` into the terminal (Fig. 4).
            predicate = terminal if terminal is not None else AtomicPredicate.TRUE
            tail = self.state(StateKind.OR, predicate).sid
            return self.conjoin(predicates, tail)
        if not rest:
            if terminal is None:
                if not predicates:
                    return TOP
                return self.conjoin(predicates, TOP)
            tail = self.state(StateKind.OR, terminal).sid
            return self.conjoin(predicates, tail)
        continuation = self.context_state(rest, terminal)
        return self.conjoin(predicates, continuation)

    def conjoin(self, predicates: list[BooleanExpr], continuation: int) -> int:
        """AND together predicate subgraphs with a continuation state.

        A ⊤ continuation (or conjunct) is simply dropped; an AND with a
        single member collapses to that member.
        """
        members: list[int] = []
        for predicate in predicates:
            sid = self.boolean(predicate)
            if sid != TOP:
                members.append(sid)
        if continuation != TOP:
            members.append(continuation)
        if not members:
            return TOP
        if len(members) == 1:
            return members[0]
        node = self.state(StateKind.AND)
        node.eps.extend(members)
        return node.sid

    def boolean(self, expr: BooleanExpr) -> int:
        if isinstance(expr, Exists):
            return self.context_state(list(expr.path.steps), terminal=None)
        if isinstance(expr, Comparison):
            predicate = AtomicPredicate(expr.op, expr.value)
            return self.context_state(list(expr.path.steps), terminal=predicate)
        if isinstance(expr, And):
            node = self.state(StateKind.AND)
            members = [self.boolean(child) for child in expr.children]
            members = [m for m in members if m != TOP]
            if not members:
                return TOP
            node.eps.extend(members)
            return node.sid
        if isinstance(expr, Or):
            members = [self.boolean(child) for child in expr.children]
            if any(m == TOP for m in members):
                return TOP
            node = self.state(StateKind.OR)
            node.eps.extend(members)
            return node.sid
        if isinstance(expr, Not):
            child = self.boolean(expr.child)
            if child == TOP:
                raise WorkloadError("not(⊤) is trivially false; refusing to compile")
            node = self.state(StateKind.NOT)
            node.eps.append(child)
            return node.sid
        raise TypeError(f"not a boolean expression: {expr!r}")


def _notification_state(workload: WorkloadAutomata, initial: int) -> int:
    """First branching state on the chain from *initial* (Sec. 5).

    Walk single-successor navigation states (ignoring self-loops); stop
    at the first state that branches (an AND/OR connective with several
    successors), at a NOT, at a terminal, or at a ⊤-edge — in the last
    case the state *owning* the ⊤-edge is the notification state, since
    its own match already implies the filter matched.
    """
    current = initial
    visited: set[int] = set()
    while True:
        if current in visited:  # defensive: self-recursive chains
            return current
        visited.add(current)
        state = workload.states[current]
        if state.kind is StateKind.NOT or state.is_terminal:
            return current
        successors: list[int] = list(state.eps)
        for label, targets in state.edges.items():
            successors.extend(t for t in targets if t != current)
        if state.top_labels:
            return current
        successors = [s for s in successors if s != current]
        if len(successors) != 1:
            return current
        current = successors[0]


def build_afa(workload: WorkloadAutomata, xpath_filter: XPathFilter) -> AFA:
    """Compile one filter into *workload*; returns its AFA record."""
    compiler = _Compiler(workload)
    initial = compiler.compile_filter(xpath_filter.path)
    afa = AFA(
        oid=xpath_filter.oid,
        initial=initial,
        source=xpath_filter.source or str(xpath_filter.path),
        state_sids=tuple(compiler.created),
    )
    afa_index = len(workload.afas)
    for sid in compiler.created:
        workload.states[sid].owner = afa_index
    workload.afas.append(afa)
    afa.notification = _notification_state(workload, initial)
    return afa


def build_workload_automata(filters: list[XPathFilter]) -> WorkloadAutomata:
    """Compile a whole workload (Step 1 of Sec. 3.2) and finalise the
    shared indexes (including the compiled bitmask tables).  Oids must
    be unique.

    Every state must end up owned by exactly one AFA: the set-based
    ``afa_states_of`` and the compiled per-filter owner masks both
    resolve a state's filter through ``state.owner``, and an ownerless
    state would silently strip the wrong filter under early
    notification.  The compiler guarantees ownership by construction;
    this guard turns any future violation into a loud error.
    """
    oids = [f.oid for f in filters]
    if len(set(oids)) != len(oids):
        raise WorkloadError("duplicate oids in workload")
    workload = WorkloadAutomata()
    for xpath_filter in filters:
        build_afa(workload, xpath_filter)
    orphans = [state.sid for state in workload.states if state.owner < 0]
    if orphans:
        raise WorkloadError(f"states without an owning AFA: {orphans[:8]}")
    return workload.finalize()
