"""The atomic predicate index of Sec. 2.

Basic operation: *given a data value v, find which predicates from a
given collection of atomic predicates are true on v*.  The paper uses a
binary search tree over the predicate constants; we implement the same
idea with sorted arrays and bisection:

- the distinct **numeric** constants split the number line into
  elementary intervals; every numeric predicate's truth is constant on
  each interval, so an interval id is a complete *key* for the numeric
  predicates;
- the distinct **string** constants do the same for lexicographic
  string comparisons;
- ``contains`` predicates are resolved with an Aho–Corasick automaton
  (the adaptation suggested in Sec. 2) and ``starts-with`` predicates
  directly; the set of satisfied pattern ids joins the key.

Two values with equal keys satisfy exactly the same predicates, so the
XPush machine can memoise ``t_value`` per key — that is precisely what
makes the machine's value transitions O(log m) + O(1) amortised.  The
per-key answer is computed on first touch (lazily, like XPush states)
and can be precomputed eagerly (Sec. 4, "State Precomputation").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Hashable, Iterable

from repro.afa.ahocorasick import AhoCorasick
from repro.afa.predicates import AtomicPredicate, canonical_value, parse_number

#: ``key_of`` memoises raw value -> key up to this many distinct values;
#: past it the memo is cleared (stream values are unbounded, keys are not).
KEY_CACHE_LIMIT = 16_384


class AtomicPredicateIndex:
    """Maps data values to the set of satisfied predicate payloads.

    Payloads are opaque hashable objects (the XPush machine stores AFA
    terminal states).  Call :meth:`add` repeatedly, then :meth:`freeze`,
    then :meth:`lookup` / :meth:`key_of`.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[AtomicPredicate, Hashable]] = []
        self._frozen = False
        self._numeric_constants: list[float] = []
        self._string_constants: list[str] = []
        self._contains: list[tuple[int, Hashable]] = []  # (pattern id, payload)
        self._starts_with: list[tuple[str, Hashable]] = []
        self._matcher: AhoCorasick | None = None
        self._cache: dict[Hashable, frozenset] = {}
        self._key_cache: dict[str, Hashable] = {}
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------

    def add(self, predicate: AtomicPredicate, payload: Hashable) -> None:
        if self._frozen:
            raise RuntimeError("index is frozen")
        self._entries.append((predicate, payload))

    def freeze(self) -> "AtomicPredicateIndex":
        """Build the search structures; the index becomes immutable."""
        if self._frozen:
            return self
        numeric: set[float] = set()
        strings: set[str] = set()
        contains_patterns: list[str] = []
        for predicate, payload in self._entries:
            if predicate.is_true:
                continue
            if predicate.op == "contains":
                self._contains.append((len(contains_patterns), payload))
                contains_patterns.append(predicate.constant)
            elif predicate.op == "starts-with":
                self._starts_with.append((predicate.constant, payload))
            elif predicate.is_numeric:
                numeric.add(float(predicate.constant))
            else:
                strings.add(predicate.constant)
        self._numeric_constants = sorted(numeric)
        self._string_constants = sorted(strings)
        if contains_patterns:
            self._matcher = AhoCorasick(contains_patterns)
        self._frozen = True
        return self

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def predicate_count(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def key_of(self, raw_value: str) -> Hashable:
        """Canonical key: values with equal keys satisfy the same
        predicates.  The key is cheap — O(log m) bisections plus one
        Aho–Corasick scan when ``contains`` predicates exist — and
        memoised per raw value: the machine asks once per text event,
        and stream values repeat far more often than keys change."""
        cached = self._key_cache.get(raw_value)
        if cached is not None:
            return cached
        if not self._frozen:
            raise RuntimeError("freeze() the index before lookups")
        value = canonical_value(raw_value)
        numeric_key: Hashable = None
        number = parse_number(value)
        if number is not None and self._numeric_constants:
            numeric_key = self._interval_key(self._numeric_constants, number)
        string_key: Hashable = None
        if self._string_constants:
            string_key = self._interval_key(self._string_constants, value)
        substring_key: Hashable = None
        if self._matcher is not None or self._starts_with:
            matched = self._matcher.match_set(value) if self._matcher else frozenset()
            prefixes = frozenset(
                i for i, (prefix, _) in enumerate(self._starts_with) if value.startswith(prefix)
            )
            substring_key = (matched, prefixes)
        key = (numeric_key, string_key, substring_key)
        if len(self._key_cache) >= KEY_CACHE_LIMIT:
            self._key_cache.clear()
        self._key_cache[raw_value] = key
        return key

    @staticmethod
    def _interval_key(constants: list, value) -> tuple[int, bool]:
        """Elementary-interval id: (insertion point, exactly-on-constant)."""
        position = bisect_left(constants, value)
        on_constant = position < len(constants) and constants[position] == value
        return (position, on_constant)

    def lookup(self, raw_value: str) -> frozenset:
        """All payloads whose predicate is true on *raw_value*."""
        key = self.key_of(raw_value)
        self.lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        value = canonical_value(raw_value)
        result = frozenset(
            payload for predicate, payload in self._entries if predicate.test(value)
        )
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------

    def precompute(self) -> int:
        """Eagerly materialise the answer for every elementary interval
        (Sec. 4 "State Precomputation").  Only exact for workloads
        without substring predicates; returns the number of cached keys.
        """
        if not self._frozen:
            raise RuntimeError("freeze() the index before precompute()")
        if self._matcher is not None or self._starts_with:
            return len(self._cache)  # substring keys are data-dependent
        for representative in self._representatives(self._numeric_constants, numeric=True):
            self.lookup(representative)
        for representative in self._representatives(self._string_constants, numeric=False):
            self.lookup(representative)
        # The "matches nothing" key for non-numeric values.
        self.lookup("\x00repro-no-such-value\x00")
        return len(self._cache)

    def precomputed_items(self) -> list[tuple[Hashable, frozenset]]:
        """Snapshot of the materialised (key, payload-set) answers.

        This is the supported way to enumerate the cache — e.g. to seed
        ``t_value`` states after :meth:`precompute` or after a machine
        table flush — without reaching into the private ``_cache``.
        """
        return list(self._cache.items())

    @staticmethod
    def _representatives(constants: list, numeric: bool) -> Iterable[str]:
        """One witness value inside every elementary interval.

        For numbers: below the least constant, each constant itself,
        each gap midpoint, above the greatest.  For strings: the empty
        string (below everything), each constant, and each constant's
        immediate successor ``c + "\\x00"`` (inside the gap above c, or
        equal to the next constant when the gap is empty)."""
        if not constants:
            return
        for i, constant in enumerate(constants):
            if numeric:
                yield repr(
                    (constants[i - 1] + constant) / 2.0 if i else constant - 1.0
                )
                yield repr(constant)
            else:
                yield constants[i - 1] + "\x00" if i else ""
                yield constant
        if numeric:
            yield repr(constants[-1] + 1.0)
        else:
            yield constants[-1] + "\x00"

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
