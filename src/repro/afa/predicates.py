"""Atomic predicates on data values (Sec. 2).

The fragment compares an XPath expression against a constant with one of
``= != < <= > >=`` over "a fixed, ordered domain V, which we will take
to be V = int or V = string"; the Sec. 2 extension adds ``starts-with``
and ``contains``.  This module is the *single* definition of comparison
semantics in the library: the reference evaluator, the atomic predicate
index (hence the XPush machine) and every baseline call
:func:`compare`, so they cannot disagree.

Value canonicalisation: XML text content is stripped of surrounding
whitespace before testing (``<b> 1 </b>`` satisfies ``b/text() = 1``,
as in the paper's running example); numeric constants are compared
numerically when the value parses as a number and are otherwise false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Constant = Union[int, float, str]

#: Relational operators, keyed by surface syntax.
RELATIONAL_OPS = ("=", "!=", "<", "<=", ">", ">=")
STRING_OPS = ("starts-with", "contains")


def canonical_value(raw: str) -> str:
    """Canonical form of a text/attribute value before predicate tests."""
    return raw.strip()


def parse_number(value: str) -> float | None:
    """Parse *value* as a number, or None when it is not numeric."""
    try:
        return float(value)
    except ValueError:
        return None


def _relational(left, op: str, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown relational operator {op!r}")


def compare(raw_value: str, op: str, constant: Constant) -> bool:
    """Truth of ``value op constant`` under the paper's semantics.

    - numeric constant: the value must parse as a number, then compare
      numerically;
    - string constant with a relational operator: lexicographic string
      comparison on the canonical value;
    - ``starts-with`` / ``contains``: substring tests (constant must be
      a string).
    """
    value = canonical_value(raw_value)
    if op in STRING_OPS:
        if not isinstance(constant, str):
            raise ValueError(f"{op} requires a string constant")
        if op == "starts-with":
            return value.startswith(constant)
        return constant in value
    if isinstance(constant, (int, float)):
        number = parse_number(value)
        if number is None:
            return False
        return _relational(number, op, float(constant))
    return _relational(value, op, constant)


@dataclass(frozen=True, slots=True)
class AtomicPredicate:
    """One atomic predicate ``op constant`` (e.g. ``> 2``, ``= "x"``).

    ``TRUE`` (the class attribute below) is the always-true predicate
    the paper assumes for queries without an explicit comparison.
    """

    op: str
    constant: Constant | None

    def __post_init__(self):
        if self.op == "true":
            return
        if self.op not in RELATIONAL_OPS + STRING_OPS:
            raise ValueError(f"unknown operator {self.op!r}")
        if self.constant is None:
            raise ValueError("comparison predicate requires a constant")

    @property
    def is_true(self) -> bool:
        return self.op == "true"

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.constant, (int, float))

    def test(self, raw_value: str) -> bool:
        """π_s(v): truth of this predicate on a data value."""
        if self.is_true:
            return True
        return compare(raw_value, self.op, self.constant)

    def __str__(self) -> str:
        if self.is_true:
            return "true()"
        if self.op in STRING_OPS:
            return f'{self.op}(·, "{self.constant}")'
        literal = f'"{self.constant}"' if isinstance(self.constant, str) else str(self.constant)
        return f"{self.op} {literal}"


# The singleton always-true predicate (π_s(v) = true for all v).
AtomicPredicate.TRUE = AtomicPredicate("true", None)
