"""Empirical predicate selectivity estimation.

Theorem 6.2's bounds are parameterised by σ, the probability that an
atomic predicate is true on a document.  The paper assumes a uniform σ
for the analysis; real workloads have heterogeneous selectivities
("the selectivity of the atomic predicates depends on the data set",
Sec. 7).  This module estimates them from a document sample, so the
Theorem 6.2 benchmarks can compare measured state counts against
bounds computed from *measured* selectivities rather than assumed
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Iterable, Sequence

from repro.xmlstream.dom import Document
from repro.xpath.analysis import _predicate_key
from repro.xpath.ast import BooleanExpr, Comparison, Exists, XPathFilter, iter_predicates
from repro.xpath.semantics import _RootNode, _truth


@dataclass(frozen=True)
class SelectivityReport:
    """Per-predicate and aggregate selectivities over a sample."""

    documents: int
    per_predicate: dict[tuple, float]

    @property
    def mean_selectivity(self) -> float:
        return mean(self.per_predicate.values()) if self.per_predicate else 0.0

    @property
    def median_selectivity(self) -> float:
        return median(self.per_predicate.values()) if self.per_predicate else 0.0

    @property
    def max_selectivity(self) -> float:
        return max(self.per_predicate.values(), default=0.0)

    def describe(self) -> str:
        return (
            f"{len(self.per_predicate)} distinct predicates over "
            f"{self.documents} documents: mean σ={self.mean_selectivity:.4f}, "
            f"median σ={self.median_selectivity:.4f}, "
            f"max σ={self.max_selectivity:.4f}"
        )


def _collect_atoms(filters: Iterable[XPathFilter]) -> dict[tuple, BooleanExpr]:
    atoms: dict[tuple, BooleanExpr] = {}
    for xpath_filter in filters:
        for step in xpath_filter.path.steps:
            for predicate in step.predicates:
                for atom in iter_predicates(predicate):
                    atoms.setdefault(_predicate_key(atom), atom)
    return atoms


def estimate_selectivities(
    filters: Sequence[XPathFilter], documents: Sequence[Document]
) -> SelectivityReport:
    """Fraction of sample documents on which each atomic predicate is
    true *somewhere* (evaluated from the document root, matching the
    Theorem 6.2 notion of a predicate being "true on a document")."""
    if not documents:
        raise ValueError("need at least one sample document")
    atoms = _collect_atoms(filters)
    counts = {key: 0 for key in atoms}
    for document in documents:
        root = _RootNode(document)
        for key, atom in atoms.items():
            if _satisfied_somewhere(atom, document, root):
                counts[key] += 1
    n = len(documents)
    return SelectivityReport(
        documents=n,
        per_predicate={key: count / n for key, count in counts.items()},
    )


def _satisfied_somewhere(atom: BooleanExpr, document: Document, root) -> bool:
    """True when some node of *document* satisfies the (relative) atom.

    Relative predicate paths are anchored at every element, mirroring
    how the atomic predicate index fires wherever the value occurs.
    """
    if isinstance(atom, (Comparison, Exists)):
        if _truth(atom, root):
            return True
        for node in document.root.iter_descendants():
            if _truth(atom, node):
                return True
        return False
    raise TypeError(f"not an atomic predicate: {atom!r}")
