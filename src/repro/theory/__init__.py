"""The theoretical analysis of Sec. 6.

- :mod:`repro.theory.independence` — subsumption / inconsistency /
  independence between AFA states, the independence graph, and the
  clique bound of **Theorem 6.1** ("the number of accessible states in
  the XPush machine is no larger than the number of cliques in the
  independence graph");
- :mod:`repro.theory.expected` — the closed-form expected-state-count
  bounds of **Theorem 6.2** for flat workloads, with and without the
  order optimisation, validated empirically by
  ``benchmarks/bench_theorem62.py``.
"""

from repro.theory.expected import (
    expected_states_ordered,
    expected_states_unordered,
)
from repro.theory.independence import (
    IndependenceAnalysis,
    Relation,
    count_cliques,
)

__all__ = [
    "IndependenceAnalysis",
    "Relation",
    "count_cliques",
    "expected_states_ordered",
    "expected_states_unordered",
]
