"""Independence graph and the clique bound (Theorem 6.1).

Definitions (Sec. 6, borrowed from Hoffmann & O'Donnell's tree pattern
matching): for AFA states s, s′

- s **subsumes** s′ (s ⇒ s′) when every node matched by s is matched
  by s′;
- s and s′ are **inconsistent** (s | s′) when no node matches both;
- otherwise — no subsumption either way and not inconsistent — they
  are **independent**.

Theorem 6.1: the number of accessible XPush states is at most the
number of cliques in the independence graph (each accessible state,
after dropping subsumed members, forms a clique).

Deciding the relations exactly is as hard as query containment, so this
module computes a *sound under-approximation* of subsumption and
inconsistency (and therefore an over-approximation of independence):

- terminal vs. terminal: exact, by elementary-interval analysis of the
  two atomic predicates (every truth pattern over the real line / the
  string order is witnessed by a finite candidate set);
- terminal vs. non-terminal: inconsistent — a terminal matches only
  data values, a navigation state only elements (the paper's "4 | s
  for every state s ≠ 13, since we assume … no mixed content");
- non-terminal vs. non-terminal: structural equivalence (identical
  subautomata match the same nodes — mutual subsumption), otherwise
  independent.

Sound claims keep the theorem's bound valid: every truly-independent
pair keeps its edge, so accessible states still map to cliques.
"""

from __future__ import annotations

import enum
import itertools
from typing import Hashable, Sequence

from repro.afa.automaton import AfaState, StateKind, WorkloadAutomata
from repro.afa.predicates import AtomicPredicate
from repro.errors import ReproError


class Relation(enum.Enum):
    EQUIVALENT = "equivalent"  # s ⇒ s' and s' ⇒ s
    SUBSUMES = "subsumes"  # s ⇒ s'
    SUBSUMED = "subsumed"  # s' ⇒ s
    INCONSISTENT = "inconsistent"  # s | s'
    INDEPENDENT = "independent"


# ----------------------------------------------------------------------
# Exact relations between atomic predicates
# ----------------------------------------------------------------------


def _numeric_witnesses(a: float, b: float) -> list[str]:
    lo, hi = min(a, b), max(a, b)
    points = [lo - 1.0, lo, (lo + hi) / 2.0 if lo != hi else lo + 0.5, hi, hi + 1.0]
    return [repr(p) for p in points]


def _string_witnesses(a: str, b: str) -> list[str]:
    lo, hi = min(a, b), max(a, b)
    return ["", lo, lo + "\x00", hi, hi + "\x00"]


def predicate_relation(p: AtomicPredicate, q: AtomicPredicate) -> Relation:
    """Exact relation between two relational atomic predicates; string
    operators (contains/starts-with) are conservatively independent
    unless identical."""
    if p == q:
        return Relation.EQUIVALENT
    if p.op in ("contains", "starts-with") or q.op in ("contains", "starts-with"):
        return Relation.INDEPENDENT
    if p.is_true or q.is_true:
        if p.is_true and q.is_true:
            return Relation.EQUIVALENT
        return Relation.SUBSUMED if p.is_true else Relation.SUBSUMES
    if p.is_numeric != q.is_numeric:
        # A numeric predicate is false on every non-numeric value and a
        # string predicate may hold on numerals too; the safe exact-ish
        # answer on the shared (numeric-literal) domain is undecided —
        # claim independence, which is always sound for the bound.
        return Relation.INDEPENDENT
    if p.is_numeric:
        witnesses = _numeric_witnesses(float(p.constant), float(q.constant))
    else:
        witnesses = _string_witnesses(p.constant, q.constant)
    p_only = q_only = both = neither = 0
    for value in witnesses:
        tp, tq = p.test(value), q.test(value)
        if tp and tq:
            both += 1
        elif tp:
            p_only += 1
        elif tq:
            q_only += 1
        else:
            neither += 1
    if both == 0:
        return Relation.INCONSISTENT
    if p_only == 0 and q_only == 0:
        return Relation.EQUIVALENT
    if p_only == 0:
        return Relation.SUBSUMES  # sat(p) ⊆ sat(q)
    if q_only == 0:
        return Relation.SUBSUMED
    return Relation.INDEPENDENT


# ----------------------------------------------------------------------
# Structural equivalence of non-terminal states
# ----------------------------------------------------------------------


def _structure_key(workload: WorkloadAutomata, sid: int, memo: dict[int, Hashable]) -> Hashable:
    """Hash-consing key: two states with equal keys match the same
    nodes (identical subautomata)."""
    known = memo.get(sid)
    if known is not None:
        return known
    memo[sid] = ("cycle", sid)  # self-loops via '*' handled below
    state = workload.states[sid]
    edge_keys = []
    for label in sorted(state.edges):
        targets = []
        for target in state.edges[label]:
            if target == sid:
                targets.append("self")
            else:
                targets.append(_structure_key(workload, target, memo))
        edge_keys.append((label, tuple(sorted(map(repr, targets)))))
    eps_keys = tuple(
        sorted(repr(_structure_key(workload, child, memo)) for child in state.eps)
    )
    key = (
        state.kind.name,
        repr(state.predicate) if state.predicate else None,
        tuple(edge_keys),
        eps_keys,
        tuple(sorted(state.top_labels)),
    )
    memo[sid] = key
    return key


# ----------------------------------------------------------------------
# The analysis object
# ----------------------------------------------------------------------


class IndependenceAnalysis:
    """Pairwise relations and the independence graph of a workload."""

    def __init__(self, workload: WorkloadAutomata):
        self.workload = workload
        self._structure: dict[int, Hashable] = {}
        for state in workload.states:
            _structure_key(workload, state.sid, self._structure)

    def relation(self, sid_a: int, sid_b: int) -> Relation:
        a = self.workload.states[sid_a]
        b = self.workload.states[sid_b]
        if a.is_terminal and b.is_terminal:
            return predicate_relation(a.predicate, b.predicate)
        if a.is_terminal or b.is_terminal:
            return Relation.INCONSISTENT  # data values vs. elements
        if self._structure[sid_a] == self._structure[sid_b]:
            return Relation.EQUIVALENT
        return Relation.INDEPENDENT

    def independent(self, sid_a: int, sid_b: int) -> bool:
        return self.relation(sid_a, sid_b) is Relation.INDEPENDENT

    def independence_graph(self) -> dict[int, set[int]]:
        """Adjacency sets over all AFA sids (vertices without edges
        included)."""
        sids = [s.sid for s in self.workload.states]
        adjacency: dict[int, set[int]] = {sid: set() for sid in sids}
        for sid_a, sid_b in itertools.combinations(sids, 2):
            if self.independent(sid_a, sid_b):
                adjacency[sid_a].add(sid_b)
                adjacency[sid_b].add(sid_a)
        return adjacency

    def clique_bound(self, limit: int = 10_000_000) -> int:
        """Theorem 6.1's bound: the number of cliques (including the
        empty clique, for q0) in the independence graph."""
        return count_cliques(self.independence_graph(), limit)

    def networkx_graph(self):
        """The independence graph as a networkx Graph (for notebooks /
        further analysis)."""
        import networkx as nx

        graph = nx.Graph()
        adjacency = self.independence_graph()
        graph.add_nodes_from(adjacency)
        for node, neighbours in adjacency.items():
            for other in neighbours:
                graph.add_edge(node, other)
        return graph


def count_cliques(adjacency: dict[int, set[int]], limit: int = 10_000_000) -> int:
    """Count *all* cliques of the graph, the empty clique included.

    Exponential in general — Theorem 6.1 is checked on small workloads
    only; raises :class:`ReproError` past *limit*.
    """
    nodes = sorted(adjacency)
    total = 1  # the empty clique (q0 = ∅ maps to it)

    def grow(candidates: Sequence[int]) -> int:
        nonlocal total
        count = 0
        for i, vertex in enumerate(candidates):
            total += 1
            if total > limit:
                raise ReproError(f"clique count exceeded {limit}")
            rest = [u for u in candidates[i + 1 :] if u in adjacency[vertex]]
            count += 1 + grow(rest)
        return count

    grow(nodes)
    return total
