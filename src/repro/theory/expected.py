"""Expected state counts for flat workloads (Theorem 6.2).

A *flat workload* is n queries of the form
``/a[b1/text()=v1 and … and bk/text()=vk]`` over a shared root label.
With every atomic predicate having the same selectivity σ ≪ 1/N on a
stream of N documents, the theorem bounds the expected number of lazy
XPush states:

1. without order optimisation: ``E[states] ≤ 1 + N·m·σ`` where m is
   the total number of atomic predicates in the workload;
2. with order optimisation: ``E[states] ≤ N·((1-σ^(k+1))/(1-σ))^n``
   with k atomic predicates per query.

The theorem's reading (checked by ``benchmarks/bench_theorem62.py``):
lower selectivity → fewer states; states grow linearly with N; and
under order optimisation, more branches per query (k up, n·k fixed)
→ *fewer* states.
"""

from __future__ import annotations

import math


def expected_states_unordered(documents: int, total_predicates: int, selectivity: float) -> float:
    """Theorem 6.2(1): bound without the order optimisation.

    Args:
        documents: N, the number of documents processed.
        total_predicates: m, distinct atomic predicates in the workload.
        selectivity: σ, per-predicate probability of being true on a
            document (assumed equal across predicates, σ ≪ 1/N).
    """
    _check(selectivity)
    return 1.0 + documents * total_predicates * selectivity


def expected_states_ordered(
    documents: int, queries: int, predicates_per_query: int, selectivity: float
) -> float:
    """Theorem 6.2(2): bound with the order optimisation.

    ``N · ((1 - σ^(k+1)) / (1 - σ))^n`` for n queries of exactly k
    ordered predicates each.
    """
    _check(selectivity)
    k = predicates_per_query
    base = (1.0 - selectivity ** (k + 1)) / (1.0 - selectivity)
    # Guard against float overflow for large n: work in log space.
    log_value = math.log(documents) + queries * math.log(base)
    if log_value > 700:  # exp would overflow; the bound is astronomically loose
        return math.inf
    return math.exp(log_value)


def ordered_bound_decreases_in_k(
    documents: int, total_branches: int, selectivity: float, ks: list[int]
) -> list[float]:
    """The Sec. 6 observation: with k·n = total_branches fixed, the
    ordered bound decreases as k grows.  Returns the bound per k."""
    out = []
    for k in ks:
        if total_branches % k:
            raise ValueError(f"total_branches={total_branches} not divisible by k={k}")
        out.append(
            expected_states_ordered(documents, total_branches // k, k, selectivity)
        )
    return out


def _check(selectivity: float) -> None:
    if not 0.0 < selectivity < 1.0:
        raise ValueError("selectivity must be in (0, 1)")
