"""Synthetic NASA dataset (substitute for the ADC export of Sec. 7).

Recursive DTD (``description`` nests), generation capped at depth 8 —
matching the paper's "NASA dataset has a recursive DTD, with maximum
document depth equal to 8".  The paper reports that its NASA results
were similar to Protein; the benchmarks accept either dataset.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.xmlstream.dom import Document
from repro.xmlstream.dtd import DTD
from repro.xmlstream.writer import document_to_xml
from repro.data.dtds import nasa_dtd
from repro.data.pools import PoolDrawer, integer_pool, synthetic_words

MAX_DEPTH = 8


def _build_pools(seed: int) -> dict[str, list[str]]:
    words = synthetic_words(300, seed + 100)
    names = synthetic_words(180, seed + 101, (2, 3))
    return {
        "title": [f"survey of {w}" for w in words[:120]],
        "altname": words[:80],
        "@type": ["ADC", "CDS", "brief"],
        "journal": [f"ApJ-{w}" for w in synthetic_words(40, seed + 102, (2, 2))],
        "@volume": integer_pool(1, 500, 120, seed + 103),
        "lastname": names,
        "initial": [f"{c}." for c in "ABCDEFGHIJKLMNOPQRSTUVWXYZ"],
        "year": integer_pool(1950, 2002, 53, seed + 104),
        "other": words[:50],
        "keyword": synthetic_words(70, seed + 105, (2, 3)),
        "@parentListURL": [f"/lists/{i}" for i in range(20)],
        "para": words,
        "tableLink": words[:30],
        "@sectionLinkURL": [f"#sec{i}" for i in range(30)],
        "name": names,
        "definition": words,
        "@unit": ["mag", "deg", "arcsec", "mJy", "km/s"],
        "creator": names,
        "date": [f"{y}-{m:02d}" for y in range(1990, 2003) for m in (1, 6)],
        "editor": names,
        "identifier": [f"ADC-{i:04d}" for i in range(800)],
        "@subject": ["astrometry", "photometry", "spectroscopy", "catalog", "survey"],
        "@xmlns": ["http://adc.example/ns"],
    }


class NasaDataset:
    """Seeded generator for the synthetic NASA stream (recursive DTD)."""

    name = "nasa"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.dtd: DTD = nasa_dtd()
        self.value_pool = _build_pools(seed)
        self._drawer = PoolDrawer(self.value_pool)

    def documents(self, count: int) -> Iterator[Document]:
        rng = random.Random(self.seed)
        for _ in range(count):
            yield self.dtd.generate(
                rng,
                self._drawer.text_for,
                max_depth=MAX_DEPTH,
                repeat_mean=1.5,
                optional_probability=0.5,
            )

    def stream_text(self, count: int, indent: int | None = None) -> str:
        return "".join(document_to_xml(doc, indent) for doc in self.documents(count))

    def stream_of_bytes(self, target_bytes: int) -> str:
        pieces: list[str] = []
        total = 0
        rng = random.Random(self.seed)
        while total < target_bytes:
            doc = self.dtd.generate(
                rng,
                self._drawer.text_for,
                max_depth=MAX_DEPTH,
                repeat_mean=1.5,
                optional_probability=0.5,
            )
            text = document_to_xml(doc)
            pieces.append(text)
            total += len(text.encode("utf-8"))
        return "".join(pieces)
