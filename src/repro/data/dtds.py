"""DTD definitions for the synthetic Protein and NASA datasets.

``protein_dtd()`` mimics the PIR Protein Sequence Database XML export:
**non-recursive**, element-nesting depth 7 along
``ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/lastname``,
with attributes on entries, features and summaries.

``nasa_dtd()`` mimics the NASA ADC astronomical dataset export:
**recursive** (``description`` can contain ``description``), depth
capped at 8 by the generator.
"""

from __future__ import annotations

from repro.xmlstream.dtd import (
    DTD,
    AttributeDecl,
    ContentParticle,
    ElementDecl,
    EMPTY,
    PCDATA,
    choice,
    elem,
    seq,
)


def _leaf(name: str, *attrs: AttributeDecl) -> ElementDecl:
    return ElementDecl(name, PCDATA, tuple(attrs))


def protein_dtd() -> DTD:
    """Non-recursive DTD, max element depth 7 (paper's Protein data)."""
    declarations = [
        ElementDecl("ProteinDatabase", seq(elem("ProteinEntry", "+"))),
        ElementDecl(
            "ProteinEntry",
            seq(
                elem("header"),
                elem("protein"),
                elem("organism"),
                elem("reference", "+"),
                elem("genetics", "?"),
                elem("classification", "?"),
                elem("keywords", "?"),
                elem("feature", "*"),
                elem("summary"),
                elem("sequence"),
            ),
            (AttributeDecl("id", required=True),),
        ),
        ElementDecl(
            "header",
            seq(elem("uid"), elem("accession", "+"), elem("created", "?")),
        ),
        _leaf("uid"),
        _leaf("accession"),
        _leaf("created", AttributeDecl("date", required=True)),
        ElementDecl("protein", seq(elem("name"), elem("source", "?"))),
        _leaf("name"),
        _leaf("source"),
        ElementDecl(
            "organism",
            seq(elem("formal"), elem("common", "?"), elem("variety", "?")),
        ),
        _leaf("formal"),
        _leaf("common"),
        _leaf("variety"),
        ElementDecl("reference", seq(elem("refinfo"), elem("accinfo", "?"))),
        ElementDecl(
            "refinfo",
            seq(elem("authors"), elem("citation"), elem("title", "?"), elem("year")),
            (AttributeDecl("refid", required=True),),
        ),
        ElementDecl("authors", seq(elem("author", "+"))),
        ElementDecl("author", seq(elem("lastname"), elem("initials", "?"))),
        _leaf("lastname"),
        _leaf("initials"),
        _leaf("citation", AttributeDecl("volume"), AttributeDecl("pages")),
        _leaf("title"),
        _leaf("year"),
        ElementDecl("accinfo", seq(elem("mol-type", "?"), elem("seq-spec", "?"))),
        _leaf("mol-type"),
        _leaf("seq-spec"),
        ElementDecl(
            "genetics",
            seq(elem("gene", "+"), elem("codon", "?")),
            (AttributeDecl("intron"),),
        ),
        _leaf("gene"),
        _leaf("codon"),
        ElementDecl("classification", seq(elem("superfamily", "+"))),
        _leaf("superfamily"),
        ElementDecl("keywords", seq(elem("keyword", "+"))),
        _leaf("keyword"),
        ElementDecl(
            "feature",
            seq(elem("description", "?"), elem("feature-spec")),
            (AttributeDecl("feature-type", required=True),),
        ),
        _leaf("description"),
        _leaf("feature-spec"),
        _leaf(
            "summary",
            AttributeDecl("length", required=True),
            AttributeDecl("type"),
        ),
        _leaf("sequence"),
    ]
    return DTD("ProteinDatabase", declarations)


def nasa_dtd() -> DTD:
    """Recursive DTD, generation capped at depth 8 (paper's NASA data).

    The recursion is ``description → para* , description?`` plus
    ``tableHead → field+`` with fields owning nested descriptions.
    """
    declarations = [
        ElementDecl(
            "datasets",
            seq(elem("dataset", "+")),
        ),
        ElementDecl(
            "dataset",
            seq(
                elem("title"),
                elem("altname", "*"),
                elem("reference", "*"),
                elem("keywords", "?"),
                elem("descriptions", "?"),
                elem("tableHead", "?"),
                elem("history", "?"),
                elem("identifier"),
            ),
            (AttributeDecl("subject", required=True), AttributeDecl("xmlns")),
        ),
        _leaf("title"),
        _leaf("altname", AttributeDecl("type")),
        ElementDecl(
            "reference",
            seq(elem("source", "?"), elem("other", "?")),
        ),
        ElementDecl("source", seq(elem("journal", "?"), elem("author", "*"), elem("year", "?"))),
        _leaf("journal", AttributeDecl("volume")),
        ElementDecl("author", seq(elem("lastname"), elem("initial", "?"))),
        _leaf("lastname"),
        _leaf("initial"),
        _leaf("year"),
        _leaf("other"),
        ElementDecl("keywords", seq(elem("keyword", "+")), (AttributeDecl("parentListURL"),)),
        _leaf("keyword"),
        ElementDecl("descriptions", seq(elem("description", "+"))),
        ElementDecl(
            "description",
            seq(elem("para", "*"), elem("description", "?")),  # recursive
        ),
        _leaf("para"),
        ElementDecl("tableHead", seq(elem("tableLinks", "?"), elem("field", "+"))),
        ElementDecl("tableLinks", seq(elem("tableLink", "+"))),
        _leaf("tableLink", AttributeDecl("sectionLinkURL")),
        ElementDecl(
            "field",
            seq(elem("name"), elem("definition", "?")),
            (AttributeDecl("unit"),),
        ),
        _leaf("name"),
        _leaf("definition"),
        ElementDecl(
            "history",
            seq(elem("creator", "?"), elem("revision", "*")),
        ),
        _leaf("creator"),
        ElementDecl(
            "revision",
            seq(elem("date"), elem("editor"), elem("para", "?")),
        ),
        _leaf("date"),
        _leaf("editor"),
        _leaf("identifier"),
    ]
    return DTD("datasets", declarations)
