"""Deterministic value-pool machinery shared by the synthetic datasets.

A *value pool* maps a leaf element label or ``@name`` attribute label to
the finite list of values the data generator draws from.  Finite pools
matter twice: they give atomic predicates realistic, controllable
selectivity (Theorem 6.2's σ), and they let the query generator pick
constants guaranteed to occur in the data — the paper's requirement
that "each predicate is true on at least some XML document".
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

_SYLLABLES = (
    "an", "ar", "bel", "cor", "dan", "el", "fer", "gal", "hu", "in",
    "jor", "kel", "lor", "mar", "nor", "or", "pel", "qui", "ral", "sol",
    "tan", "ur", "vel", "wen", "xan", "yor", "zel",
)


def synthetic_words(count: int, seed: int, syllables: tuple[int, int] = (2, 4)) -> list[str]:
    """*count* pronounceable pseudo-words, deterministically from *seed*."""
    rng = random.Random(seed)
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < count:
        word = "".join(
            rng.choice(_SYLLABLES) for _ in range(rng.randint(*syllables))
        )
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def integer_pool(low: int, high: int, count: int, seed: int) -> list[str]:
    """*count* distinct integers in [low, high], as strings."""
    rng = random.Random(seed)
    span = high - low + 1
    if count >= span:
        return [str(v) for v in range(low, high + 1)]
    values = rng.sample(range(low, high + 1), count)
    return [str(v) for v in sorted(values)]


class PoolDrawer:
    """Draws generation values from pools with a Zipf-ish skew.

    Real text values are not uniform; a mild skew makes predicate
    selectivities heterogeneous, like the paper's real datasets.
    """

    def __init__(self, pools: Mapping[str, Sequence[str]], skew: float = 1.2):
        self.pools = {label: list(values) for label, values in pools.items()}
        self.skew = skew

    def draw(self, label: str, rng: random.Random) -> str:
        pool = self.pools.get(label)
        if not pool:
            return "0"
        # Power-law index: small indexes are proportionally more likely.
        u = rng.random()
        index = int(len(pool) * (u ** self.skew))
        return pool[min(index, len(pool) - 1)]

    def text_for(self, label: str, rng: random.Random) -> str:
        """Adapter matching the DTD generator's ``text_for`` callback."""
        return self.draw(label, rng)
