"""Synthetic Protein dataset (substitute for the PIR export of Sec. 7).

Structure comes from :func:`repro.data.dtds.protein_dtd` (non-recursive,
max depth 7); values come from seeded pools sized to give predicates
low, heterogeneous selectivities (the regime of Theorem 6.2).  The
stream is a sequence of single-entry ``ProteinDatabase`` documents —
XML packets, as in the message-broker setting of the paper.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.xmlstream.dom import Document
from repro.xmlstream.dtd import DTD
from repro.xmlstream.writer import document_to_xml
from repro.data.dtds import protein_dtd
from repro.data.pools import PoolDrawer, integer_pool, synthetic_words


def _build_pools(seed: int) -> dict[str, list[str]]:
    words = synthetic_words(400, seed)
    names = synthetic_words(240, seed + 1, (2, 3))
    organisms = synthetic_words(80, seed + 2, (3, 4))
    keywords = synthetic_words(60, seed + 3, (2, 3))
    journals = [f"J-{w}" for w in synthetic_words(50, seed + 4, (2, 2))]
    rng = random.Random(seed + 5)
    sequences = [
        "".join(rng.choice("ACDEFGHIKLMNPQRSTVWY") for _ in range(rng.randint(30, 120)))
        for _ in range(200)
    ]
    return {
        "uid": [f"P{i:05d}" for i in range(500)],
        "accession": [f"A{i:05d}" for i in range(700)],
        "@date": [f"{d:02d}-{m:02d}-{y}" for d, m, y in
                  zip(range(1, 29), list(range(1, 13)) * 3, range(1975, 2003))],
        "name": names,
        "source": organisms,
        "formal": organisms,
        "common": organisms,
        "variety": words[:60],
        "lastname": names,
        "initials": [f"{c}." for c in "ABCDEFGHIJKLMNOPQRSTUVWXYZ"],
        "citation": journals,
        "@volume": integer_pool(1, 300, 150, seed + 6),
        "@pages": integer_pool(1, 2000, 200, seed + 7),
        "title": words,
        "year": integer_pool(1970, 2002, 33, seed + 8),
        "mol-type": ["DNA", "mRNA", "protein", "rRNA"],
        "seq-spec": integer_pool(1, 900, 120, seed + 9),
        "gene": names,
        "codon": ["AUG", "UAA", "UAG", "UGA", "GCU", "UGG"],
        "superfamily": words[:100],
        "keyword": keywords,
        "description": words,
        "feature-spec": integer_pool(1, 500, 100, seed + 10),
        "@feature-type": ["domain", "binding-site", "modified-site", "disulfide-bond", "product"],
        "summary": words[:40],
        "@length": integer_pool(50, 3000, 250, seed + 11),
        "@type": ["complete", "fragment", "precursor"],
        "sequence": sequences,
        "@id": [f"PE{i:06d}" for i in range(2000)],
        "@refid": integer_pool(1, 999, 300, seed + 12),
        "@intron": ["yes", "no"],
        "created": [f"rel-{i}" for i in range(40)],
    }


class ProteinDataset:
    """Seeded generator for the synthetic Protein stream.

    >>> ds = ProteinDataset(seed=7)
    >>> docs = list(ds.documents(3))
    >>> len(docs)
    3
    """

    name = "protein"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.dtd: DTD = protein_dtd()
        self.value_pool = _build_pools(seed)
        self._drawer = PoolDrawer(self.value_pool)

    def documents(self, count: int) -> Iterator[Document]:
        """Yield *count* documents (one ProteinEntry packet each)."""
        rng = random.Random(self.seed)
        for _ in range(count):
            yield self.dtd.generate(
                rng,
                self._drawer.text_for,
                repeat_mean=1.6,
                optional_probability=0.55,
            )

    def stream_text(self, count: int, indent: int | None = None) -> str:
        """*count* documents concatenated to XML text (the wire format)."""
        return "".join(document_to_xml(doc, indent) for doc in self.documents(count))

    def stream_of_bytes(self, target_bytes: int) -> str:
        """A stream of at least *target_bytes* UTF-8 bytes."""
        pieces: list[str] = []
        total = 0
        rng = random.Random(self.seed)
        while total < target_bytes:
            doc = self.dtd.generate(
                rng, self._drawer.text_for, repeat_mean=1.6, optional_probability=0.55
            )
            text = document_to_xml(doc)
            pieces.append(text)
            total += len(text.encode("utf-8"))
        return "".join(pieces)
