"""Synthetic datasets standing in for the paper's Protein and NASA data.

Sec. 7 runs on a 9.12 MB fragment of the PIR Protein dataset
(non-recursive DTD, maximum document depth 7) and on the NASA ADC
dataset (recursive DTD, maximum depth 8).  Neither is available
offline, so this package generates structurally equivalent synthetic
streams: same depth/recursion profile, realistic fan-out and value
distributions, and — crucially for the experiments — *value pools* the
query generator draws predicate constants from, so every generated
predicate is satisfiable on the data (exactly how the paper's modified
YFilter generator worked).  Everything is seeded and deterministic.
"""

from repro.data.auction import AuctionDataset, auction_dtd
from repro.data.dtds import nasa_dtd, protein_dtd
from repro.data.nasa import NasaDataset
from repro.data.protein import ProteinDataset

__all__ = [
    "AuctionDataset",
    "NasaDataset",
    "ProteinDataset",
    "auction_dtd",
    "nasa_dtd",
    "protein_dtd",
]
