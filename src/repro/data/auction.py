"""Synthetic auction-site dataset (XMark-flavoured).

A third dataset beyond the paper's two, with a deliberately different
stress profile: deeper recursion than NASA (nested ``description`` via
``parlist``/``listitem``), attribute-heavy elements, and hub elements
(``item``) referenced from several contexts.  Used by the differential
tests to exercise the machine on shapes the Protein/NASA generators
rarely produce; not part of the paper's evaluation.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.xmlstream.dom import Document
from repro.xmlstream.dtd import (
    DTD,
    AttributeDecl,
    ElementDecl,
    PCDATA,
    choice,
    elem,
    seq,
)
from repro.xmlstream.writer import document_to_xml
from repro.data.pools import PoolDrawer, integer_pool, synthetic_words

MAX_DEPTH = 10


def auction_dtd() -> DTD:
    """Recursive, attribute-heavy DTD (XMark-like)."""
    declarations = [
        ElementDecl("site", seq(elem("regions"), elem("people"), elem("auctions"))),
        ElementDecl("regions", seq(elem("region", "+"))),
        ElementDecl(
            "region",
            seq(elem("item", "*")),
            (AttributeDecl("name", required=True),),
        ),
        ElementDecl(
            "item",
            seq(
                elem("name"),
                elem("payment", "?"),
                elem("description", "?"),
                elem("mailbox", "?"),
            ),
            (AttributeDecl("id", required=True), AttributeDecl("featured")),
        ),
        ElementDecl("name", PCDATA),
        ElementDecl("payment", PCDATA),
        # The recursion: description → (text | parlist), parlist →
        # listitem+, listitem → (text | parlist).
        ElementDecl("description", choice(elem("text"), elem("parlist"))),
        ElementDecl("parlist", seq(elem("listitem", "+"))),
        ElementDecl("listitem", choice(elem("text"), elem("parlist"))),
        ElementDecl("text", PCDATA),
        ElementDecl("mailbox", seq(elem("mail", "*"))),
        ElementDecl("mail", seq(elem("from"), elem("date"), elem("text"))),
        ElementDecl("from", PCDATA),
        ElementDecl("date", PCDATA),
        ElementDecl("people", seq(elem("person", "*"))),
        ElementDecl(
            "person",
            seq(elem("name"), elem("emailaddress", "?"), elem("profile", "?")),
            (AttributeDecl("id", required=True),),
        ),
        ElementDecl("emailaddress", PCDATA),
        ElementDecl(
            "profile",
            seq(elem("interest", "*"), elem("age", "?")),
            (AttributeDecl("income"),),
        ),
        ElementDecl("interest", PCDATA, (AttributeDecl("category", required=True),)),
        ElementDecl("age", PCDATA),
        ElementDecl("auctions", seq(elem("auction", "*"))),
        ElementDecl(
            "auction",
            seq(elem("current"), elem("bidder", "*")),
            (AttributeDecl("open", required=True),),
        ),
        ElementDecl("current", PCDATA),
        ElementDecl("bidder", seq(elem("date"), elem("increase"))),
        ElementDecl("increase", PCDATA),
    ]
    return DTD("site", declarations)


def _build_pools(seed: int) -> dict[str, list[str]]:
    words = synthetic_words(250, seed + 300)
    names = synthetic_words(150, seed + 301, (2, 3))
    return {
        "@name": ["africa", "asia", "australia", "europe", "namerica", "samerica"],
        "@id": [f"i{i:05d}" for i in range(1500)],
        "@featured": ["yes", "no"],
        "name": names,
        "payment": ["cash", "check", "wire", "card"],
        "text": words,
        "from": names,
        "date": [f"2002-{m:02d}-{d:02d}" for m in range(1, 13) for d in (3, 17)],
        "emailaddress": [f"{w}@example.net" for w in names[:80]],
        "@income": integer_pool(10_000, 120_000, 100, seed + 302),
        "@category": [f"c{i}" for i in range(25)],
        "age": integer_pool(18, 80, 45, seed + 303),
        "@open": ["yes", "no"],
        "current": integer_pool(1, 5000, 300, seed + 304),
        "increase": integer_pool(1, 250, 80, seed + 305),
    }


class AuctionDataset:
    """Seeded generator for the auction stream (deep recursion)."""

    name = "auction"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.dtd = auction_dtd()
        self.value_pool = _build_pools(seed)
        self._drawer = PoolDrawer(self.value_pool)

    def documents(self, count: int) -> Iterator[Document]:
        rng = random.Random(self.seed)
        for _ in range(count):
            yield self.dtd.generate(
                rng,
                self._drawer.text_for,
                max_depth=MAX_DEPTH,
                repeat_mean=1.6,
                optional_probability=0.55,
            )

    def stream_text(self, count: int, indent: int | None = None) -> str:
        return "".join(document_to_xml(d, indent) for d in self.documents(count))

    def stream_of_bytes(self, target_bytes: int) -> str:
        pieces: list[str] = []
        total = 0
        rng = random.Random(self.seed)
        while total < target_bytes:
            doc = self.dtd.generate(
                rng,
                self._drawer.text_for,
                max_depth=MAX_DEPTH,
                repeat_mean=1.6,
                optional_probability=0.55,
            )
            text = document_to_xml(doc)
            pieces.append(text)
            total += len(text.encode("utf-8"))
        return "".join(pieces)
