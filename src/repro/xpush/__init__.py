"""The XPush Machine (Sec. 3-5): the paper's primary contribution.

A single deterministic pushdown automaton that evaluates an entire
workload of XPath filters over a SAX stream, processing each event in
O(1) amortised time.  States are *sets of AFA states* (sets of matched
subqueries), interned and memoised — this is what eliminates redundant
work across common subexpressions **and common predicates**.

- :class:`repro.xpush.machine.XPushMachine` — the lazy machine with all
  four optimisations of Sec. 5 (top-down pruning, order optimisation,
  early notification, training);
- :class:`repro.xpush.options.XPushOptions` — optimisation switches and
  the named variants used in the paper's figures;
- :mod:`repro.xpush.eager` — the eager bottom-up construction of
  Sec. 3.2 with accessible-state pruning (small workloads only);
- :mod:`repro.xpush.training` — training-document generation;
- :mod:`repro.xpush.stats` — the counters behind Figs. 5-11.
"""

from repro.xpush.layered import LayeredFilterEngine
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions, VARIANTS, variant_options
from repro.xpush.persist import load_workload, save_workload
from repro.xpush.stats import MachineStats
from repro.xpush.trace import render_trace, trace_document
from repro.xpush.training import training_documents, training_stream

__all__ = [
    "LayeredFilterEngine",
    "load_workload",
    "render_trace",
    "save_workload",
    "trace_document",
    "MachineStats",
    "VARIANTS",
    "XPushMachine",
    "XPushOptions",
    "training_documents",
    "training_stream",
    "variant_options",
]
