"""Execution tracing: the Fig. 3 trace table for the lazy machine.

The paper illustrates the machine with a trace showing, after every
event, the current bottom-up state and the stack.  This module wraps an
:class:`~repro.xpush.machine.XPushMachine` and records exactly that —
invaluable when debugging a filter that "should have" matched, and used
by the tests to check the machine against the paper's published trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlstream.dom import Document
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    events_of_document,
)
from repro.xpush.machine import XPushMachine


@dataclass(frozen=True)
class TraceRow:
    """State of the machine after one event."""

    event: str  # e.g. 'startElement(a)', 'text(1)'
    state_sids: tuple[int, ...]  # current bottom-up state (AFA sids)
    stack_sids: tuple[tuple[int, ...], ...]  # bottom-up stack, bottom first
    enabled: int | None  # |enabled set| under top-down pruning
    accepts: tuple[str, ...]  # t_accept of the current state

    def render(self) -> str:
        state = "{" + ",".join(map(str, self.state_sids)) + "}"
        stack = " ".join("{" + ",".join(map(str, sids)) + "}" for sids in self.stack_sids)
        suffix = f"  accepts={','.join(self.accepts)}" if self.accepts else ""
        return f"{self.event:<24} {state:<24} stack: {stack}{suffix}"


def _describe(event: Event) -> str:
    kind = type(event)
    if kind is StartElement:
        return f"startElement({event.label})"
    if kind is Text:
        return f"text({event.value.strip()})"
    if kind is EndElement:
        return f"endElement({event.label})"
    if kind is StartDocument:
        return "startDocument()"
    return "endDocument()"


def trace_document(machine: XPushMachine, document: Document) -> tuple[frozenset[str], list[TraceRow]]:
    """Run *document* through *machine*, recording a row per event.

    Returns (accepted oids, trace rows).  The machine's state store and
    statistics are updated as in a normal run.
    """
    rows: list[TraceRow] = []
    accepted: frozenset[str] = frozenset()
    for event in events_of_document(document):
        kind = type(event)
        if kind is StartElement:
            machine.start_element(event.label)
        elif kind is Text:
            machine.text(event.value)
        elif kind is EndElement:
            machine.end_element(event.label)
        elif kind is StartDocument:
            machine.start_document()
        else:
            accepted = machine.end_document()
        qb = machine._qb
        qt = machine._qt
        rows.append(
            TraceRow(
                event=_describe(event),
                state_sids=qb.sids,
                stack_sids=tuple(
                    entry[1].sids
                    for entry in machine._stack[: machine._sp]
                    if entry is not None
                ),
                enabled=len(qt.sids) if qt.sids is not None else None,
                accepts=tuple(sorted(qb.accepts)),
            )
        )
    return accepted, rows


def render_trace(rows: list[TraceRow]) -> str:
    """The whole trace as printable text (one row per event)."""
    return "\n".join(row.render() for row in rows)
