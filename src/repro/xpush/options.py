"""Optimisation switches for the XPush machine (Sec. 5).

The four heuristics of Sec. 5 compose freely, with two dependencies
the paper states and we enforce:

- **early notification** requires **top-down pruning** ("for this
  technique to be correct we must turn on top-down pruning") and
  implies the pop/top-down intersection that makes ``//`` safe;
- the **order optimisation** needs a DTD to extract the sibling order
  from (pass it to the machine).

``VARIANTS`` names the series plotted in Figs. 5-7 and 9-11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import OptionsError

#: State-set representations the machine can run with.
RUNTIMES = ("bitmask", "codegen", "sets")

#: Memory-management policies applied when ``max_memory_bytes`` is crossed.
EVICTION_POLICIES = ("clock", "flush")

#: Schema-specialization behaviours (repro.afa.schema).  ``"off"``
#: ignores the DTD for pruning; ``"trust"`` runs the pruned tables
#: assuming conforming input; ``"validate"`` checks the pruning
#: assumptions per event and falls back to the unpruned tables for a
#: non-conforming document instead of mis-answering.
SCHEMA_MODES = ("off", "trust", "validate")


@dataclass(frozen=True)
class XPushOptions:
    """Which Sec. 5 optimisations the machine applies.

    Attributes:
        top_down: top-down pruning — the machine tracks the set of
            *enabled* AFA states per node and starts bottom-up
            computation only at enabled branches.
        order: order optimisation — ``t_badd`` drops a state whose
            DTD-mandated preceding siblings have not matched.
        early: early notification — report a filter as soon as its
            first branching AFA state matches, and strip that filter's
            states from subsequent XPush states.
        train: run the machine over workload-derived training documents
            before real data (Sec. 5, "Training the XPush Machine").
        precompute_values: eagerly materialise the atomic predicate
            index answers / ``t_value`` states (Sec. 4, "State
            Precomputation").  The paper precomputes these in the basic
            machine but cannot when top-down pruning is on (the Sec. 7
            discussion of the TD-only series); we follow that rule at
            machine construction.
        runtime: state-set representation the machine computes lazy
            transitions with.  ``"bitmask"`` (default) uses the
            compiled integer-bitmask tables built at workload
            ``finalize()`` — every cold-path set operation is a
            single-int bitwise op and states intern by their mask int.
            ``"codegen"`` goes one step further and runs transitions
            through straight-line Python compiled per workload at first
            use (:mod:`repro.afa.codegen`): per-label push/pop handlers
            with the mask tables inlined as int literals and dead
            branches elided.  ``"sets"`` is the frozenset/tuple
            reference implementation, kept as the executable spec the
            compiled runtimes are differentially tested against.
            Answers are identical by construction (and by test); this
            is purely a speed/memory representation knob.
        codegen_max_handlers: upper bound on the number of functions
            the ``"codegen"`` runtime may generate for one workload
            (roughly three per distinct label).  A workload exceeding
            the bound falls back to the bitmask runtime with a single
            warning — never an error — so pathological label alphabets
            cannot explode compile time or code size.  Ignored by the
            other runtimes.
        max_states: memory management for unbounded streams (Theorem
            6.2 shows states grow linearly with the number of
            documents; Sec. 6: "we need some form of memory management
            in order to process infinite streams").  When the store
            exceeds this many bottom-up states at a document boundary,
            all states and tables are flushed — the machine "can be
            deleted when we run out of memory and recomputed later"
            (the cache view of Sec. 7).  None = unbounded.  This is the
            blunt escape hatch; prefer ``max_memory_bytes`` for
            long-running services.
        max_memory_bytes: the high watermark of the incremental memory
            manager.  The store keeps a byte-level estimate of resident
            state and memo-table memory; when it exceeds this bound at
            a document boundary, the *eviction* policy runs until the
            low watermark (80% of the bound) is reached.  None =
            unbounded.
        eviction: what to do when ``max_memory_bytes`` is crossed.
            ``"clock"`` (default) runs a second-chance sweep: memo
            entries whose owning state was not referenced since the
            last sweep are dropped, then states no longer reachable
            from any table, register or intern root are
            garbage-collected — cold entries go, the hot working set
            (and its hit ratio) survives.  ``"flush"`` is the paper's
            brute-force fallback: drop every state and table.
        schema_mode: schema-aware specialization of the compiled
            runtimes (:mod:`repro.afa.schema`).  ``"off"`` (default)
            builds the tables from the workload alone.  ``"trust"``
            prunes the AFA against the machine's DTD at construction —
            impossible label edges deleted, forward-unreachable states
            stripped, per-element push rows materialised, and (for
            non-recursive DTDs) the element stack preallocated to the
            derived depth bound — and *assumes* input conforms; answers
            on non-conforming input may differ from the unpruned
            machine's.  ``"validate"`` runs the same pruned tables but
            checks the two pruning assumptions (producible labels,
            depth bound) on every event, replaying the current document
            into an unpruned fallback machine on the first violation —
            never a wrong answer, at the cost of a per-event check.
            Requires a DTD; the ``"sets"`` reference runtime ignores it.
        retain_results: append each document's answer to the machine's
            ``results()`` list.  True (default) suits batch use;
            long-running services driven by ``on_result`` or the
            return value of ``filter_stream`` set False so an infinite
            stream does not accumulate one frozenset per document
            forever.
    """

    top_down: bool = False
    order: bool = False
    early: bool = False
    train: bool = False
    precompute_values: bool = True
    runtime: str = "bitmask"
    codegen_max_handlers: int = 4096
    schema_mode: str = "off"
    max_states: int | None = None
    max_memory_bytes: int | None = None
    eviction: str = "clock"
    retain_results: bool = True

    def __post_init__(self):
        if self.early and not self.top_down:
            raise OptionsError("early notification requires top-down pruning (Sec. 5)")
        if self.runtime not in RUNTIMES:
            raise OptionsError(f"unknown runtime {self.runtime!r}; known: {sorted(RUNTIMES)}")
        if self.codegen_max_handlers < 1:
            raise OptionsError("codegen_max_handlers must be positive")
        if self.schema_mode not in SCHEMA_MODES:
            raise OptionsError(
                f"unknown schema_mode {self.schema_mode!r}; "
                f"known: {sorted(SCHEMA_MODES)}"
            )
        if self.max_states is not None and self.max_states < 1:
            raise OptionsError("max_states must be positive")
        if self.max_memory_bytes is not None and self.max_memory_bytes < 1:
            raise OptionsError("max_memory_bytes must be positive")
        if self.eviction not in EVICTION_POLICIES:
            raise OptionsError(
                f"unknown eviction policy {self.eviction!r}; "
                f"known: {sorted(EVICTION_POLICIES)}"
            )

    def describe(self) -> str:
        parts = [
            name
            for flag, name in [
                (self.top_down, "top-down"),
                (self.order, "order"),
                (self.early, "early"),
                (self.train, "train"),
            ]
            if flag
        ]
        described = "+".join(parts) if parts else "basic"
        if self.runtime != "bitmask":
            described += f"[{self.runtime}]"
        if self.schema_mode != "off":
            described += f"[schema:{self.schema_mode}]"
        return described


#: The named machine variants used as series in the paper's figures.
VARIANTS: dict[str, XPushOptions] = {
    "basic": XPushOptions(),
    "TD": XPushOptions(top_down=True, precompute_values=False),
    "order": XPushOptions(order=True),
    "TD-order": XPushOptions(top_down=True, order=True, precompute_values=False),
    "TD-train": XPushOptions(top_down=True, train=True, precompute_values=False),
    "TD-order-train": XPushOptions(top_down=True, order=True, train=True, precompute_values=False),
    "TD-order-early-train": XPushOptions(
        top_down=True, order=True, early=True, train=True, precompute_values=False
    ),
}


def variant_options(name: str) -> XPushOptions:
    """Options for a named variant (see :data:`VARIANTS`)."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise OptionsError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}") from None


def with_training(options: XPushOptions, train: bool = True) -> XPushOptions:
    return replace(options, train=train)
