"""The eager bottom-up XPush machine (Sec. 3.2).

Computes *all* accessible states up front — exactly the construction of
Example 3.2/3.4, which yields the 22-state machine of Fig. 3 for the
running example.  Accessibility is closed under:

- ``t_value`` for every elementary value class of the predicate index;
- ``t_pop`` for every workload label (plus an "any other" element and
  attribute label, the ``*``/``@*`` fallback rows of Fig. 3);
- ``t_badd`` over pairs (any state without terminal leaves, any
  ``t_pop`` result) — the paper leaves rows for leaf-containing states
  undefined ("assuming no mixed data in the XML documents").

This is exponential in the worst case (the reason the runtime machine
is lazy), so it guards with ``max_states``; it exists for small
workloads, for the golden-trace tests, and to measure how much larger
the eager machine is than the lazily-materialised one.
"""

from __future__ import annotations

from repro.afa.automaton import WorkloadAutomata
from repro.afa.build import build_workload_automata
from repro.afa.index import AtomicPredicateIndex
from repro.errors import MixedContentError, ReproError, WorkloadError
from repro.xmlstream.dom import Document
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
    events_of_document,
)
from repro.xpath.ast import XPathFilter


class BudgetExceeded(ReproError):
    """Raised when the eager construction exceeds its state budget."""


class EagerXPushMachine:
    """Fully materialised XPush machine for a (small) workload."""

    def __init__(self, filters: list[XPathFilter], max_states: int = 50_000):
        self.workload: WorkloadAutomata = build_workload_automata(filters)
        self.max_states = max_states
        workload = self.workload

        self.index = AtomicPredicateIndex()
        for sid in workload.terminals:
            self.index.add(workload.states[sid].predicate, sid)
        self.index.freeze()

        self._terminal_sids = frozenset(workload.terminals)
        self._states: dict[tuple[int, ...], int] = {}
        self.state_sets: list[tuple[int, ...]] = []
        self._has_terminal: list[bool] = []
        self.q0 = self._intern(frozenset())

        # Alphabet: every label on a transition or ⊤-edge, plus one
        # representative "other" element and attribute label.
        labels: set[str] = set()
        for state in workload.states:
            labels.update(state.edges)
            labels.update(state.top_labels)
        labels.discard("*")
        labels.discard("@*")
        self.element_labels = sorted(l for l in labels if not l.startswith("@"))
        self.attribute_labels = sorted(l for l in labels if l.startswith("@"))
        self._other_element = "\x00other"
        self._other_attribute = "@\x00other"

        # t_value: one entry per elementary value class.
        self.index.precompute()
        self.value_states: dict = {}
        for key, sids in self.index.precomputed_items():
            self.value_states[key] = self._intern(sids)

        self.pop_table: dict[tuple[int, str], int] = {}
        self.add_table: dict[tuple[int, int], int] = {}
        self._construct()

    # ------------------------------------------------------------------

    def _intern(self, sids) -> int:
        key = tuple(sorted(sids))
        uid = self._states.get(key)
        if uid is None:
            if len(self._states) >= self.max_states:
                raise BudgetExceeded(
                    f"eager XPush construction exceeded {self.max_states} states"
                )
            uid = len(self.state_sets)
            self._states[key] = uid
            self.state_sets.append(key)
            self._has_terminal.append(any(s in self._terminal_sids for s in key))
        return uid

    def _construct(self) -> None:
        workload = self.workload
        all_labels = (
            self.element_labels
            + self.attribute_labels
            + [self._other_element, self._other_attribute]
        )
        while True:
            pop_entries = len(self.pop_table)
            add_entries = len(self.add_table)
            states = len(self.state_sets)
            # t_pop for every (state, label).
            for uid in range(len(self.state_sets)):
                sids = self.state_sets[uid]
                for label in all_labels:
                    if (uid, label) not in self.pop_table:
                        evaluated = workload.eval_closure(sids)
                        lifted = workload.delta_inverse(
                            evaluated, label, label.startswith("@")
                        )
                        self.pop_table[(uid, label)] = self._intern(lifted)
            # t_badd for (non-leaf state, pop result); rows for states
            # containing terminals stay undefined (the Fig. 3 blanks).
            pop_results = sorted(set(self.pop_table.values()))
            for left in range(len(self.state_sets)):
                if self._has_terminal[left]:
                    continue
                for right in pop_results:
                    if (left, right) not in self.add_table:
                        union = set(self.state_sets[left]) | set(self.state_sets[right])
                        self.add_table[(left, right)] = self._intern(union)
            stable = (
                pop_entries == len(self.pop_table)
                and add_entries == len(self.add_table)
                and states == len(self.state_sets)
            )
            if stable:
                return

    # ------------------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.state_sets)

    def accepts_of(self, uid: int) -> frozenset[str]:
        return self.workload.accepted_oids(self.state_sets[uid])

    def _pop(self, uid: int, label: str) -> int:
        key = (uid, label)
        if key not in self.pop_table:
            fallback = self._other_attribute if label.startswith("@") else self._other_element
            key = (uid, fallback)
        return self.pop_table[key]

    def _value(self, raw: str) -> int:
        key = self.index.key_of(raw)
        uid = self.value_states.get(key)
        if uid is None:
            uid = self._intern(self.index.lookup(raw))
            self.value_states[key] = uid
        return uid

    def run(self, document: Document, trace: list[int] | None = None) -> frozenset[str]:
        """Execute the Fig. 2 loop with the precomputed tables.

        ``text`` here *overwrites* qb, exactly as written in Fig. 2 —
        the eager machine is the paper-faithful artifact; use the lazy
        :class:`repro.xpush.machine.XPushMachine` for the merge variant.
        An optional *trace* list collects the current bottom-up state
        after every event (the Fig. 3 execution trace).
        """
        qb = self.q0
        stack: list[int] = []
        for event in events_of_document(document):
            kind = type(event)
            if kind is StartElement:
                if self._has_terminal[qb]:
                    raise MixedContentError("text and element children mixed")
                stack.append(qb)
                qb = self.q0
            elif kind is Text:
                qb = self._value(event.value)
            elif kind is EndElement:
                lifted = self._pop(qb, event.label)
                parent = stack.pop()
                entry = self.add_table.get((parent, lifted))
                if entry is None:
                    raise MixedContentError(
                        f"t_badd undefined for (q{parent}, q{lifted})"
                    )
                qb = entry
            elif kind is StartDocument:
                qb = self.q0
                stack = []
            if trace is not None and kind in (Text, EndElement):
                trace.append(qb)
        return self.accepts_of(qb)
