"""Runtime counters for the XPush machine — the raw material of the
paper's evaluation (Sec. 7).

- state counts and average state size → Figs. 6, 7, 10, 11;
- table lookups vs hits ("One can think of the XPush machine as a
  cache") → the hit ratio of Fig. 8;
- events and bytes processed → throughput (the abstract's MB/s claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MachineStats:
    """Mutable counters updated on the machine's hot path."""

    events: int = 0
    documents: int = 0
    bytes_processed: int = 0
    lookups: int = 0  # probes of t_push/t_value/t_pop/t_badd tables
    hits: int = 0  # probes answered from an existing entry
    pop_computed: int = 0
    add_computed: int = 0
    value_computed: int = 0
    push_computed: int = 0
    flushes: int = 0  # table resets triggered by options.max_states

    @property
    def hit_ratio(self) -> float:
        """Successful lookups / total lookups (Fig. 8)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "events": self.events,
            "documents": self.documents,
            "bytes": self.bytes_processed,
            "lookups": self.lookups,
            "hits": self.hits,
            "hit_ratio": self.hit_ratio,
            "pop_computed": self.pop_computed,
            "add_computed": self.add_computed,
            "value_computed": self.value_computed,
            "push_computed": self.push_computed,
            "flushes": self.flushes,
        }

    def reset(self) -> None:
        for name in (
            "events",
            "documents",
            "bytes_processed",
            "lookups",
            "hits",
            "pop_computed",
            "add_computed",
            "value_computed",
            "push_computed",
            "flushes",
        ):
            setattr(self, name, 0)
