"""Runtime counters for the XPush machine — the raw material of the
paper's evaluation (Sec. 7).

- state counts and average state size → Figs. 6, 7, 10, 11;
- table lookups vs hits ("One can think of the XPush machine as a
  cache") → the hit ratio of Fig. 8;
- events and bytes processed → throughput (the abstract's MB/s claim);
- flushes / evictions / GC'd states and the resident-memory gauges →
  the Sec. 6 memory manager (bounded-memory infinite streams).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class MachineStats:
    """Mutable counters updated on the machine's hot path.

    ``resident_bytes`` and ``table_entries`` are *gauges* mirrored from
    the machine's :class:`~repro.xpush.state.StateStore` at every
    document boundary; ``codegen_compile_ms`` and ``codegen_handlers``
    are gauges stamped by the machine when the codegen runtime binds
    its compiled handlers (re-stamped after ``reset()``).  The other
    fields are cumulative counters.
    """

    events: int = 0
    documents: int = 0
    bytes_processed: int = 0
    lookups: int = 0  # probes of t_push/t_value/t_pop/t_badd tables
    hits: int = 0  # probes answered from an existing entry
    pop_computed: int = 0
    add_computed: int = 0
    value_computed: int = 0
    push_computed: int = 0
    codegen_compile_ms: float = 0.0  # gauge: one-time handler compile cost
    codegen_handlers: int = 0  # gauge: compiled functions bound (codegen runtime)
    codegen_fallbacks: int = 0  # transitions interpreted while codegen requested
    schema_pruned_states: int = 0  # gauge: AFA states stripped by schema pruning
    schema_pruned_edges: int = 0  # gauge: AFA transitions deleted by schema pruning
    schema_fallbacks: int = 0  # documents replayed unpruned (schema_mode=validate)
    flushes: int = 0  # full table resets (max_states / eviction="flush")
    evictions: int = 0  # memo entries dropped by the clock sweep
    gc_states: int = 0  # states garbage-collected after eviction
    resident_bytes: int = 0  # gauge: estimated bytes of states + tables
    table_entries: int = 0  # gauge: live memo-table entries

    @property
    def hit_ratio(self) -> float:
        """Successful lookups / total lookups (Fig. 8)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        out = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        out["hit_ratio"] = self.hit_ratio
        # Historical alias: early consumers read "bytes"; keep it in
        # step with the attribute's real name.
        out["bytes"] = self.bytes_processed
        return out

    def reset(self) -> None:
        # Every counter, current and future — a hardcoded list silently
        # skips fields added later.
        for field in dataclasses.fields(self):
            setattr(self, field.name, field.default)
