"""The lazy XPush Machine (Sec. 3-5).

Execution follows Fig. 2 exactly: the machine keeps a current state
``(qt, qb)`` and a stack of states; ``startElement`` pushes and moves
top-down, ``text`` applies ``t_value``, ``endElement`` applies
``t_pop`` then merges into the popped parent state with ``t_badd``,
``endDocument`` returns ``t_accept(qb)``.

Deviation from the literal Fig. 2, documented in DESIGN.md: ``text``
*merges* (``qb ← t_badd(qb, t_value(qt, str))``) instead of
overwriting, so ``<a c="2">1</a>`` — which Sec. 3.2 explicitly promises
to process — keeps the attribute-derived matches.  Mixed content is
rejected, as the paper assumes.

All six transition functions are computed lazily and memoised on the
interned states (Sec. 4): the first time a (state, event) pair occurs
there is "a relatively high cost", recovered on every reuse; the hit
counters quantify it (Fig. 8).

That first-touch cost is paid in one of three interchangeable
*runtimes* (``XPushOptions.runtime``): ``"bitmask"`` (default)
computes against the workload's compiled
:class:`~repro.afa.automaton.CompiledMasks` — state sets are single
ints, ``eval``/δ⁻¹/closures are bitwise ops, and states intern by
their mask with no sorting; ``"codegen"`` dispatches into straight-
line Python generated per workload (:mod:`repro.afa.codegen`) — fused
per-label pop handlers, literal-inlined push rows, dead branches
elided — falling back to the bitmask tables (with a warning and a
stats counter) when the workload exceeds
``XPushOptions.codegen_max_handlers``; ``"sets"`` keeps the original
frozenset/tuple algebra as the executable reference implementation.
The memoised hit path is identical for all three; only the miss path
differs, which is exactly what dominates in low-hit-ratio regimes
(Fig. 8) and at large workload sizes (Figs. 6/10).

The Sec. 5 optimisations are selected with
:class:`repro.xpush.options.XPushOptions`:

- *top-down pruning* tracks enabled AFA states in ``qt`` and restricts
  ``t_value`` to them;
- *order optimisation* makes ``t_badd`` drop states whose DTD-mandated
  preceding siblings have not matched;
- *early notification* reports a filter as soon as its notification
  state matches an enabled node, strips that filter's states from the
  stored pop results, and intersects pop results with the parent's
  enabled set (the ``//`` fix the paper prescribes);
- *training* warms the machine on workload-derived documents.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import IO, TYPE_CHECKING, Callable, Iterable, Iterator

from repro.afa.automaton import StateKind, WorkloadAutomata

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.afa.schema import SchemaSpec
from repro.afa.build import build_workload_automata
from repro.afa.index import AtomicPredicateIndex
from repro.errors import EventStreamError, MixedContentError, WorkloadError
from repro.xmlstream.dom import Document
from repro.xmlstream.dtd import DTD
from repro.xmlstream.events import Event, dispatch, events_of_document
from repro.xmlstream.parser import parse_into
from repro.xpath.ast import XPathFilter
from repro.xpath.parser import parse_workload
from repro.xpush.options import XPushOptions
from repro.xpush.state import ENTRY_BYTES, StateStore, XPushState, XPushTopState
from repro.xpush.stats import MachineStats

#: The clock sweep evicts down to this fraction of ``max_memory_bytes``.
#: The band between the low and high watermarks absorbs per-document
#: growth: above *low* a paced clock pass evicts only states that
#: stayed cold across document boundaries; only above *high* (the hard
#: bound) does the sweep force eviction regardless of reference bits.
LOW_WATERMARK_RATIO = 0.8

#: Shared empty notification set (codegen pop entries reuse one object).
_EMPTY_OIDS: frozenset[str] = frozenset()


def compute_precedence(workload: WorkloadAutomata, dtd: DTD) -> dict[int, frozenset[int]]:
    """``prec(s)`` of Sec. 5: for ε-children of the same AND state,
    ``s' ≺ s`` when every outgoing label of s' must precede every
    outgoing label of s under the DTD sibling order.  States with
    wildcard transitions or no label transitions are incomparable."""
    order = dtd.sibling_order()
    prec: dict[int, set[int]] = {}
    states = workload.states
    for state in states:
        if state.kind is not StateKind.AND:
            continue
        labelled: dict[int, frozenset[str]] = {}
        for child in state.eps:
            labels = states[child].outgoing_labels()
            if labels and "*" not in labels and "@*" not in labels:
                labelled[child] = labels
        children = list(labelled)
        for left in children:
            for right in children:
                if left == right:
                    continue
                if all(
                    (x, y) in order for x in labelled[left] for y in labelled[right]
                ):
                    prec.setdefault(right, set()).add(left)
    return {sid: frozenset(sources) for sid, sources in prec.items()}


class XPushMachine:
    """Evaluate a workload of XPath filters over XML streams.

    Typical use::

        machine = XPushMachine.from_xpath({
            "o1": "//a[b/text()=1 and .//a[@c>2]]",
            "o2": "//a[@c>2 and b/text()=1]",
        })
        results = machine.filter_stream(xml_text)   # one oid-set per doc
    """

    def __init__(
        self,
        workload: WorkloadAutomata,
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        training_seed: int = 0,
    ):
        self.workload = workload
        self.options = options or XPushOptions()
        self.dtd = dtd
        # Hot-path copy: end_element keys its memo per (label, qt,
        # parent qt) under early notification, per label otherwise.
        self._early_keys = self.options.early
        if self.options.order and dtd is None:
            raise WorkloadError("order optimisation requires a DTD")
        self.stats = MachineStats()

        self.runtime = self.options.runtime
        # Schema specialization (repro.afa.schema): with a DTD and
        # schema_mode on, the compiled runtimes build every table from
        # a DTD-pruned clone of the workload over the same sid space —
        # impossible label edges deleted, forward-unreachable states
        # stripped, per-element push rows materialised.  The "sets"
        # reference runtime always runs unpruned: it is the executable
        # spec the pruned runtimes are differentially tested against.
        self.schema: "SchemaSpec | None" = None
        if self.options.schema_mode != "off":
            if dtd is None:
                raise WorkloadError(
                    f"schema_mode={self.options.schema_mode!r} requires a DTD"
                )
            if self.runtime != "sets":
                from repro.afa.schema import specialize

                self.schema = specialize(workload, dtd)
        compiled = self.schema.workload if self.schema is not None else workload

        self.index = AtomicPredicateIndex()
        for sid in compiled.terminals:
            self.index.add(compiled.states[sid].predicate, sid)
        self.index.freeze()

        self._masks = compiled.masks if self.runtime != "sets" else None
        if self.runtime != "sets" and self._masks is None:
            raise WorkloadError(
                f"{self.runtime} runtime needs a finalized workload (call finalize())"
            )
        # The codegen runtime binds workload-specialized compiled
        # handlers (shared across machines over the same workload); a
        # declined compilation falls back to the interpreted bitmask
        # tables — compiled_handlers() warned once — and the fallback
        # wrappers below count the interpreted transitions.
        self._handlers = (
            compiled.compiled_handlers(self.options.codegen_max_handlers)
            if self.runtime == "codegen"
            else None
        )

        prec = compute_precedence(workload, dtd) if self.options.order else None
        self._prec = prec
        self._prec_masks = (
            {sid: self._masks.mask_of(required) for sid, required in prec.items()}
            if prec is not None and self._masks is not None
            else None
        )
        self._notification_sids = frozenset(
            afa.notification for afa in workload.afas if afa.notification >= 0
        )

        self.store = StateStore(
            accepts_of=compiled.accepted_oids,
            terminal_sids=frozenset(compiled.terminals),
            masks=self._masks,
        )
        # Cold-path transitions are computed by the selected runtime;
        # the memoised hit path in the SAX callbacks is shared.
        if self.runtime == "sets":
            self._compute_push = self._compute_push_sets
            self._compute_value = self._compute_value_sets
            self._compute_pop = self._compute_pop_sets
            self._badd = self._badd_sets
        elif self._handlers is not None:
            # t_badd has no per-label structure to specialize; the
            # compiled runtime shares the bitmask one.  t_value caches
            # the per-key base mask (workload-derived, like the index's
            # own per-key answers) so repeat keys skip the index sweep.
            self._value_masks: dict = {}
            # Per-label handler resolution (table probe + wildcard
            # default) is loop-invariant; cache it per machine so the
            # compute wrappers are one dict probe per miss.
            self._push_fns: dict = {}
            self._pop_fns: dict = {}
            self._compute_push = self._compute_push_codegen
            self._compute_value = self._compute_value_codegen
            self._compute_pop = (
                self._compute_pop_codegen_early
                if self.options.early
                else self._compute_pop_codegen
            )
            self._badd = self._badd_bitmask
        elif self.runtime == "codegen":
            self._compute_push = self._compute_push_fallback
            self._compute_value = self._compute_value_bitmask
            self._compute_pop = self._compute_pop_fallback
            self._badd = self._badd_bitmask
        else:
            self._compute_push = self._compute_push_bitmask
            self._compute_value = self._compute_value_bitmask
            self._compute_pop = self._compute_pop_bitmask
            self._badd = self._badd_bitmask
        self._stamp_codegen_gauges()
        # The enabled set behind qt0 is a workload constant; compute it
        # once so table flushes only pay the intern, not the closure.
        if not self.options.top_down:
            self._qt0_enabled = None
        elif self._masks is not None:
            self._qt0_enabled = self._masks.epsilon_closure(self._masks.initial_mask)
        else:
            self._qt0_enabled = workload.epsilon_closure(
                {afa.initial for afa in workload.afas}
            )
        self.qt0 = self._make_qt0()

        # Sec. 4, "State Precomputation": in the bottom-up machine the
        # atomic predicate index and the t_value states are precomputed.
        if self.options.precompute_values and not self.options.top_down:
            self.index.precompute()
            self._seed_value_table()

        # Per-document registers (Fig. 2).  ``_content`` tracks what the
        # open element contains so far (0 nothing, 1 text, 2 element
        # children) to reject mixed content structurally — the paper's
        # "no mixed content" assumption (Sec. 3.2).
        self._qt: XPushTopState = self.qt0
        self._qb: XPushState = self.store.empty
        # The element stack is a frame buffer plus a stack pointer, so
        # documents reuse slots instead of growing and shrinking a
        # list.  A non-recursive DTD bounds document depth, so schema
        # specialization preallocates the whole buffer up front; the
        # push path still appends past the end when input (or a
        # schema-less workload) runs deeper.
        self._stack_bound = (
            self.schema.analysis.depth_bound if self.schema is not None else None
        )
        self._stack: list[tuple[XPushTopState, XPushState, int] | None] = (
            [None] * self._stack_bound if self._stack_bound else []
        )
        self._sp = 0
        self._content = 0
        self._early: set[str] = set()
        # schema_mode="validate": per-event checks of the two pruning
        # assumptions (producible labels, depth bound), journaling the
        # current document so a violation replays it into an unpruned
        # fallback machine.  Installed as instance attributes so every
        # driver — dispatch, the push-mode parsers, a layered fanout —
        # hits the validating path; off/trust pay nothing.
        self._fallback: "XPushMachine | None" = None
        self._violated = False
        self._journal: list[tuple[str, str]] = []
        if self.schema is not None and self.options.schema_mode == "validate":
            self._producible = self.schema.analysis.producible
            self.start_document = self._start_document_validate  # type: ignore[method-assign]
            self.start_element = self._start_element_validate  # type: ignore[method-assign]
            self.text = self._text_validate  # type: ignore[method-assign]
            self.end_element = self._end_element_validate  # type: ignore[method-assign]
            self.end_document = self._end_document_validate  # type: ignore[method-assign]
        self._results: list[frozenset[str]] = []
        # Per-call result sink: filter_stream/process_events collect the
        # call's own answers here instead of slicing ``_results`` (which
        # a concurrent clear_results() or a retain_results=False machine
        # would corrupt).
        self._collect: list[frozenset[str]] | None = None
        self._doc_seq = 0  # monotonic document number (on_result index)
        self._training = False  # warm_up in progress: suspend mgmt/results
        self._memory_managed = (
            self.options.max_states is not None
            or self.options.max_memory_bytes is not None
        )
        # Clock hands (uid of the last swept state) for the second-chance
        # eviction sweep over each intern ring.
        self._clock_bottom_hand = -1
        self._clock_top_hand = -1
        #: Optional push-mode sink: called as ``on_result(index, oids)``
        #: the moment each document finishes — lets brokers route
        #: packets without buffering the results list.  ``index`` is a
        #: monotonic document sequence number (not affected by
        #: ``clear_results``); training documents are not reported.
        self.on_result = None
        #: Optional event-time sink: ``on_match(oid, doc_seq, event_index)``
        #: fires the moment a filter's match is decided — at the closing
        #: event that early notification resolves it (Sec. 5), or at the
        #: ``endDocument`` event for matches only the bottom-up answer
        #: settles.  Each oid fires at most once per document (memoised
        #: pop entries re-deliver their notification set on hits; the
        #: ``_early`` register dedupes), every ``end_document`` answer is
        #: covered, emissions are monotone in ``event_index``, and
        #: training documents are not reported.  ``doc_seq`` is the same
        #: monotonic number ``on_result`` will carry for the document.
        self.on_match: Callable[[str, int, int], None] | None = None
        # Event counter behind ``on_match``'s event_index: startDocument
        # is event 0, each subsequent SAX event pre-increments.
        self._event_index = 0
        # Oids already emitted on a pruned prefix before a schema
        # fallback trip — the fallback replay must not re-fire them.
        self._prefix_emitted: set[str] = set()

        if self.options.train:
            self.warm_up(seed=training_seed)

    def _make_qt0(self) -> XPushTopState:
        """The initial top-down state in the selected runtime."""
        if not self.options.top_down:
            return self.store.intern_top(None)
        if self._masks is not None:
            return self.store.intern_top_mask(self._qt0_enabled)
        return self.store.intern_top(self._qt0_enabled)

    def _seed_value_table(self) -> None:
        """Seed qt0's ``t_value`` memo from the precomputed index."""
        masks = self._masks
        store = self.store
        table = self.qt0.value_table
        for key, sids in self.index.precomputed_items():
            if key in table:
                continue
            if masks is not None:
                state = store.intern_bottom_mask(masks.mask_of(sids))
            else:
                state = store.intern_bottom(sids)
            table[key] = state
            store.note_entries(1)

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------

    def clone(self) -> "XPushMachine":
        """A fresh machine over the same (shared, immutable) workload
        automata with empty tables — e.g. one per worker thread, since
        a machine instance itself is not thread-safe."""
        return XPushMachine(self.workload, self.options, self.dtd)

    @classmethod
    def from_filters(
        cls,
        filters: list[XPathFilter],
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
    ) -> "XPushMachine":
        return cls(build_workload_automata(filters), options, dtd)

    @classmethod
    def from_xpath(
        cls,
        sources: dict[str, str] | list[str],
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
    ) -> "XPushMachine":
        """Build a machine straight from XPath source strings."""
        return cls.from_filters(parse_workload(sources), options, dtd)

    # ------------------------------------------------------------------
    # SAX callbacks (Fig. 2)
    # ------------------------------------------------------------------

    def start_document(self) -> None:
        self.stats.events += 1
        self._qt = self.qt0
        self._qb = self.store.empty
        self._sp = 0
        self._content = 0
        self._early = set()
        self._event_index = 0

    def start_element(self, label: str) -> None:
        stats = self.stats
        stats.events += 1
        self._event_index += 1
        is_attribute = label.startswith("@")
        if not is_attribute and self._content == 1:
            raise MixedContentError(
                f"element <{label}> opened after text in the same parent"
            )
        qt = self._qt
        sp = self._sp
        stack = self._stack
        frame = (qt, self._qb, self._content if is_attribute else 2)
        if sp == len(stack):
            stack.append(frame)
        else:
            stack[sp] = frame
        self._sp = sp + 1
        self._content = 0
        qt.ref = True  # the probed table's owner is hot (CLOCK bit)
        stats.lookups += 1
        nxt = qt.push_table.get(label)
        if nxt is None:
            nxt = self._compute_push(qt, label)
        else:
            stats.hits += 1
            nxt.ref = True  # a used memo entry keeps its target hot
        self._qt = nxt
        self._qb = self.store.empty

    def text(self, value: str) -> None:
        stats = self.stats
        stats.events += 1
        self._event_index += 1
        if self._content == 2:
            raise MixedContentError("text after element children in the same parent")
        self._content = 1
        qt = self._qt
        qt.ref = True
        key = self.index.key_of(value)
        stats.lookups += 1
        terminal_state = qt.value_table.get(key)
        if terminal_state is None:
            terminal_state = self._compute_value(qt, key, value)
        else:
            stats.hits += 1
            terminal_state.ref = True
        if terminal_state.size:
            # t_badd hit path, inlined (see _badd_* for the miss).
            qb = self._qb
            qb.ref = True
            stats.lookups += 1
            out = qb.add_table.get(terminal_state.uid)
            if out is None:
                out = self._badd(qb, terminal_state)
            else:
                stats.hits += 1
                out.ref = True  # a used memo entry keeps its target hot
            self._qb = out

    def end_element(self, label: str) -> None:
        stats = self.stats
        stats.events += 1
        self._event_index += 1
        sp = self._sp - 1
        if sp < 0:
            raise EventStreamError(
                f"endElement({label}) with no open element: unbalanced event stream"
            )
        qb = self._qb
        qb.ref = True
        qt = self._qt
        stack = self._stack
        frame = stack[sp]
        assert frame is not None
        parent_qt, parent_qb, parent_content = frame
        stack[sp] = None  # drop the state references, keep the slot
        self._sp = sp
        if self._early_keys:
            pop_key = (label, qt.uid, parent_qt.uid)
        else:
            pop_key = label
        stats.lookups += 1
        entry = qb.pop_table.get(pop_key)
        if entry is None:
            entry = self._compute_pop(qb, label, qt, parent_qt, pop_key)
        else:
            stats.hits += 1
            # The lifted state is consumed by _badd below, never probed
            # as a register — a hit here is its only recency signal.
            entry[0].ref = True
        lifted, notified = entry
        if notified:
            hook = self.on_match
            if hook is None or self._training:
                self._early.update(notified)
            else:
                # Memoised pop entries re-deliver their notification set
                # on every hit; the _early membership check dedupes so
                # each oid fires at the first deciding event only.
                early = self._early
                seq = self._doc_seq
                event_index = self._event_index
                for oid in notified:
                    if oid not in early:
                        early.add(oid)
                        hook(oid, seq, event_index)
        self._qt = parent_qt
        self._content = parent_content
        if lifted.size:
            # t_badd hit path, inlined (see _badd_* for the miss).
            parent_qb.ref = True
            stats.lookups += 1
            out = parent_qb.add_table.get(lifted.uid)
            if out is None:
                out = self._badd(parent_qb, lifted)
            else:
                stats.hits += 1
                out.ref = True  # a used memo entry keeps its target hot
            self._qb = out
        else:
            self._qb = parent_qb

    def end_document(self) -> frozenset[str]:
        stats = self.stats
        stats.events += 1
        self._event_index += 1
        if self._sp:
            raise EventStreamError(
                f"endDocument with {self._sp} unclosed element(s)"
            )
        stats.documents += 1
        accepted = self._qb.accepts
        if self._early:
            accepted = accepted | frozenset(self._early)
        hook = self.on_match
        if hook is not None and not self._training:
            # Matches the bottom-up pass settled only at document end
            # (or every match, when early notification is off) emit at
            # the endDocument event, so on_match covers the full answer.
            early = self._early
            seq = self._doc_seq
            event_index = self._event_index
            for oid in accepted:
                if oid not in early:
                    hook(oid, seq, event_index)
        return self._record_result(accepted)

    def _record_result(self, accepted: frozenset[str]) -> frozenset[str]:
        """Route one finished document's answer through the result
        plumbing (collection, retained results, ``on_result``) and run
        the document-boundary memory policy."""
        if self._collect is not None:
            self._collect.append(accepted)
        if not self._training:
            if self.options.retain_results:
                self._results.append(accepted)
            if self.on_result is not None:
                self.on_result(self._doc_seq, accepted)
            self._doc_seq += 1
            # Memory management (Sec. 6): document boundaries are the
            # safe points to reclaim — no stack, no live registers into
            # the tables.  Suspended during warm-up so training states
            # are never discarded mid-training (Sec. 5).
            if self._memory_managed:
                self._manage_memory()
            else:
                store = self.store
                self.stats.resident_bytes = store.resident_bytes
                self.stats.table_entries = store.table_entries
        return accepted

    # ------------------------------------------------------------------
    # schema_mode="validate": checked callbacks + unpruned fallback
    # ------------------------------------------------------------------

    def _ensure_fallback(self) -> "XPushMachine":
        """The lazily-built unpruned twin a non-conforming document is
        replayed into.  Kept across documents so its memo tables warm
        up like any machine's."""
        fallback = self._fallback
        if fallback is None:
            fallback = XPushMachine(
                self.workload,
                replace(
                    self.options,
                    schema_mode="off",
                    train=False,
                    retain_results=False,
                ),
                dtd=self.dtd,
            )
            fallback.on_match = self._forward_match
            self._fallback = fallback
        return fallback

    def _forward_match(self, oid: str, _seq: int, event_index: int) -> None:
        """Relay an emission from the unpruned fallback under the outer
        machine's document sequence, suppressing oids the pruned prefix
        already fired before the trip (the replay re-discovers them)."""
        if oid in self._prefix_emitted:
            return
        hook = self.on_match
        if hook is not None:
            hook(oid, self._doc_seq, event_index)

    def _trip_schema_fallback(self) -> "XPushMachine":
        """First violation in a document: replay the journal into the
        unpruned fallback and reset this machine's registers (the rest
        of the document goes to the fallback only)."""
        self._violated = True
        self.stats.schema_fallbacks += 1
        fallback = self._ensure_fallback()
        # Oids already fired at event time on the conforming prefix must
        # not re-fire when the replay re-decides them (capture before
        # the replay below — _forward_match consults this set live).
        self._prefix_emitted = set(self._early)
        fallback.start_document()
        for kind, payload in self._journal:
            if kind == "s":
                fallback.start_element(payload)
            elif kind == "t":
                fallback.text(payload)
            else:
                fallback.end_element(payload)
        self._journal.clear()
        # Abandon the pruned machine's half-processed document.  Early
        # notifications it found on the conforming prefix are safe to
        # drop: the fallback replayed that same prefix and will report
        # them itself.
        self._qt = self.qt0
        self._qb = self.store.empty
        stack = self._stack
        for i in range(self._sp):
            stack[i] = None
        self._sp = 0
        self._content = 0
        self._early = set()
        return fallback

    def _start_document_validate(self) -> None:
        self._violated = False
        self._journal.clear()
        XPushMachine.start_document(self)

    def _start_element_validate(self, label: str) -> None:
        if self._violated:
            assert self._fallback is not None
            self._fallback.start_element(label)
            return
        bound = self._stack_bound
        if label not in self._producible or (
            bound is not None and self._sp >= bound
        ):
            self._trip_schema_fallback().start_element(label)
            return
        XPushMachine.start_element(self, label)
        self._journal.append(("s", label))

    def _text_validate(self, value: str) -> None:
        if self._violated:
            assert self._fallback is not None
            self._fallback.text(value)
            return
        XPushMachine.text(self, value)
        self._journal.append(("t", value))

    def _end_element_validate(self, label: str) -> None:
        if self._violated:
            assert self._fallback is not None
            self._fallback.end_element(label)
            return
        XPushMachine.end_element(self, label)
        self._journal.append(("e", label))

    def _end_document_validate(self) -> frozenset[str]:
        if not self._violated:
            return XPushMachine.end_document(self)
        assert self._fallback is not None
        stats = self.stats
        stats.events += 1
        stats.documents += 1
        accepted = self._fallback.end_document()
        self._violated = False
        return self._record_result(accepted)

    # ------------------------------------------------------------------
    # Lazy transition computation — "sets" runtime (the reference spec)
    # ------------------------------------------------------------------

    def _compute_push_sets(self, qt: XPushTopState, label: str) -> XPushTopState:
        self.stats.push_computed += 1
        if qt.sids is None:
            nxt = qt  # single top-down state, as in the Sec. 3.2 machine
        else:
            targets = self.workload.push_targets(qt.sids, label, label.startswith("@"))
            nxt = self.store.intern_top(self.workload.epsilon_closure(targets))
        qt.push_table[label] = nxt
        self.store.note_entries(1)
        return nxt

    def _compute_value_sets(self, qt: XPushTopState, key, value: str) -> XPushState:
        self.stats.value_computed += 1
        sids = self.index.lookup(value)
        if qt.sids is not None:
            sids = sids & qt.sids
        state = self.store.intern_bottom(sids)
        qt.value_table[key] = state
        self.store.note_entries(1)
        return state

    def _compute_pop_sets(
        self,
        qb: XPushState,
        label: str,
        qt: XPushTopState,
        parent_qt: XPushTopState,
        pop_key,
    ) -> tuple[XPushState, frozenset[str]]:
        self.stats.pop_computed += 1
        workload = self.workload
        evaluated = workload.eval_closure(qb.sids)
        lifted = workload.delta_inverse(evaluated, label, label.startswith("@"))
        notified: frozenset[str] = frozenset()
        if self.options.early:
            if parent_qt.sids is not None:
                lifted &= parent_qt.sids
            noted = self._noted_sids(evaluated, qt)
            if noted:
                notified = workload.notified_oids(noted)
                lifted -= workload.afa_states_of(noted)
        state = self.store.intern_bottom(lifted)
        entry = (state, notified)
        qb.pop_table[pop_key] = entry
        self.store.note_entries(1)
        return entry

    def _noted_sids(self, evaluated: frozenset[int], qt: XPushTopState) -> list[int]:
        """Notification states that matched the closing node.

        A notification state only counts when it is *enabled* at the
        node: absence-driven connectives (NOT, or an OR/AND with a NOT
        somewhere beneath) can appear in eval() at unrelated nodes, and
        presence-driven ones are enabled anyway.  A skipped notification
        is safe — the ordinary bottom-up path still matches the filter.
        """
        return [sid for sid in self._notification_sids & evaluated if qt.enables(sid)]

    def _badd_sets(self, qbs: XPushState, qaux: XPushState) -> XPushState:
        """Compute t_badd on a memo miss.  The SAX callbacks inline the
        hit path (emptiness check + ``add_table`` probe) themselves —
        this runs only when the probe came up empty."""
        self.stats.add_computed += 1
        prec = self._prec
        if prec:
            parent_set = qbs.sid_set
            kept = [
                sid
                for sid in qaux.sids
                if sid in parent_set or self._prec_ok(sid, parent_set)
            ]
            merged = parent_set.union(kept)
        else:
            merged = qbs.sid_set | qaux.sid_set
        out = self.store.intern_bottom(merged)
        qbs.add_table[qaux.uid] = out
        self.store.note_entries(1)
        return out

    def _prec_ok(self, sid: int, parent_set: frozenset[int]) -> bool:
        required = self._prec.get(sid)
        return required is None or required <= parent_set

    # ------------------------------------------------------------------
    # Lazy transition computation — "bitmask" runtime (compiled tables)
    # ------------------------------------------------------------------

    def _compute_push_bitmask(self, qt: XPushTopState, label: str) -> XPushTopState:
        self.stats.push_computed += 1
        if qt.mask is None:
            nxt = qt  # single top-down state, as in the Sec. 3.2 machine
        else:
            closed = self._masks.push_targets_closure(
                qt.mask, label, label.startswith("@")
            )
            nxt = self.store.intern_top_mask(closed)
        qt.push_table[label] = nxt
        self.store.note_entries(1)
        return nxt

    def _compute_value_bitmask(self, qt: XPushTopState, key, value: str) -> XPushState:
        self.stats.value_computed += 1
        mask = self._masks.mask_of(self.index.lookup(value))
        if qt.mask is not None:
            mask &= qt.mask
        state = self.store.intern_bottom_mask(mask)
        qt.value_table[key] = state
        self.store.note_entries(1)
        return state

    def _compute_pop_bitmask(
        self,
        qb: XPushState,
        label: str,
        qt: XPushTopState,
        parent_qt: XPushTopState,
        pop_key,
    ) -> tuple[XPushState, frozenset[str]]:
        self.stats.pop_computed += 1
        masks = self._masks
        evaluated = masks.eval_closure(qb.mask)
        lifted = masks.delta_inverse(evaluated, label, label.startswith("@"))
        notified: frozenset[str] = frozenset()
        if self.options.early:
            if parent_qt.mask is not None:
                lifted &= parent_qt.mask
            noted = masks.notification_mask & evaluated
            if noted and qt.mask is not None:
                noted &= qt.mask  # only notifications *enabled* at the node
            if noted:
                notified = masks.notified_oids(noted)
                lifted &= ~masks.afa_states(noted)
        state = self.store.intern_bottom_mask(lifted)
        entry = (state, notified)
        qb.pop_table[pop_key] = entry
        self.store.note_entries(1)
        return entry

    def _badd_bitmask(self, qbs: XPushState, qaux: XPushState) -> XPushState:
        """Compute t_badd on a memo miss.  The SAX callbacks inline the
        hit path (emptiness check + ``add_table`` probe) themselves —
        this runs only when the probe came up empty."""
        self.stats.add_computed += 1
        parent = qbs.mask
        merged = parent | qaux.mask
        prec_masks = self._prec_masks
        if prec_masks:
            fresh = qaux.mask & ~parent
            while fresh:
                low = fresh & -fresh
                required = prec_masks.get(low.bit_length() - 1)
                if required is not None and required & parent != required:
                    merged ^= low  # a mandated preceding sibling is missing
                fresh ^= low
        store = self.store
        out = store._bottom.get(merged)  # intern_bottom_mask, hit path inlined
        if out is None:
            out = store.intern_bottom_mask(merged)
        else:
            out.ref = True
        qbs.add_table[qaux.uid] = out
        store.table_entries += 1
        store.resident_bytes += ENTRY_BYTES
        return out

    # ------------------------------------------------------------------
    # Lazy transition computation — "codegen" runtime (compiled Python)
    # ------------------------------------------------------------------

    def _stamp_codegen_gauges(self) -> None:
        """Mirror the compiled-handler and schema-pruning gauges into
        the stats (stats resets wipe them; warm_up re-stamps)."""
        if self._handlers is not None:
            self.stats.codegen_compile_ms = self._handlers.compile_ms
            self.stats.codegen_handlers = self._handlers.handler_count
        if self.schema is not None:
            self.stats.schema_pruned_states = self.schema.pruned_state_count
            self.stats.schema_pruned_edges = self.schema.pruned_edge_count

    def dump_source(self) -> str | None:
        """The generated Python the codegen runtime dispatches into, or
        None when another runtime (or the fallback) is active."""
        return self._handlers.source if self._handlers is not None else None

    def _compute_push_codegen(self, qt: XPushTopState, label: str) -> XPushTopState:
        self.stats.push_computed += 1
        store = self.store
        if qt.mask is None:
            nxt = qt  # single top-down state, as in the Sec. 3.2 machine
        else:
            fn = self._push_fns.get(label)
            if fn is None:
                handlers = self._handlers
                fn = handlers.push.get(label) or (
                    handlers.push_attr_default
                    if label.startswith("@")
                    else handlers.push_elem_default
                )
                self._push_fns[label] = fn
            mask = fn(qt.mask)
            nxt = store._top.get(mask)  # intern_top_mask, hit path inlined
            if nxt is None:
                nxt = store.intern_top_mask(mask)
            else:
                nxt.ref = True
        qt.push_table[label] = nxt
        store.table_entries += 1
        store.resident_bytes += ENTRY_BYTES
        return nxt

    def _compute_value_codegen(self, qt: XPushTopState, key, value: str) -> XPushState:
        self.stats.value_computed += 1
        base = self._value_masks.get(key)
        if base is None:
            base = self._masks.mask_of(self.index.lookup(value))
            self._value_masks[key] = base
        mask = base & qt.mask if qt.mask is not None else base
        store = self.store
        state = store._bottom.get(mask)  # intern_bottom_mask, hit path inlined
        if state is None:
            state = store.intern_bottom_mask(mask)
        else:
            state.ref = True
        qt.value_table[key] = state
        store.table_entries += 1
        store.resident_bytes += ENTRY_BYTES
        return state

    def _compute_pop_codegen(
        self,
        qb: XPushState,
        label: str,
        qt: XPushTopState,
        parent_qt: XPushTopState,
        pop_key,
    ) -> tuple[XPushState, frozenset[str]]:
        """The fused handler computes δ⁻¹(eval(qb), label) in one call;
        without early notification nothing else inspects eval(qb)."""
        self.stats.pop_computed += 1
        fn = self._pop_fns.get(label)
        if fn is None:
            handlers = self._handlers
            fn = handlers.pop.get(label) or (
                handlers.pop_attr_default
                if label.startswith("@")
                else handlers.pop_elem_default
            )
            self._pop_fns[label] = fn
        mask = fn(qb.mask)
        store = self.store
        state = store._bottom.get(mask)  # intern_bottom_mask, hit path inlined
        if state is None:
            state = store.intern_bottom_mask(mask)
        else:
            state.ref = True
        entry = (state, _EMPTY_OIDS)
        qb.pop_table[pop_key] = entry
        store.table_entries += 1
        store.resident_bytes += ENTRY_BYTES
        return entry

    def _compute_pop_codegen_early(
        self,
        qb: XPushState,
        label: str,
        qt: XPushTopState,
        parent_qt: XPushTopState,
        pop_key,
    ) -> tuple[XPushState, frozenset[str]]:
        """Early notification inspects every filter's notification
        state, so this path runs the compiled full eval and the
        evaluated-input per-label handler instead of the fused one."""
        self.stats.pop_computed += 1
        handlers = self._handlers
        masks = self._masks
        evaluated = handlers.eval_closure(qb.mask)
        fn = handlers.pop_ev.get(label)
        if fn is None:
            fn = (
                handlers.pop_ev_attr_default
                if label.startswith("@")
                else handlers.pop_ev_elem_default
            )
        lifted = fn(evaluated)
        notified: frozenset[str] = _EMPTY_OIDS
        if parent_qt.mask is not None:
            lifted &= parent_qt.mask
        noted = masks.notification_mask & evaluated
        if noted and qt.mask is not None:
            noted &= qt.mask  # only notifications *enabled* at the node
        if noted:
            notified = masks.notified_oids(noted)
            lifted &= ~masks.afa_states(noted)
        state = self.store.intern_bottom_mask(lifted)
        entry = (state, notified)
        qb.pop_table[pop_key] = entry
        self.store.note_entries(1)
        return entry

    # The interpreted fallback (codegen requested but declined): the
    # bitmask computes run unchanged, with a counter so operators can
    # see a workload silently running interpreted.

    def _compute_push_fallback(self, qt: XPushTopState, label: str) -> XPushTopState:
        self.stats.codegen_fallbacks += 1
        return self._compute_push_bitmask(qt, label)

    def _compute_pop_fallback(
        self,
        qb: XPushState,
        label: str,
        qt: XPushTopState,
        parent_qt: XPushTopState,
        pop_key,
    ) -> tuple[XPushState, frozenset[str]]:
        self.stats.codegen_fallbacks += 1
        return self._compute_pop_bitmask(qb, label, qt, parent_qt, pop_key)

    # ------------------------------------------------------------------
    # Driving the machine
    # ------------------------------------------------------------------

    def process_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        """Run a stream of events; returns one oid-set per document.

        The call's answers are collected locally (not sliced out of the
        shared ``results()`` list), so ``clear_results()``, a table
        flush, or ``retain_results=False`` cannot corrupt the return
        value.
        """
        collected: list[frozenset[str]] = []
        previous = self._collect
        self._collect = collected
        try:
            dispatch(events, self)
        finally:
            self._collect = previous
        return collected

    def filter_stream(
        self, source: str | bytes | IO, backend: str = "auto"
    ) -> list[frozenset[str]]:
        """Parse and filter a (possibly multi-document) XML text.

        This is the push-mode fast path: the scanner selected by
        *backend* (``"python"``, ``"expat"`` or ``"auto"``; see
        :func:`repro.xmlstream.parser.parse_into`) drives this
        machine's SAX callbacks directly — no event objects are
        allocated between parser and machine.  Bytes processed are
        accounted for every source kind, including file-like objects.
        Like :meth:`process_events`, the call's answers are collected
        locally, independent of the shared results list.
        """
        collected: list[frozenset[str]] = []
        previous = self._collect
        self._collect = collected
        try:
            self.stats.bytes_processed += parse_into(source, self, backend=backend)
        finally:
            self._collect = previous
        return collected

    def filter_document(self, document: Document) -> frozenset[str]:
        """Filter one in-memory document (used by tests and baselines)."""
        return self.process_events(events_of_document(document))[0]

    def results(self) -> list[frozenset[str]]:
        """All per-document answers produced so far."""
        return list(self._results)

    def clear_results(self) -> None:
        self._results.clear()

    # ------------------------------------------------------------------
    # Training (Sec. 5) and memory management (Sec. 8)
    # ------------------------------------------------------------------

    def warm_up(self, seed: int = 0) -> int:
        """Run the machine over workload-derived training documents
        (Sec. 5, "Training the XPush Machine"); returns the number of
        training documents processed.  Results are discarded and the
        stats counters reset: training is setup, so hit ratios and
        event counts reflect real data only — but the states created
        during training remain in the store and are counted by
        ``state_count`` (exactly how Fig. 6 counts them: "additional
        states created during the training phase").

        Memory management is suspended while training runs — a flush or
        sweep triggered by the training documents themselves would
        silently discard the very states training exists to create.
        The memory-manager history (``flushes`` / ``evictions`` /
        ``gc_states``) survives the trailing counter reset.
        """
        from repro.xpush.training import training_documents

        documents = training_documents(
            self.workload, self.dtd, rng=random.Random(seed)
        )
        count = 0
        # Training documents are workload-derived, not schema-derived:
        # under schema_mode="validate" they may legitimately trip the
        # unpruned fallback.  Those replays are setup, exactly like the
        # event counts the trailing reset discards, so the fallback
        # counter keeps its pre-training value.
        fallbacks_before = self.stats.schema_fallbacks
        self._training = True
        try:
            for document in documents:
                self.process_events(events_of_document(document))
                count += 1
        finally:
            self._training = False
        stats = self.stats
        kept = (stats.flushes, stats.evictions, stats.gc_states)
        stats.reset()
        stats.flushes, stats.evictions, stats.gc_states = kept
        stats.schema_fallbacks = fallbacks_before
        stats.resident_bytes = self.store.resident_bytes
        stats.table_entries = self.store.table_entries
        self._stamp_codegen_gauges()
        return count

    def reset_tables(self) -> None:
        """Flush all states and tables (the paper's brute-force update
        path: "equivalent to flushing an entire cache").  The atomic
        predicate index survives — it is workload-derived, not
        data-derived — and precomputed ``t_value`` states are re-seeded
        from it when the machine was built with precomputation."""
        self.store.reset()
        self.qt0 = self._make_qt0()
        if self.options.precompute_values and not self.options.top_down:
            self._seed_value_table()
        self._qt = self.qt0
        self._qb = self.store.empty
        self._stack = [None] * self._stack_bound if self._stack_bound else []
        self._sp = 0
        self._content = 0
        self._early = set()
        self._clock_bottom_hand = -1
        self._clock_top_hand = -1
        self.stats.resident_bytes = self.store.resident_bytes
        self.stats.table_entries = self.store.table_entries

    def _manage_memory(self) -> None:
        """Apply the memory policy at a document boundary (Sec. 6).

        ``max_states`` keeps its historical brute-force semantics (the
        escape hatch); ``max_memory_bytes`` triggers the configured
        eviction policy — a full flush, or the incremental clock sweep
        down to the low watermark.
        """
        options, store, stats = self.options, self.store, self.stats
        limit = options.max_states
        if limit is not None and store.bottom_count > limit:
            self.reset_tables()
            stats.flushes += 1
        else:
            high = options.max_memory_bytes
            if high is not None and store.resident_bytes > high:
                if options.eviction == "flush":
                    self.reset_tables()
                    stats.flushes += 1
                else:
                    self._evict_cold(int(high * LOW_WATERMARK_RATIO), high)
        stats.resident_bytes = store.resident_bytes
        stats.table_entries = store.table_entries

    def _evict_cold(self, low: int, high: int) -> None:
        """Second-chance (CLOCK) sweep toward the low watermark.

        Cycle 1 is one fused epoch (:meth:`StateStore.sweep_epoch`):
        states whose reference bit is clear (untouched since the last
        sweep) lose their memo tables *and* their intern slot — where
        the real memory lives, in the sid payloads — while referenced
        states survive, pruned of individual entries whose target went
        cold.  Reference bits are cleared afterwards, opening the next
        epoch: a state earns its second chance by being probed before
        the next sweep.  If the epoch did not reach the low watermark
        (the working set itself outgrew the bound), cycle 2 force-
        evicts in clock-hand order until the projected target is met
        and mark-and-sweep GC reclaims whatever that orphaned — at
        most two cycles over the rings.

        The epoch targets *low* but is only *forced* past the working
        set when it fails to get back under *high*: landing between the
        watermarks is acceptable hysteresis (the cold tail is gone and
        the hard bound holds), whereas forcing down to low from there
        would evict recently-referenced states — the post-epoch floor
        is the working set plus the current window, and when that sits
        just above low a strict target churns exactly the states the
        policy exists to protect.
        """
        store, stats = self.store, self.stats
        roots = [store.empty, self.qt0, self._qb, self._qt]
        entries, states, self._clock_bottom_hand, self._clock_top_hand = (
            store.sweep_epoch(
                roots, low, self._clock_bottom_hand, self._clock_top_hand
            )
        )
        stats.evictions += entries
        stats.gc_states += states
        if store.resident_bytes > high:
            self._sweep(low, force=True)
            stats.gc_states += store.collect_garbage(roots)
        # The precomputed t_value seeds are part of the permanent
        # working set (Sec. 4): restore any the sweep took.
        if self.options.precompute_values and not self.options.top_down:
            self._seed_value_table()

    def _sweep(self, low: int, force: bool = True) -> None:
        """The forced cycle: evict in clock-hand order, ignoring
        reference bits, until the projected post-GC resident reaches
        the low watermark — a desperation sweep that damages no more of
        the working set than the bound requires."""
        store = self.store
        self._clock_bottom_hand, projected = self._sweep_ring(
            store.bottom_states(), self._clock_bottom_hand, low, 0
        )
        if store.resident_bytes - projected > low:
            self._clock_top_hand, projected = self._sweep_ring(
                store.top_states(), self._clock_top_hand, low, projected
            )

    def _sweep_ring(
        self, states, hand: int, low: int, projected: int
    ) -> tuple[int, int]:
        """One forced clock pass over an intern ring, resuming after
        *hand* (the uid of the last swept state).  Returns the new hand
        and the accumulated projection.

        *projected* is the state-payload bytes the follow-up GC is
        expected to reclaim.  The stop condition subtracts it from the
        resident gauge: table eviction alone only drops entry bytes, a
        small share of residency, so stopping on the raw gauge would
        walk the whole ring every sweep and the GC would then overshoot
        the low watermark into a de-facto full flush."""
        if not states:
            return hand, projected
        store, stats = self.store, self.stats
        count = len(states)
        start = 0
        for i, state in enumerate(states):  # uids are in insertion order
            if state.uid > hand:
                start = i
                break
        for i in range(count):
            if store.resident_bytes - projected <= low:
                break
            state = states[(start + i) % count]
            hand = state.uid
            stats.evictions += store.evict_state_tables(state)
            projected += store.state_cost(state)
        return hand, projected

    # ------------------------------------------------------------------

    @property
    def doc_seq(self) -> int:
        """Monotonic finished-document count — the sequence number the
        next document's ``on_result``/``on_match`` callbacks carry."""
        return self._doc_seq

    @property
    def state_count(self) -> int:
        """Number of (bottom-up) XPush states created so far (Fig. 6)."""
        return self.store.bottom_count

    @property
    def average_state_size(self) -> float:
        """Average AFA states per XPush state (Fig. 7)."""
        return self.store.average_bottom_size

    def describe(self) -> str:
        return (
            f"XPushMachine[{self.options.describe()}]: "
            f"{len(self.workload.afas)} filters, "
            f"{self.workload.state_count} AFA states, "
            f"{self.store.bottom_count} XPush states"
        )
