"""Workload updates without full recomputation (Sec. 8).

The paper sketches two ways to update the XPath workload:

1. **Brute force** — reset the lazy machine and restart with empty
   tables ("equivalent to flushing an entire cache");
2. **Layered insertion** — "To insert a new XPath filter, build a new
   XPush machine on top of the old XPush machine and the new XPath
   expression.  The states in the new XPush machine are very small:
   they contain at most one state from the old XPush machine and a few
   AFA states from the new XPath filter."

:class:`LayeredFilterEngine` realises the second idea with an
equivalent factored construction: the established workload keeps its
fully-warmed *base* machine, and filters inserted since the last
compaction live in a small *delta* machine.  A composite state of the
paper's layered machine is exactly a pair (base state, delta state);
running the two machines side by side over the same event stream
maintains precisely those pairs without materialising the product, and
the answer is the union of the layers' answers.  The expensive, warmed
base tables are never touched by an insertion.

Deletions are tombstones (dropped from answers immediately); calling
:meth:`compact` folds the delta and the tombstones into a fresh base
(the brute-force path, amortised to once per epoch).  A *re-inserted*
oid whose old definition still lives in the base layer is **shadowed**:
the delta's definition answers for it and the base layer's stale
matches are suppressed until compaction folds them away.

The engine conforms to the :class:`repro.engine.protocol.FilterEngine`
protocol: ``subscribe``/``unsubscribe`` alias ``insert``/``remove``,
``filter_stream`` runs the zero-allocation push-mode event path fanned
out over both layers in a single pass, and ``snapshot()``/``restore()``
capture base + delta + tombstones (the base as a compiled
:mod:`repro.xpush.persist` workload, so a restarted worker resumes the
updated workload without re-parsing it).
"""

from __future__ import annotations

from dataclasses import replace
from typing import IO, Any, Callable, Iterable, Mapping, Union

from repro.afa.build import build_workload_automata
from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xmlstream.dom import Document
from repro.xmlstream.events import Event, EventHandler, dispatch, events_of_document
from repro.xpath.ast import XPathFilter
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions

#: ``snapshot()`` format tag (see :mod:`repro.xpush.persist`).
SNAPSHOT_FORMAT = "repro-layered-engine"
SNAPSHOT_VERSION = 1


class _LayerFanout(EventHandler):
    """Drives both layer machines from one pass over an event stream.

    The machines' SAX callbacks are invoked directly — no per-layer
    event buffering, so an unbounded stream is processed in bounded
    memory (the old implementation materialised ``list(events)``,
    which defeated the Sec. 6 memory manager).  Layer membership and
    tombstones are re-read at every document boundary, so updates
    interleaved with a long stream take effect at the next document.
    """

    __slots__ = ("engine", "answers", "_base", "_delta")

    def __init__(self, engine: "LayeredFilterEngine"):
        self.engine = engine
        self.answers: list[frozenset[str]] = []
        self._base: XPushMachine | None = None
        self._delta: XPushMachine | None = None

    def start_document(self) -> None:
        engine = self.engine
        self._base = engine._base
        self._delta = engine._delta
        engine._begin_emit_document(self._base, self._delta)
        if self._base is not None:
            self._base.start_document()
        if self._delta is not None:
            self._delta.start_document()

    def start_element(self, label: str) -> None:
        if self._base is not None:
            self._base.start_element(label)
        if self._delta is not None:
            self._delta.start_element(label)

    def text(self, value: str) -> None:
        if self._base is not None:
            self._base.text(value)
        if self._delta is not None:
            self._delta.text(value)

    def end_element(self, label: str) -> None:
        if self._base is not None:
            self._base.end_element(label)
        if self._delta is not None:
            self._delta.end_element(label)

    def end_document(self) -> None:
        self.answers.append(
            self.engine._merge(
                self._base.end_document() if self._base is not None else frozenset(),
                self._delta.end_document() if self._delta is not None else frozenset(),
            )
        )


class LayeredFilterEngine:
    """An updatable filtering engine: base layer + insertion layer.

    >>> engine = LayeredFilterEngine.from_xpath({"a": "//x"})
    >>> engine.insert("b", "//y[z = 1]")
    >>> sorted(engine.filter_text("<y><z>1</z></y>")[0])
    ['b']
    """

    name = "layered"

    def __init__(
        self,
        filters: list[XPathFilter],
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        compact_threshold: int = 64,
        backend: str = "auto",
    ):
        self.options = options or XPushOptions()
        self.dtd = dtd
        self.backend = backend
        #: Insertions accumulated since the last compaction.
        self.compact_threshold = compact_threshold
        self._base_filters: dict[str, XPathFilter] = {}
        for xpath_filter in filters:
            if xpath_filter.oid in self._base_filters:
                raise WorkloadError(f"duplicate oid {xpath_filter.oid!r}")
            self._base_filters[xpath_filter.oid] = xpath_filter
        self._delta_filters: dict[str, XPathFilter] = {}
        self._tombstones: set[str] = set()
        self._base = self._build(list(self._base_filters.values()))
        self._delta: XPushMachine | None = None
        self.compactions = 0
        self.insertions = 0
        #: Bytes parsed by :meth:`filter_stream` — counted here because
        #: the scanner feeds both layers at once, so neither machine
        #: can claim the stream for itself.
        self.bytes_processed = 0
        #: Event-time match sink (FilterEngine protocol): fired at the
        #: deciding event of whichever layer resolves the match, with
        #: shadowed base-layer oids and tombstones suppressed exactly as
        #: :meth:`_merge` suppresses them from the answer set.
        self.on_match: Callable[[str, int, int], None] | None = None
        # Per-call emission registers (the fanout's __slots__ keeps it
        # lean, so these live on the engine): 0-based document index
        # within the current filter call, and the oids already emitted
        # for the current document.
        self._emit_doc = -1
        self._emitted: set[str] = set()

    @classmethod
    def from_xpath(
        cls,
        sources: dict[str, str],
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
    ) -> "LayeredFilterEngine":
        from repro.xpath.parser import parse_workload

        return cls(parse_workload(sources), options, dtd)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, oid: str, xpath: str) -> None:
        """Add a filter; only the small delta machine is rebuilt, the
        warmed base machine and all its states survive untouched.

        Re-inserting a previously removed oid is allowed; if its old
        definition still sits in the base layer it is *shadowed* — the
        new delta definition answers alone (never both layers), and
        ``filter_count`` counts the oid once.
        """
        live = (
            oid in self._base_filters or oid in self._delta_filters
        ) and oid not in self._tombstones
        if live:
            raise WorkloadError(f"oid {oid!r} already subscribed")
        from repro.xpath.parser import parse_xpath

        parsed = parse_xpath(xpath, oid)
        self._tombstones.discard(oid)
        # The delta definition shadows any stale base-layer definition
        # of the same oid (dict-merge order in compact() agrees).
        self._delta_filters[oid] = parsed
        self._delta = self._build(list(self._delta_filters.values()))
        self.insertions += 1
        if len(self._delta_filters) >= self.compact_threshold:
            self.compact()

    def remove(self, oid: str) -> None:
        """Delete a filter.  Cheap: a tombstone filters the answers; the
        machines are untouched until the next compaction."""
        if oid not in self._base_filters and oid not in self._delta_filters:
            raise WorkloadError(f"unknown oid {oid!r}")
        if oid in self._tombstones:
            raise WorkloadError(f"oid {oid!r} already removed")
        self._tombstones.add(oid)

    def subscribe(self, oid: str, xpath: str) -> None:
        """Protocol alias for :meth:`insert`."""
        self.insert(oid, xpath)

    def unsubscribe(self, oid: str) -> None:
        """Protocol alias for :meth:`remove`."""
        self.remove(oid)

    def compact(self) -> None:
        """Fold delta and tombstones into a fresh base machine — the
        paper's brute-force reset, amortised over an epoch of updates."""
        merged = {**self._base_filters, **self._delta_filters}
        for oid in self._tombstones:
            merged.pop(oid, None)
        self._base_filters = merged
        self._delta_filters = {}
        self._tombstones = set()
        self._base = self._build(list(merged.values()))
        self._delta = None
        self.compactions += 1

    def _build(self, filters: list[XPathFilter]) -> XPushMachine | None:
        if not filters:
            return None
        return self._machine_of(build_workload_automata(filters))

    def _machine_of(self, workload: Any) -> XPushMachine:
        # Layer answers are merged and returned per call; the layer
        # machines must not retain their own unbounded copies.
        return XPushMachine(
            workload,
            replace(self.options, retain_results=False),
            dtd=self.dtd,
        )

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    @property
    def filter_count(self) -> int:
        # An oid present in both layers (re-inserted while its old base
        # definition awaits compaction) counts once: union, not sum.
        return len(self._base_filters.keys() | self._delta_filters.keys()) - len(
            self._tombstones
        )

    def _merge(
        self, base_matched: frozenset[str], delta_matched: frozenset[str]
    ) -> frozenset[str]:
        """One document's answer from the per-layer answers: the delta
        layer shadows base-layer oids it redefines, tombstones drop."""
        shadowed = self._base_filters.keys() & self._delta_filters.keys()
        matched = set(base_matched)
        if shadowed:
            matched -= shadowed
        matched |= delta_matched
        matched -= self._tombstones
        return frozenset(matched)

    # -- event-time emission (FilterEngine on_match) -------------------

    def _begin_emit_document(
        self, base: XPushMachine | None, delta: XPushMachine | None
    ) -> None:
        """Called by the fanout at each document boundary: (un)wire the
        layer machines' hooks for the next document.  With no sink the
        machines run hook-free — the hot path pays nothing."""
        self._emit_doc += 1
        hook = self.on_match
        if hook is None:
            if base is not None:
                base.on_match = None
            if delta is not None:
                delta.on_match = None
            return
        self._emitted = set()
        if base is not None:
            base.on_match = self._base_match
        if delta is not None:
            delta.on_match = self._delta_match

    def _base_match(self, oid: str, _seq: int, event_index: int) -> None:
        # Mirror _merge: a base-layer match never reaches the answer
        # when the oid is tombstoned or redefined in the delta layer.
        if oid in self._tombstones or oid in self._delta_filters:
            return
        self._emit(oid, event_index)

    def _delta_match(self, oid: str, _seq: int, event_index: int) -> None:
        if oid in self._tombstones:
            return
        self._emit(oid, event_index)

    def _emit(self, oid: str, event_index: int) -> None:
        if oid in self._emitted:
            return
        self._emitted.add(oid)
        hook = self.on_match
        if hook is not None:
            hook(oid, self._emit_doc, event_index)

    def filter_document(self, document: Document) -> frozenset[str]:
        # One lockstep pass over both layers (not one pass per layer),
        # so event-time emissions stay monotone in document order.
        return self.filter_events(events_of_document(document))[0]

    def filter_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        """Filter a SAX event stream; one oid-set per document.

        All layers are driven incrementally from a single pass — the
        stream is never materialised, so infinite streams run in the
        bounded memory the machines' own memory manager provides.
        """
        handler = _LayerFanout(self)
        self._emit_doc = -1
        dispatch(iter(events), handler)
        return handler.answers

    def filter_stream(
        self, source: Union[str, bytes, IO[str], IO[bytes]], backend: str | None = None
    ) -> list[frozenset[str]]:
        """Parse and filter XML text on the push-mode fast path: the
        scanner drives both layer machines directly, no Event objects
        or per-layer buffering in between."""
        from repro.xmlstream.parser import parse_into

        handler = _LayerFanout(self)
        self._emit_doc = -1
        self.bytes_processed += parse_into(source, handler, backend=backend or self.backend)
        return handler.answers

    def filter_text(
        self, source: Union[str, bytes, IO[str], IO[bytes]]
    ) -> list[frozenset[str]]:
        """Historical alias for :meth:`filter_stream`."""
        return self.filter_stream(source)

    # ------------------------------------------------------------------
    # Persistence (Sec. 8 across restarts)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Capture base + delta + tombstones as a JSON-safe dict.

        The base ships as a compiled :mod:`repro.xpush.persist`
        workload — restoring skips XPath parsing and AFA compilation
        for the (large) base layer; the (small) delta ships as sources
        and is recompiled on restore.  A worker restarted from this
        snapshot resumes the exact workload version, uncompacted
        updates included.
        """
        from repro.xpush.persist import workload_to_json

        out: dict[str, Any] = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            # Compiled handlers (codegen) and bitmask tables are derived
            # data, rebuilt by finalize() on restore; recording the
            # runtime is enough to resume the same machine shape.  The
            # schema identity (mode + DTD fingerprint) is recorded the
            # same way: pruned tables are derived from the DTD, so the
            # snapshot names which DTD they must be re-derived from.
            "runtime": self.options.runtime,
            "schema_mode": self.options.schema_mode,
            "base": (
                workload_to_json(self._base.workload) if self._base is not None else None
            ),
            "delta": {oid: f.source for oid, f in self._delta_filters.items()},
            "tombstones": sorted(self._tombstones),
        }
        if self.options.schema_mode != "off" and self.dtd is not None:
            from repro.afa.schema import dtd_fingerprint

            out["schema_fingerprint"] = dtd_fingerprint(self.dtd)
        return out

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replace the current workload with a :meth:`snapshot` capture."""
        from repro.xpath.parser import parse_xpath
        from repro.xpush.persist import PersistError, workload_from_json

        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise PersistError("not a persisted layered engine snapshot")
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise PersistError(
                f"unsupported layered snapshot version {snapshot.get('version')!r}"
            )
        base_data = snapshot.get("base")
        delta_data = snapshot.get("delta") or {}
        tombstones = snapshot.get("tombstones") or []
        runtime = snapshot.get("runtime")
        if isinstance(runtime, str) and runtime != self.options.runtime:
            self.options = replace(self.options, runtime=runtime)
        mode = snapshot.get("schema_mode")
        if isinstance(mode, str):
            fingerprint = snapshot.get("schema_fingerprint")
            if isinstance(fingerprint, str) and mode != "off":
                from repro.afa.schema import dtd_fingerprint

                if self.dtd is None:
                    raise PersistError(
                        f"snapshot was built with schema specialization "
                        f"(mode={mode!r}) but the restoring engine has no DTD"
                    )
                actual = dtd_fingerprint(self.dtd)
                if actual != fingerprint:
                    raise PersistError(
                        "schema fingerprint mismatch: snapshot recorded "
                        f"{fingerprint[:12]}…, engine's DTD is {actual[:12]}…"
                    )
            if mode != self.options.schema_mode:
                self.options = replace(self.options, schema_mode=mode)
        if not isinstance(delta_data, Mapping) or not isinstance(tombstones, list):
            raise PersistError("malformed layered snapshot")
        if base_data is not None:
            base_workload = workload_from_json(base_data)
            base_filters = {
                afa.oid: parse_xpath(afa.source, afa.oid) for afa in base_workload.afas
            }
            base_machine: XPushMachine | None = self._machine_of(base_workload)
        else:
            base_filters = {}
            base_machine = None
        delta_filters = {
            oid: parse_xpath(source, oid) for oid, source in delta_data.items()
        }
        known = base_filters.keys() | delta_filters.keys()
        stale = [oid for oid in tombstones if oid not in known]
        if stale:
            raise PersistError(f"tombstones for unknown oids: {stale[:8]}")
        self._base_filters = base_filters
        self._delta_filters = delta_filters
        self._tombstones = set(tombstones)
        self._base = base_machine
        self._delta = self._build(list(delta_filters.values()))

    # ------------------------------------------------------------------
    # Warm-up, stats, lifecycle
    # ------------------------------------------------------------------

    def warm_up(self, seed: int = 0) -> int:
        """Warm the base layer over workload-derived training documents
        (Sec. 5); returns the number of training documents processed."""
        count = 0
        if self._base is not None:
            count += self._base.warm_up(seed=seed)
        if self._delta is not None:
            count += self._delta.warm_up(seed=seed)
        return count

    def stats(self) -> dict[str, Any]:
        base, delta = self._base, self._delta
        layers = [m for m in (base, delta) if m is not None]
        afa_states = sum(m.workload.state_count for m in layers)
        return {
            "engine": self.name,
            "filters": self.filter_count,
            "base_filters": len(self._base_filters),
            "delta_filters": len(self._delta_filters),
            "tombstones": len(self._tombstones),
            "base_states": base.state_count if base else 0,
            "delta_states": delta.state_count if delta else 0,
            "insertions": self.insertions,
            "compactions": self.compactions,
            "hit_ratio": base.stats.hit_ratio if base else 0.0,
            # Cross-layer aggregates, named as the serial machine names
            # them so composite (sharded/broker) stats read uniformly.
            "afa_states": afa_states,
            "xpush_states": sum(m.state_count for m in layers),
            # Uniform placement gauge block: one layered engine is one
            # "shard" carrying its whole automaton weight.
            "shard_load": [float(afa_states)],
            "imbalance": 1.0,
            "events": sum(m.stats.events for m in layers),
            "bytes_processed": self.bytes_processed,
            "resident_bytes": sum(m.store.resident_bytes for m in layers),
            "table_entries": sum(m.store.table_entries for m in layers),
            "evictions": sum(m.stats.evictions for m in layers),
            "gc_states": sum(m.stats.gc_states for m in layers),
            "flushes": sum(m.stats.flushes for m in layers),
            "runtime": self.options.runtime,
            # Compile cost is per-layer (the base layer's handlers are
            # reused across delta rebuilds, so the sum stays flat until
            # a compaction regenerates the base).
            "codegen_compile_ms": sum(m.stats.codegen_compile_ms for m in layers),
            "codegen_handlers": sum(m.stats.codegen_handlers for m in layers),
            "codegen_fallbacks": sum(m.stats.codegen_fallbacks for m in layers),
            "schema_mode": self.options.schema_mode,
            "schema_pruned_states": sum(m.stats.schema_pruned_states for m in layers),
            "schema_pruned_edges": sum(m.stats.schema_pruned_edges for m in layers),
            "schema_fallbacks": sum(m.stats.schema_fallbacks for m in layers),
        }

    def close(self) -> None:
        """Release the layer machines; the engine can be restored or
        rebuilt through updates afterwards."""
        self._base = None
        self._delta = None
        self._base_filters = {}
        self._delta_filters = {}
        self._tombstones = set()
