"""Workload updates without full recomputation (Sec. 8).

The paper sketches two ways to update the XPath workload:

1. **Brute force** — reset the lazy machine and restart with empty
   tables ("equivalent to flushing an entire cache");
2. **Layered insertion** — "To insert a new XPath filter, build a new
   XPush machine on top of the old XPush machine and the new XPath
   expression.  The states in the new XPush machine are very small:
   they contain at most one state from the old XPush machine and a few
   AFA states from the new XPath filter."

:class:`LayeredFilterEngine` realises the second idea with an
equivalent factored construction: the established workload keeps its
fully-warmed *base* machine, and filters inserted since the last
compaction live in a small *delta* machine.  A composite state of the
paper's layered machine is exactly a pair (base state, delta state);
running the two machines side by side over the same event stream
maintains precisely those pairs without materialising the product, and
the answer is the union of the layers' answers.  The expensive, warmed
base tables are never touched by an insertion.

Deletions are tombstones (dropped from answers immediately); calling
:meth:`compact` folds the delta and the tombstones into a fresh base
(the brute-force path, amortised to once per epoch).
"""

from __future__ import annotations

from typing import IO, Iterable

from repro.afa.build import build_workload_automata
from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xmlstream.dom import Document
from repro.xmlstream.events import Event, events_of_document
from repro.xmlstream.parser import iterparse
from repro.xpath.ast import XPathFilter
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions


class LayeredFilterEngine:
    """An updatable filtering engine: base layer + insertion layer.

    >>> engine = LayeredFilterEngine.from_xpath({"a": "//x"})
    >>> engine.insert("b", "//y[z = 1]")
    >>> sorted(engine.filter_text("<y><z>1</z></y>")[0])
    ['b']
    """

    def __init__(
        self,
        filters: list[XPathFilter],
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        compact_threshold: int = 64,
    ):
        self.options = options or XPushOptions()
        self.dtd = dtd
        #: Insertions accumulated since the last compaction.
        self.compact_threshold = compact_threshold
        self._base_filters: dict[str, XPathFilter] = {}
        for xpath_filter in filters:
            if xpath_filter.oid in self._base_filters:
                raise WorkloadError(f"duplicate oid {xpath_filter.oid!r}")
            self._base_filters[xpath_filter.oid] = xpath_filter
        self._delta_filters: dict[str, XPathFilter] = {}
        self._tombstones: set[str] = set()
        self._base = self._build(list(self._base_filters.values()))
        self._delta: XPushMachine | None = None
        self.compactions = 0
        self.insertions = 0

    @classmethod
    def from_xpath(
        cls,
        sources: dict[str, str],
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
    ) -> "LayeredFilterEngine":
        from repro.xpath.parser import parse_workload

        return cls(parse_workload(sources), options, dtd)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, oid: str, xpath: str) -> None:
        """Add a filter; only the small delta machine is rebuilt, the
        warmed base machine and all its states survive untouched."""
        if oid in self._base_filters or oid in self._delta_filters:
            if oid not in self._tombstones:
                raise WorkloadError(f"oid {oid!r} already subscribed")
        from repro.xpath.parser import parse_xpath

        self._tombstones.discard(oid)
        self._delta_filters[oid] = parse_xpath(xpath, oid)
        self._delta = self._build(list(self._delta_filters.values()))
        self.insertions += 1
        if len(self._delta_filters) >= self.compact_threshold:
            self.compact()

    def remove(self, oid: str) -> None:
        """Delete a filter.  Cheap: a tombstone filters the answers; the
        machines are untouched until the next compaction."""
        if oid not in self._base_filters and oid not in self._delta_filters:
            raise WorkloadError(f"unknown oid {oid!r}")
        if oid in self._tombstones:
            raise WorkloadError(f"oid {oid!r} already removed")
        self._tombstones.add(oid)

    def compact(self) -> None:
        """Fold delta and tombstones into a fresh base machine — the
        paper's brute-force reset, amortised over an epoch of updates."""
        merged = {**self._base_filters, **self._delta_filters}
        for oid in self._tombstones:
            merged.pop(oid, None)
        self._base_filters = merged
        self._delta_filters = {}
        self._tombstones = set()
        self._base = self._build(list(merged.values()))
        self._delta = None
        self.compactions += 1

    def _build(self, filters: list[XPathFilter]) -> XPushMachine | None:
        if not filters:
            return None
        from dataclasses import replace

        # Layer answers are merged and returned per call; the layer
        # machines must not retain their own unbounded copies.
        return XPushMachine(
            build_workload_automata(filters),
            replace(self.options, retain_results=False),
            dtd=self.dtd,
        )

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    @property
    def filter_count(self) -> int:
        return (
            len(self._base_filters)
            + len(self._delta_filters)
            - len(self._tombstones)
        )

    def filter_document(self, document: Document) -> frozenset[str]:
        matched: set[str] = set()
        if self._base is not None:
            matched |= self._base.filter_document(document)
        if self._delta is not None:
            matched |= self._delta.filter_document(document)
        matched -= self._tombstones
        return frozenset(matched)

    def filter_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        events = list(events)
        layers = [m for m in (self._base, self._delta) if m is not None]
        if not layers:
            count = sum(1 for e in events if type(e).__name__ == "EndDocument")
            return [frozenset()] * count
        answers = [machine.process_events(iter(events)) for machine in layers]
        out = []
        for per_doc in zip(*answers):
            merged: set[str] = set()
            for part in per_doc:
                merged |= part
            out.append(frozenset(merged - self._tombstones))
        return out

    def filter_text(self, source: str | bytes | IO) -> list[frozenset[str]]:
        return self.filter_events(iterparse(source))

    def stats(self) -> dict:
        return {
            "base_filters": len(self._base_filters),
            "delta_filters": len(self._delta_filters),
            "tombstones": len(self._tombstones),
            "base_states": self._base.state_count if self._base else 0,
            "delta_states": self._delta.state_count if self._delta else 0,
            "insertions": self.insertions,
            "compactions": self.compactions,
        }
