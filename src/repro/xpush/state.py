"""Interned XPush states and their transition tables (Sec. 4).

The paper represents an XPush state as "a sorted array of AFA states,
plus a 32 bit signature (hash value)", with all discovered states stored
"in a hash table indexed by their signature", and the six transition
functions as arrays of hash tables hanging off the states.  This module
is the Python equivalent, in two interchangeable representations:

- **sets** (the reference spec): a bottom-up state is interned by its
  sorted tuple of AFA sids, a top-down state by its frozenset of
  *enabled* sids;
- **bitmask** (the compiled runtime): a state set is a single Python
  int with bit *sid* set, interned by that int — an O(1) hash with no
  sorting and no tuple allocation on the cold path.  The ``sids`` /
  ``sid_set`` views are materialised lazily from the mask, so repr,
  tracing and statistics keep working unchanged.

- a bottom-up state (:class:`XPushState`) carries its ``t_pop`` and
  ``t_badd`` memo tables, the precomputed ``t_accept`` answer and the
  early-notification payload;
- a top-down state (:class:`XPushTopState`) carries its ``t_push`` and
  ``t_value`` memo tables (without top-down pruning there is exactly
  one, matching the paper's single-``qt0`` bottom-up machine);
- :class:`StateStore` is the signature-indexed intern table; it also
  carries the counters (states created, sizes) behind Figs. 6/7/10/11.

Interning means state identity *is* set equality, so every memo table
can key on the interned object's ``uid`` — each SAX event costs a few
dict probes once the relevant states exist, which is the O(1) per-event
claim of Sec. 3.1.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.afa.automaton import CompiledMasks, bits_of

_EMPTY_OIDS: frozenset[str] = frozenset()


class XPushState:
    """One interned bottom-up state: a set of matched AFA subqueries."""

    __slots__ = (
        "uid",
        "mask",
        "size",
        "_sids",
        "_sid_set",
        "pop_table",
        "add_table",
        "accepts",
        "contains_terminal",
    )

    def __init__(
        self,
        uid: int,
        sids: tuple[int, ...] | None = None,
        accepts: frozenset[str] = _EMPTY_OIDS,
        contains_terminal: bool = False,
        mask: int | None = None,
    ):
        self.uid = uid
        self.mask = mask  # int in the bitmask runtime, else None
        self._sids = sids  # sorted tuple — the paper's sorted array
        self._sid_set: frozenset[int] | None = None
        self.size = mask.bit_count() if mask is not None else len(sids)
        # t_pop memo: pop key -> (resulting state, oids notified early)
        self.pop_table: dict[Hashable, tuple["XPushState", frozenset[str]]] = {}
        # t_badd memo: other state uid -> resulting state
        self.add_table: dict[Hashable, "XPushState"] = {}
        self.accepts = accepts  # t_accept, precomputed at intern time
        self.contains_terminal = contains_terminal

    @property
    def sids(self) -> tuple[int, ...]:
        """Sorted sid tuple (materialised lazily from the mask)."""
        sids = self._sids
        if sids is None:
            sids = self._sids = bits_of(self.mask)
        return sids

    @property
    def sid_set(self) -> frozenset[int]:
        sid_set = self._sid_set
        if sid_set is None:
            sid_set = self._sid_set = frozenset(self.sids)
        return sid_set

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        preview = ",".join(str(s) for s in self.sids[:8])
        if len(self.sids) > 8:
            preview += ",…"
        return f"<Qb#{self.uid} {{{preview}}}>"


class XPushTopState:
    """One interned top-down state: the set of *enabled* AFA states.

    ``sids`` is None in the unpruned machine — the single top-down state
    ``qt0`` of Sec. 3.2, where every AFA state counts as enabled.  In
    the bitmask runtime a pruned state is identified by ``mask`` and the
    frozenset view is materialised lazily.
    """

    __slots__ = ("uid", "mask", "_sids", "push_table", "value_table")

    def __init__(
        self,
        uid: int,
        sids: frozenset[int] | None = None,
        mask: int | None = None,
    ):
        self.uid = uid
        self.mask = mask
        self._sids = sids
        self.push_table: dict[str, "XPushTopState"] = {}  # t_push memo
        self.value_table: dict[Hashable, "XPushState"] = {}  # t_value memo

    @property
    def sids(self) -> frozenset[int] | None:
        sids = self._sids
        if sids is None and self.mask is not None:
            sids = self._sids = frozenset(bits_of(self.mask))
        return sids

    def enables(self, sid: int) -> bool:
        mask = self.mask
        if mask is not None:
            return bool((mask >> sid) & 1)
        sids = self._sids
        return sids is None or sid in sids

    def __repr__(self) -> str:
        if self.mask is None and self._sids is None:
            return f"<Qt#{self.uid} ALL>"
        return f"<Qt#{self.uid} |{len(self.sids)}|>"


class StateStore:
    """Intern tables for bottom-up and top-down states, with counters.

    With ``masks`` (a :class:`~repro.afa.automaton.CompiledMasks`), the
    ``*_mask`` intern methods are available and states hash by their
    mask int; without it the store is the plain set-keyed table.  One
    store only ever uses one representation.
    """

    def __init__(
        self,
        accepts_of,
        terminal_sids: frozenset[int],
        masks: CompiledMasks | None = None,
    ):
        """``accepts_of(sids)`` computes t_accept for a new set-keyed
        state; *terminal_sids* flags states containing predicate
        terminals (used for the no-mixed-content rule)."""
        self._accepts_of = accepts_of
        self._terminal_sids = terminal_sids
        self._masks = masks
        self._bottom: dict[Hashable, XPushState] = {}
        self._top: dict[Hashable, XPushTopState] = {}
        self.bottom_size_total = 0  # sum of |state| over created states
        self.empty = (
            self.intern_bottom_mask(0) if masks is not None else self.intern_bottom(())
        )

    # -- bottom-up -------------------------------------------------------

    def intern_bottom(self, sids: Iterable[int]) -> XPushState:
        key = tuple(sorted(sids))
        state = self._bottom.get(key)
        if state is None:
            contains_terminal = any(sid in self._terminal_sids for sid in key)
            state = XPushState(len(self._bottom), key, self._accepts_of(key), contains_terminal)
            self._bottom[key] = state
            self.bottom_size_total += len(key)
        return state

    def intern_bottom_mask(self, mask: int) -> XPushState:
        """Intern by bitmask: one dict probe on an int key — no sorting,
        no tuple allocation (the compiled runtime's cold-path win)."""
        state = self._bottom.get(mask)
        if state is None:
            masks = self._masks
            state = XPushState(
                len(self._bottom),
                accepts=masks.accepted_oids(mask),
                contains_terminal=bool(mask & masks.terminal_mask),
                mask=mask,
            )
            self._bottom[mask] = state
            self.bottom_size_total += state.size
        return state

    @property
    def bottom_count(self) -> int:
        return len(self._bottom)

    @property
    def average_bottom_size(self) -> float:
        """Average number of AFA states per XPush state (Figs. 7/11)."""
        if not self._bottom:
            return 0.0
        return self.bottom_size_total / len(self._bottom)

    def bottom_states(self) -> list[XPushState]:
        return list(self._bottom.values())

    # -- top-down --------------------------------------------------------

    def intern_top(self, sids: frozenset[int] | None) -> XPushTopState:
        state = self._top.get(sids)
        if state is None:
            state = XPushTopState(len(self._top), sids)
            self._top[sids] = state
        return state

    def intern_top_mask(self, mask: int) -> XPushTopState:
        state = self._top.get(mask)
        if state is None:
            state = XPushTopState(len(self._top), mask=mask)
            self._top[mask] = state
        return state

    @property
    def top_count(self) -> int:
        return len(self._top)

    def reset(self) -> None:
        """Drop every state and table — the paper's "brute force" update
        path (Sec. 8): equivalent to flushing an entire cache."""
        self._bottom.clear()
        self._top.clear()
        self.bottom_size_total = 0
        self.empty = (
            self.intern_bottom_mask(0)
            if self._masks is not None
            else self.intern_bottom(())
        )
