"""Interned XPush states and their transition tables (Sec. 4).

The paper represents an XPush state as "a sorted array of AFA states,
plus a 32 bit signature (hash value)", with all discovered states stored
"in a hash table indexed by their signature", and the six transition
functions as arrays of hash tables hanging off the states.  This module
is the Python equivalent, in two interchangeable representations:

- **sets** (the reference spec): a bottom-up state is interned by its
  sorted tuple of AFA sids, a top-down state by its frozenset of
  *enabled* sids;
- **bitmask** (the compiled runtime): a state set is a single Python
  int with bit *sid* set, interned by that int — an O(1) hash with no
  sorting and no tuple allocation on the cold path.  The ``sids`` /
  ``sid_set`` views are materialised lazily from the mask, so repr,
  tracing and statistics keep working unchanged.

- a bottom-up state (:class:`XPushState`) carries its ``t_pop`` and
  ``t_badd`` memo tables, the precomputed ``t_accept`` answer and the
  early-notification payload;
- a top-down state (:class:`XPushTopState`) carries its ``t_push`` and
  ``t_value`` memo tables (without top-down pruning there is exactly
  one, matching the paper's single-``qt0`` bottom-up machine);
- :class:`StateStore` is the signature-indexed intern table; it also
  carries the counters (states created, sizes) behind Figs. 6/7/10/11
  and the byte-level memory accounting behind the Sec. 6 memory
  manager (``resident_bytes`` / ``table_entries``).

Interning means state identity *is* set equality, so every memo table
can key on the interned object's ``uid`` — each SAX event costs a few
dict probes once the relevant states exist, which is the O(1) per-event
claim of Sec. 3.1.  Uids are drawn from monotonic counters (never
reused), so a memo entry keyed on an evicted state's uid can go stale
but can never alias a later state.

Memory accounting is an estimate, deliberately cheap: interning a state
adds a calibrated per-object cost plus 8 bytes per member sid, and
every memo-table insertion adds :data:`ENTRY_BYTES` (a dict slot plus
the small key/value objects a typical entry owns).  The estimates are
calibrated from ``sys.getsizeof`` at import time, and the incremental
bookkeeping is checked against a from-scratch :meth:`StateStore.recount`
walk by the test suite.
"""

from __future__ import annotations

import sys
from typing import Hashable, Iterable

from repro.afa.automaton import CompiledMasks, bits_of

_EMPTY_OIDS: frozenset[str] = frozenset()


def _dict_slot_bytes() -> int:
    probe: dict = {}
    baseline = sys.getsizeof(probe)
    for i in range(1024):
        probe[i] = None
    return max(32, (sys.getsizeof(probe) - baseline) // 1024)


#: Estimated bytes per memo-table entry: one dict slot (amortised over
#: the table's load factor) plus a typical key object and, for t_pop,
#: the (state, notified) result tuple.
ENTRY_BYTES = _dict_slot_bytes() + 72

#: Bytes per AFA sid a state contains (a tuple/frozenset slot, or the
#: amortised share of the intern key and mask digits).
SID_BYTES = 8


class XPushState:
    """One interned bottom-up state: a set of matched AFA subqueries."""

    __slots__ = (
        "uid",
        "mask",
        "size",
        "ref",
        "_sids",
        "_sid_set",
        "pop_table",
        "add_table",
        "_accepts",
        "_masks",
        "contains_terminal",
    )

    def __init__(
        self,
        uid: int,
        sids: tuple[int, ...] | None = None,
        accepts: frozenset[str] = _EMPTY_OIDS,
        contains_terminal: bool = False,
        mask: int | None = None,
        masks: CompiledMasks | None = None,
    ):
        self.uid = uid
        self.mask = mask  # int in the bitmask runtime, else None
        self._sids = sids  # sorted tuple — the paper's sorted array
        self._sid_set: frozenset[int] | None = None
        self.size = mask.bit_count() if mask is not None else len(sids)
        self.ref = True  # CLOCK reference bit (second-chance eviction)
        # t_pop memo: pop key -> (resulting state, oids notified early)
        self.pop_table: dict[Hashable, tuple["XPushState", frozenset[str]]] = {}
        # t_badd memo: other state uid -> resulting state
        self.add_table: dict[Hashable, "XPushState"] = {}
        # t_accept: precomputed for set-keyed states, lazy for mask-
        # keyed ones — almost every interned state is intermediate and
        # never asked for its accepts (only the document-root set is,
        # at endDocument), so computing it per intern is wasted cold-
        # path work.
        self._accepts = accepts if masks is None else None
        self._masks = masks
        self.contains_terminal = contains_terminal

    @property
    def accepts(self) -> frozenset[str]:
        """t_accept — the oids of filters this set accepts."""
        accepts = self._accepts
        if accepts is None:
            accepts = self._accepts = self._masks.accepted_oids(self.mask)
        return accepts

    @property
    def sids(self) -> tuple[int, ...]:
        """Sorted sid tuple (materialised lazily from the mask)."""
        sids = self._sids
        if sids is None:
            sids = self._sids = bits_of(self.mask)
        return sids

    @property
    def sid_set(self) -> frozenset[int]:
        sid_set = self._sid_set
        if sid_set is None:
            sid_set = self._sid_set = frozenset(self.sids)
        return sid_set

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        preview = ",".join(str(s) for s in self.sids[:8])
        if len(self.sids) > 8:
            preview += ",…"
        return f"<Qb#{self.uid} {{{preview}}}>"


class XPushTopState:
    """One interned top-down state: the set of *enabled* AFA states.

    ``sids`` is None in the unpruned machine — the single top-down state
    ``qt0`` of Sec. 3.2, where every AFA state counts as enabled.  In
    the bitmask runtime a pruned state is identified by ``mask`` and the
    frozenset view is materialised lazily.
    """

    __slots__ = ("uid", "mask", "ref", "_sids", "push_table", "value_table")

    def __init__(
        self,
        uid: int,
        sids: frozenset[int] | None = None,
        mask: int | None = None,
    ):
        self.uid = uid
        self.mask = mask
        self._sids = sids
        self.ref = True  # CLOCK reference bit (second-chance eviction)
        self.push_table: dict[str, "XPushTopState"] = {}  # t_push memo
        self.value_table: dict[Hashable, "XPushState"] = {}  # t_value memo

    @property
    def sids(self) -> frozenset[int] | None:
        sids = self._sids
        if sids is None and self.mask is not None:
            sids = self._sids = frozenset(bits_of(self.mask))
        return sids

    @property
    def size(self) -> int:
        if self.mask is not None:
            return self.mask.bit_count()
        return len(self._sids) if self._sids is not None else 0

    def enables(self, sid: int) -> bool:
        mask = self.mask
        if mask is not None:
            return bool((mask >> sid) & 1)
        sids = self._sids
        return sids is None or sid in sids

    def __repr__(self) -> str:
        if self.mask is None and self._sids is None:
            return f"<Qt#{self.uid} ALL>"
        return f"<Qt#{self.uid} |{len(self.sids)}|>"


#: Calibrated per-object base costs (slotted instance + two tables).
BOTTOM_STATE_BYTES = sys.getsizeof(XPushState(0, ())) + 2 * sys.getsizeof({})
TOP_STATE_BYTES = sys.getsizeof(XPushTopState(0)) + 2 * sys.getsizeof({})


def _bottom_cost(state: XPushState) -> int:
    return BOTTOM_STATE_BYTES + SID_BYTES * state.size


def _top_cost(state: XPushTopState) -> int:
    return TOP_STATE_BYTES + SID_BYTES * state.size


class StateStore:
    """Intern tables for bottom-up and top-down states, with counters.

    With ``masks`` (a :class:`~repro.afa.automaton.CompiledMasks`), the
    ``*_mask`` intern methods are available and states hash by their
    mask int; without it the store is the plain set-keyed table.  One
    store only ever uses one representation.

    The store also keeps the memory manager's books: ``resident_bytes``
    estimates the bytes held by interned states plus memo-table
    entries, ``table_entries`` counts live entries.  The machine calls
    :meth:`note_entries` when it inserts an entry; eviction and GC go
    through :meth:`evict_state_tables` and :meth:`collect_garbage` so
    the books stay balanced.
    """

    def __init__(
        self,
        accepts_of,
        terminal_sids: frozenset[int],
        masks: CompiledMasks | None = None,
    ):
        """``accepts_of(sids)`` computes t_accept for a new set-keyed
        state; *terminal_sids* flags states containing predicate
        terminals (used for the no-mixed-content rule)."""
        self._accepts_of = accepts_of
        self._terminal_sids = terminal_sids
        self._masks = masks
        self._bottom: dict[Hashable, XPushState] = {}
        self._top: dict[Hashable, XPushTopState] = {}
        self.bottom_size_total = 0  # sum of |state| over resident states
        # Uids never restart (a reused uid would alias stale memo keys).
        self._next_bottom_uid = 0
        self._next_top_uid = 0
        self.resident_bytes = 0
        self.table_entries = 0
        self.empty = (
            self.intern_bottom_mask(0) if masks is not None else self.intern_bottom(())
        )

    # -- memory accounting ----------------------------------------------

    def note_entries(self, count: int = 1) -> None:
        """Record *count* memo-table insertions (machine cold path)."""
        self.table_entries += count
        self.resident_bytes += count * ENTRY_BYTES

    def drop_entries(self, count: int) -> None:
        self.table_entries -= count
        self.resident_bytes -= count * ENTRY_BYTES

    def evict_state_tables(self, state: XPushState | XPushTopState) -> int:
        """Clear one state's memo tables; returns the entries dropped."""
        if isinstance(state, XPushState):
            dropped = len(state.pop_table) + len(state.add_table)
            state.pop_table.clear()
            state.add_table.clear()
        else:
            dropped = len(state.push_table) + len(state.value_table)
            state.push_table.clear()
            state.value_table.clear()
        if dropped:
            self.drop_entries(dropped)
        return dropped

    def prune_removed_entries(
        self, state: XPushState | XPushTopState, removed: set[int]
    ) -> int:
        """Drop one state's memo entries whose target is in *removed*
        (a set of ``id()``\\ s of deported states); returns the entries
        dropped.  Without this, surviving entries would pin the
        deported states' payloads live — the accounting gauge would
        fall while the actual heap did not."""
        dropped = 0
        if isinstance(state, XPushState):
            pop = state.pop_table
            stale = [key for key, (target, _n) in pop.items() if id(target) in removed]
            for key in stale:
                del pop[key]
            dropped += len(stale)
            add = state.add_table
            stale = [key for key, target in add.items() if id(target) in removed]
            for key in stale:
                del add[key]
            dropped += len(stale)
        else:
            push = state.push_table
            stale = [key for key, target in push.items() if id(target) in removed]
            for key in stale:
                del push[key]
            dropped += len(stale)
            value = state.value_table
            stale = [key for key, target in value.items() if id(target) in removed]
            for key in stale:
                del value[key]
            dropped += len(stale)
        if dropped:
            self.drop_entries(dropped)
        return dropped

    def state_cost(self, state: XPushState | XPushTopState) -> int:
        """Estimated bytes the state object itself pins (base cost plus
        sid payload) — the share of ``resident_bytes`` that only
        :meth:`collect_garbage` can reclaim.  The sweep uses this to
        *project* the post-GC resident while walking the clock ring:
        table eviction alone barely moves ``resident_bytes`` (sid
        payloads dominate), so stopping on the raw gauge would walk the
        whole ring and degenerate into a full flush."""
        if isinstance(state, XPushState):
            return _bottom_cost(state)
        return _top_cost(state)

    def sweep_epoch(
        self, roots: Iterable, low: int, bottom_hand: int, top_hand: int
    ) -> tuple[int, int, int, int]:
        """One CLOCK epoch over both intern rings, fused into two
        passes; returns ``(entries_dropped, states_dropped,
        bottom_hand, top_hand)``.

        Pass 1 deports cold states (reference bit clear since the
        previous epoch): starting after each ring's *hand* and stopping
        as soon as ``resident_bytes`` reaches *low*, a cold state loses
        its memo tables and its intern slot — where the real memory
        lives, in the sid payloads.  The target cap and the rotating
        hand are what make this a second-chance policy rather than a
        purge: a cold state the target spares keeps its tables, and
        wins them back outright if probed before the hand comes around
        again.  *roots* (registers and the intern seeds) are never
        deported.

        Pass 2 runs only if anything was deported: it drops every
        surviving memo entry whose target left the ring — without this
        the entries would pin the deported payloads live (the gauge
        would fall but the heap would not) — and clears the surviving
        reference bits, opening the next epoch.  No mark-and-sweep
        reachability walk is needed: deportation is explicit, so "gone"
        is exactly the deported set."""
        keep = {id(root) for root in roots if root is not None}
        removed_ids: set[int] = set()
        dropped = 0
        for ring_is_bottom in (True, False):
            if self.resident_bytes <= low:
                break
            table = self._bottom if ring_is_bottom else self._top
            cost = _bottom_cost if ring_is_bottom else _top_cost
            hand = bottom_hand if ring_is_bottom else top_hand
            states = list(table.values())
            count = len(states)
            start = 0
            for i, state in enumerate(states):  # uids are in insertion order
                if state.uid > hand:
                    start = i
                    break
            for i in range(count):
                if self.resident_bytes <= low:
                    break
                state = states[(start + i) % count]
                hand = state.uid
                if state.ref or id(state) in keep:
                    continue
                dropped += self.evict_state_tables(state)
                del table[state.mask if state.mask is not None else state.sids]
                self.resident_bytes -= cost(state)
                if ring_is_bottom:
                    self.bottom_size_total -= state.size
                removed_ids.add(id(state))
            if ring_is_bottom:
                bottom_hand = hand
            else:
                top_hand = hand
        for state in self._bottom.values():
            if removed_ids:
                dropped += self.prune_removed_entries(state, removed_ids)
            state.ref = False
        for state in self._top.values():
            if removed_ids:
                dropped += self.prune_removed_entries(state, removed_ids)
            state.ref = False
        return dropped, len(removed_ids), bottom_hand, top_hand

    def collect_garbage(self, roots: Iterable) -> int:
        """Mark-and-sweep over the intern tables: drop every state not
        reachable from *roots* through the surviving memo entries.
        Returns the number of states removed.  Memo entries keyed on a
        removed state's uid stay behind harmlessly — uids are never
        reused, so they can only go cold and be evicted later."""
        marked: set[int] = set()
        stack = [root for root in roots if root is not None]
        while stack:
            state = stack.pop()
            ident = id(state)
            if ident in marked:
                continue
            marked.add(ident)
            if isinstance(state, XPushState):
                for target, _notified in state.pop_table.values():
                    stack.append(target)
                stack.extend(state.add_table.values())
            else:
                stack.extend(state.push_table.values())
                stack.extend(state.value_table.values())
        removed = 0
        for key, state in list(self._bottom.items()):
            if id(state) not in marked:
                self.evict_state_tables(state)
                del self._bottom[key]
                self.resident_bytes -= _bottom_cost(state)
                self.bottom_size_total -= state.size
                removed += 1
        for key, state in list(self._top.items()):
            if id(state) not in marked:
                self.evict_state_tables(state)
                del self._top[key]
                self.resident_bytes -= _top_cost(state)
                removed += 1
        return removed

    def recount(self) -> tuple[int, int]:
        """(table_entries, resident_bytes) recomputed from scratch — the
        invariant the incremental bookkeeping must match (tests)."""
        entries = 0
        bytes_ = 0
        for state in self._bottom.values():
            entries += len(state.pop_table) + len(state.add_table)
            bytes_ += _bottom_cost(state)
        for state in self._top.values():
            entries += len(state.push_table) + len(state.value_table)
            bytes_ += _top_cost(state)
        return entries, bytes_ + entries * ENTRY_BYTES

    # -- bottom-up -------------------------------------------------------

    def intern_bottom(self, sids: Iterable[int]) -> XPushState:
        key = tuple(sorted(sids))
        state = self._bottom.get(key)
        if state is None:
            contains_terminal = any(sid in self._terminal_sids for sid in key)
            state = XPushState(
                self._next_bottom_uid, key, self._accepts_of(key), contains_terminal
            )
            self._next_bottom_uid += 1
            self._bottom[key] = state
            self.bottom_size_total += len(key)
            self.resident_bytes += _bottom_cost(state)
        else:
            state.ref = True
        return state

    def intern_bottom_mask(self, mask: int) -> XPushState:
        """Intern by bitmask: one dict probe on an int key — no sorting,
        no tuple allocation (the compiled runtime's cold-path win)."""
        state = self._bottom.get(mask)
        if state is None:
            masks = self._masks
            state = XPushState(
                self._next_bottom_uid,
                contains_terminal=bool(mask & masks.terminal_mask),
                mask=mask,
                masks=masks,
            )
            self._next_bottom_uid += 1
            self._bottom[mask] = state
            self.bottom_size_total += state.size
            self.resident_bytes += _bottom_cost(state)
        else:
            state.ref = True
        return state

    @property
    def bottom_count(self) -> int:
        return len(self._bottom)

    @property
    def average_bottom_size(self) -> float:
        """Average number of AFA states per XPush state (Figs. 7/11)."""
        if not self._bottom:
            return 0.0
        return self.bottom_size_total / len(self._bottom)

    def bottom_states(self) -> list[XPushState]:
        return list(self._bottom.values())

    # -- top-down --------------------------------------------------------

    def intern_top(self, sids: frozenset[int] | None) -> XPushTopState:
        state = self._top.get(sids)
        if state is None:
            state = XPushTopState(self._next_top_uid, sids)
            self._next_top_uid += 1
            self._top[sids] = state
            self.resident_bytes += _top_cost(state)
        else:
            state.ref = True
        return state

    def intern_top_mask(self, mask: int) -> XPushTopState:
        state = self._top.get(mask)
        if state is None:
            state = XPushTopState(self._next_top_uid, mask=mask)
            self._next_top_uid += 1
            self._top[mask] = state
            self.resident_bytes += _top_cost(state)
        else:
            state.ref = True
        return state

    @property
    def top_count(self) -> int:
        return len(self._top)

    def top_states(self) -> list[XPushTopState]:
        return list(self._top.values())

    def reset(self) -> None:
        """Drop every state and table — the paper's "brute force" update
        path (Sec. 8): equivalent to flushing an entire cache."""
        self._bottom.clear()
        self._top.clear()
        self.bottom_size_total = 0
        self.resident_bytes = 0
        self.table_entries = 0
        self.empty = (
            self.intern_bottom_mask(0)
            if self._masks is not None
            else self.intern_bottom(())
        )
