"""Interned XPush states and their transition tables (Sec. 4).

The paper represents an XPush state as "a sorted array of AFA states,
plus a 32 bit signature (hash value)", with all discovered states stored
"in a hash table indexed by their signature", and the six transition
functions as arrays of hash tables hanging off the states.  This module
is the Python equivalent:

- a bottom-up state (:class:`XPushState`) is an interned sorted tuple of
  AFA sids with its ``t_pop`` and ``t_badd`` memo tables, plus the
  precomputed ``t_accept`` answer and the early-notification payload;
- a top-down state (:class:`XPushTopState`) is an interned frozenset of
  *enabled* AFA sids with its ``t_push`` and ``t_value`` memo tables
  (without top-down pruning there is exactly one, matching the paper's
  single-``qt0`` bottom-up machine);
- :class:`StateStore` is the signature-indexed intern table; it also
  carries the counters (states created, sizes) behind Figs. 6/7/10/11.

Interning means state identity *is* set equality, so every memo table
can key on the interned object's ``uid`` — each SAX event costs a few
dict probes once the relevant states exist, which is the O(1) per-event
claim of Sec. 3.1.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class XPushState:
    """One interned bottom-up state: a set of matched AFA subqueries."""

    __slots__ = (
        "uid",
        "sids",
        "sid_set",
        "pop_table",
        "add_table",
        "accepts",
        "contains_terminal",
    )

    def __init__(self, uid: int, sids: tuple[int, ...], accepts: frozenset[str], contains_terminal: bool):
        self.uid = uid
        self.sids = sids  # sorted tuple — the paper's sorted array
        self.sid_set = frozenset(sids)
        # t_pop memo: pop key -> (resulting state, oids notified early)
        self.pop_table: dict[Hashable, tuple["XPushState", frozenset[str]]] = {}
        # t_badd memo: other state uid -> resulting state
        self.add_table: dict[Hashable, "XPushState"] = {}
        self.accepts = accepts  # t_accept, precomputed at intern time
        self.contains_terminal = contains_terminal

    def __len__(self) -> int:
        return len(self.sids)

    def __repr__(self) -> str:
        preview = ",".join(str(s) for s in self.sids[:8])
        if len(self.sids) > 8:
            preview += ",…"
        return f"<Qb#{self.uid} {{{preview}}}>"


class XPushTopState:
    """One interned top-down state: the set of *enabled* AFA states.

    ``sids`` is None in the unpruned machine — the single top-down state
    ``qt0`` of Sec. 3.2, where every AFA state counts as enabled.
    """

    __slots__ = ("uid", "sids", "push_table", "value_table")

    def __init__(self, uid: int, sids: frozenset[int] | None):
        self.uid = uid
        self.sids = sids
        self.push_table: dict[str, "XPushTopState"] = {}  # t_push memo
        self.value_table: dict[Hashable, "XPushState"] = {}  # t_value memo

    def enables(self, sid: int) -> bool:
        return self.sids is None or sid in self.sids

    def __repr__(self) -> str:
        if self.sids is None:
            return f"<Qt#{self.uid} ALL>"
        return f"<Qt#{self.uid} |{len(self.sids)}|>"


class StateStore:
    """Intern tables for bottom-up and top-down states, with counters."""

    def __init__(self, accepts_of, terminal_sids: frozenset[int]):
        """``accepts_of(sids)`` computes t_accept for a new state;
        *terminal_sids* flags states containing predicate terminals
        (used for the no-mixed-content rule)."""
        self._accepts_of = accepts_of
        self._terminal_sids = terminal_sids
        self._bottom: dict[tuple[int, ...], XPushState] = {}
        self._top: dict[frozenset[int] | None, XPushTopState] = {}
        self.bottom_size_total = 0  # sum of |state| over created states
        self.empty = self.intern_bottom(())

    # -- bottom-up -------------------------------------------------------

    def intern_bottom(self, sids: Iterable[int]) -> XPushState:
        key = tuple(sorted(sids))
        state = self._bottom.get(key)
        if state is None:
            contains_terminal = any(sid in self._terminal_sids for sid in key)
            state = XPushState(len(self._bottom), key, self._accepts_of(key), contains_terminal)
            self._bottom[key] = state
            self.bottom_size_total += len(key)
        return state

    @property
    def bottom_count(self) -> int:
        return len(self._bottom)

    @property
    def average_bottom_size(self) -> float:
        """Average number of AFA states per XPush state (Figs. 7/11)."""
        if not self._bottom:
            return 0.0
        return self.bottom_size_total / len(self._bottom)

    def bottom_states(self) -> list[XPushState]:
        return list(self._bottom.values())

    # -- top-down --------------------------------------------------------

    def intern_top(self, sids: frozenset[int] | None) -> XPushTopState:
        state = self._top.get(sids)
        if state is None:
            state = XPushTopState(len(self._top), sids)
            self._top[sids] = state
        return state

    @property
    def top_count(self) -> int:
        return len(self._top)

    def reset(self) -> None:
        """Drop every state and table — the paper's "brute force" update
        path (Sec. 8): equivalent to flushing an entire cache."""
        self._bottom.clear()
        self._top.clear()
        self.bottom_size_total = 0
        self.empty = self.intern_bottom(())
