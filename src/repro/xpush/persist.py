"""Persisting compiled workloads.

Compiling tens of thousands of XPath filters into AFAs is the one-time
cost a broker pays at startup; this module serialises a compiled
:class:`~repro.afa.automaton.WorkloadAutomata` to a JSON document so a
restarted broker can skip re-parsing and re-compiling the workload.
The format is versioned, self-contained and pickle-free (safe to load
from untrusted storage: it is plain data validated on load).

The lazily-built machine *states* are deliberately not persisted — they
are a cache (Sec. 7's framing) and re-warm quickly; training (Sec. 5)
exists precisely to rebuild them cheaply.  The same goes for the
compiled bitmask tables (:class:`~repro.afa.automaton.CompiledMasks`)
and the codegen runtime's generated handler functions
(:mod:`repro.afa.codegen`): both are derived data, rebuilt
deterministically from the finalized workload on load, so the JSON
format needs no new fields and old snapshots keep loading under every
runtime unchanged.  (Engine-level snapshots additionally record which
*runtime* was active so a restored engine rebuilds the same machine
shape — but never the generated code itself.)

Memory-manager state (the Sec. 6 watermark bookkeeping: resident-byte
estimates, clock hands, reference bits) is likewise not persisted: it
describes the transient cache, not the workload.  A machine rebuilt
from a snapshot starts with fresh books and re-converges under the same
``max_memory_bytes`` bound.
"""

from __future__ import annotations

import json
from typing import IO

from repro.afa.automaton import AFA, AfaState, StateKind, WorkloadAutomata
from repro.afa.predicates import AtomicPredicate
from repro.errors import ReproError

FORMAT_VERSION = 1


class PersistError(ReproError):
    """Raised when a persisted workload cannot be decoded."""


def _predicate_to_json(predicate: AtomicPredicate | None):
    if predicate is None:
        return None
    return {"op": predicate.op, "constant": predicate.constant}


def _predicate_from_json(data) -> AtomicPredicate | None:
    if data is None:
        return None
    return AtomicPredicate(data["op"], data.get("constant"))


def workload_to_json(workload: WorkloadAutomata) -> dict:
    """A JSON-compatible dict capturing the compiled workload."""
    return {
        "format": "repro-workload",
        "version": FORMAT_VERSION,
        "states": [
            {
                "kind": state.kind.name,
                "predicate": _predicate_to_json(state.predicate),
                "edges": {label: targets for label, targets in state.edges.items()},
                "eps": list(state.eps),
                "top": sorted(state.top_labels),
            }
            for state in workload.states
        ],
        "afas": [
            {
                "oid": afa.oid,
                "initial": afa.initial,
                "source": afa.source,
                "states": list(afa.state_sids),
                "notification": afa.notification,
            }
            for afa in workload.afas
        ],
    }


def workload_from_json(data: dict) -> WorkloadAutomata:
    """Rebuild a compiled workload; inverse of :func:`workload_to_json`."""
    if not isinstance(data, dict) or data.get("format") != "repro-workload":
        raise PersistError("not a persisted repro workload")
    if data.get("version") != FORMAT_VERSION:
        raise PersistError(f"unsupported workload format version {data.get('version')!r}")
    workload = WorkloadAutomata()
    try:
        for entry in data["states"]:
            state = workload.new_state(
                StateKind[entry["kind"]], _predicate_from_json(entry["predicate"])
            )
            for label, targets in entry["edges"].items():
                for target in targets:
                    state.add_edge(label, int(target))
            state.eps.extend(int(sid) for sid in entry["eps"])
            state.top_labels.update(entry["top"])
        for index, entry in enumerate(data["afas"]):
            afa = AFA(
                oid=entry["oid"],
                initial=int(entry["initial"]),
                source=entry.get("source", ""),
                state_sids=tuple(int(s) for s in entry["states"]),
                notification=int(entry.get("notification", -1)),
            )
            for sid in afa.state_sids:
                workload.states[sid].owner = index
            workload.afas.append(afa)
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise PersistError(f"malformed persisted workload: {error}") from None
    _validate(workload)
    return workload.finalize()


def _validate(workload: WorkloadAutomata) -> None:
    n = len(workload.states)
    for state in workload.states:
        for targets in state.edges.values():
            for target in targets:
                if not 0 <= target < n:
                    raise PersistError(f"edge target s{target} out of range")
        for child in state.eps:
            if not 0 <= child < n:
                raise PersistError(f"ε target s{child} out of range")
    oids = [afa.oid for afa in workload.afas]
    if len(set(oids)) != len(oids):
        raise PersistError("duplicate oids in persisted workload")
    for afa in workload.afas:
        if not 0 <= afa.initial < n:
            raise PersistError("initial state out of range")
    orphans = [state.sid for state in workload.states if state.owner < 0]
    if orphans:
        # Ownerless states would corrupt the per-filter owner masks the
        # bitmask runtime strips under early notification.
        raise PersistError(f"states without an owning AFA: {orphans[:8]}")


def save_engine_snapshot(snapshot: dict, target: str | IO) -> None:
    """Write an engine ``snapshot()`` capture (e.g. a layered engine's
    base + delta + tombstones) as JSON to a path or file object.

    This is the restart story of the update control plane: a worker or
    CLI session that dies with uncompacted updates resumes the exact
    workload version from this file via ``engine.restore(...)``."""
    if not isinstance(snapshot, dict) or not str(snapshot.get("format", "")).startswith(
        "repro-"
    ):
        raise PersistError("not an engine snapshot (missing repro format tag)")
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, separators=(",", ":"))
    else:
        json.dump(snapshot, target, separators=(",", ":"))


def load_engine_snapshot(source: str | IO) -> dict:
    """Read an engine snapshot written by :func:`save_engine_snapshot`.

    Only the envelope is validated here (it is plain data, safe to load
    from untrusted storage); the engine's ``restore()`` validates the
    payload it understands."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    if not isinstance(data, dict) or not str(data.get("format", "")).startswith(
        "repro-"
    ):
        raise PersistError("not an engine snapshot (missing repro format tag)")
    return data


def save_workload(workload: WorkloadAutomata, target: str | IO) -> None:
    """Write the compiled workload as JSON to a path or file object."""
    payload = workload_to_json(workload)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
    else:
        json.dump(payload, target, separators=(",", ":"))


def load_workload(source: str | IO) -> WorkloadAutomata:
    """Read a compiled workload from a path or file object."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    return workload_from_json(data)
