"""Training the XPush machine (Sec. 5).

"We generate one XML document tree D for every XPath query tree P:
atomic predicates are replaced with values that satisfy them, and label
constants are replaced with elements or attributes.  Wildcards * and //
are expanded using the DTD, and boolean connectors are simply ignored.
… The DTD is also consulted to generate the elements in the right
order.  All such generated documents are concatenated and the result is
called training data."

Running the lazy machine over this data precomputes many of the states
the real data will need — including all the ``t_value`` states, which
is why the paper's TD+train variants recover the cost of not being able
to precompute the predicate index under top-down pruning (Sec. 7).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterator

from repro.afa.automaton import WorkloadAutomata
from repro.xmlstream.dom import Document, Element
from repro.xmlstream.dtd import DTD, ContentParticle
from repro.xmlstream.writer import stream_to_xml
from repro.xpath.ast import (
    Axis,
    Comparison,
    Exists,
    LocationPath,
    NodeTestKind,
    Step,
    iter_predicates,
)
from repro.xpath.parser import parse_xpath


def satisfying_value(op: str, constant) -> str:
    """A value that makes ``value op constant`` true."""
    if isinstance(constant, (int, float)):
        number = constant
        if op in ("=", "<=", ">="):
            value = number
        elif op == ">":
            value = number + 1
        elif op in ("<", "!="):
            value = number - 1
        else:  # pragma: no cover - guarded by the AST
            raise ValueError(f"numeric constant with operator {op!r}")
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return str(value)
    if op in ("=", "<=", ">=", "contains"):
        return constant
    if op == ">":
        return constant + "z"
    if op == "starts-with":
        return constant + "0"
    if op in ("<", "!="):
        return "!" + constant[:1] if constant else "!"
    raise ValueError(f"string constant with operator {op!r}")  # pragma: no cover


class _TrainingBuilder:
    """Builds one training document per filter."""

    def __init__(self, dtd: DTD | None, rng: random.Random):
        self.dtd = dtd
        self.rng = rng
        self.children_map = dtd.children_map() if dtd else {}
        self._rank_cache: dict[str, dict[str, int]] = {}
        self.root: Element | None = None

    # -- DTD helpers ----------------------------------------------------

    def _bfs_path(self, source: str | None, target: str) -> list[str] | None:
        """Labels strictly between *source* and *target* (exclusive of
        both), following the DTD child relation; None when unreachable.
        A None source means the virtual document root."""
        if not self.dtd:
            return []
        start = self.dtd.root if source is None else source
        if source is None and target == start:
            return []
        parents: dict[str, str] = {}
        queue: deque[str] = deque([start])
        seen = {start}
        while queue:
            label = queue.popleft()
            for child in self.children_map.get(label, ()):
                if child in seen:
                    continue
                parents[child] = label
                if child == target:
                    chain: list[str] = []
                    cursor = label
                    while cursor != start:
                        chain.append(cursor)
                        cursor = parents[cursor]
                    chain.reverse()
                    if source is None:
                        chain.insert(0, start)
                    return chain
                seen.add(child)
                queue.append(child)
        return None

    def _pick_child_label(self, context: Element | None) -> str:
        if self.dtd:
            if context is None:
                return self.dtd.root
            allowed = sorted(self.children_map.get(context.label, ()))
            if allowed:
                return self.rng.choice(allowed)
        return "any"

    def _child_rank(self, parent_label: str) -> dict[str, int]:
        ranks = self._rank_cache.get(parent_label)
        if ranks is not None:
            return ranks
        ranks = {}
        if self.dtd and parent_label in self.dtd.elements:
            position = 0
            stack = [self.dtd.elements[parent_label].content]
            order: list[ContentParticle] = []
            while stack:
                particle = stack.pop(0)
                if particle.kind == "element":
                    if particle.label not in ranks:
                        ranks[particle.label] = position
                        position += 1
                elif particle.kind in ("seq", "choice"):
                    stack = list(particle.children) + stack
        self._rank_cache[parent_label] = ranks
        return ranks

    # -- document assembly ----------------------------------------------

    def build(self, path: LocationPath) -> Document | None:
        self.root = None
        self._walk(None, list(path.steps), None)
        if self.root is None:
            return None
        self._sort_children(self.root)
        return Document(self.root)

    def _attach(self, context: Element | None, label: str) -> Element:
        node = Element(label)
        if context is None:
            if self.root is None:
                self.root = node
                return node
            # A second top-level element cannot exist; nest under root.
            self.root.children.append(node)
            return node
        context.children.append(node)
        return node

    def _walk(self, context: Element | None, steps: list[Step], value: str | None) -> None:
        if not steps:
            if value is not None and context is not None and not context.children:
                context.text = value
            return
        step, rest = steps[0], steps[1:]
        kind = step.test.kind

        if step.axis is Axis.SELF:
            self._apply_predicates(context, step)
            self._walk(context, rest, value)
            return

        if kind is NodeTestKind.TEXT:
            if context is not None:
                context.text = value if value is not None else "0"
            return

        if kind in (NodeTestKind.ATTRIBUTE, NodeTestKind.ATTRIBUTE_WILDCARD):
            if context is None:
                return  # attributes cannot hang off the virtual root
            name = step.test.name[1:] if kind is NodeTestKind.ATTRIBUTE else "any"
            context.attributes.append((name, value if value is not None else "0"))
            return

        if kind is NodeTestKind.WILDCARD:
            label = self._pick_child_label(context)
        else:
            label = step.test.name

        cursor = context
        if step.axis is Axis.DESCENDANT:
            chain = self._bfs_path(context.label if context else None, label)
            for intermediate in chain or []:
                cursor = self._attach(cursor, intermediate)
        node = self._attach(cursor, label)
        self._apply_predicates(node, step)
        if not rest and value is not None and not node.children:
            node.text = value
        self._walk(node, rest, value)

    def _apply_predicates(self, node: Element | None, step: Step) -> None:
        if node is None:
            return
        for predicate in step.predicates:
            for atom in iter_predicates(predicate):
                if isinstance(atom, Comparison):
                    self._walk(node, list(atom.path.steps), satisfying_value(atom.op, atom.value))
                elif isinstance(atom, Exists):
                    self._walk(node, list(atom.path.steps), None)

    def _sort_children(self, node: Element) -> None:
        ranks = self._child_rank(node.label)
        if ranks:
            node.children.sort(key=lambda child: ranks.get(child.label, len(ranks)))
        for child in node.children:
            self._sort_children(child)


def training_documents(
    workload: WorkloadAutomata,
    dtd: DTD | None = None,
    rng: random.Random | None = None,
) -> Iterator[Document]:
    """One training document per filter in the workload (Sec. 5).

    Filters are recovered from the AFA ``source`` strings; filters whose
    training tree degenerates (e.g. pure attribute filters) are skipped.
    """
    builder = _TrainingBuilder(dtd, rng or random.Random(0))
    for afa in workload.afas:
        if not afa.source:
            continue
        path = parse_xpath(afa.source).path
        document = builder.build(path)
        if document is not None:
            yield document


def training_stream(
    workload: WorkloadAutomata,
    dtd: DTD | None = None,
    rng: random.Random | None = None,
) -> str:
    """The concatenated training data as XML text."""
    return stream_to_xml(training_documents(workload, dtd, rng))
