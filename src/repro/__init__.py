"""repro — a reproduction of *Stream Processing of XPath Queries with
Predicates* (Gupta & Suciu, SIGMOD 2003): the **XPush Machine**.

The library evaluates large workloads of XPath boolean filters — each
possibly with many predicates — over streams of XML documents, sharing
work across both structure navigation *and* predicate evaluation by
lazily building a single deterministic pushdown automaton.

Quickstart::

    from repro import XPushMachine

    machine = XPushMachine.from_xpath({
        "o1": "//a[b/text()=1 and .//a[@c>2]]",
        "o2": "//a[@c>2 and b/text()=1]",
    })
    for matched in machine.filter_stream(xml_packets):
        print(matched)          # e.g. frozenset({'o1', 'o2'}) per document

Every engine variant — serial, layered, sharded, the baselines —
conforms to one :class:`~repro.engine.protocol.FilterEngine` protocol
and is built from an :class:`~repro.engine.config.EngineConfig`::

    from repro import EngineConfig, create_engine

    engine = create_engine(
        EngineConfig(engine="sharded", shards=4), {"q0": "//a[b = 1]"}
    )
    engine.subscribe("q1", "//c")       # live update, no table flush
    answers = engine.filter_stream(xml_packets)

See DESIGN.md for the system inventory, docs/architecture.md for the
engine surface and EXPERIMENTS.md for the figure-by-figure
reproduction record.
"""

from repro.broker import MessageBroker
from repro.engine import EngineConfig, FilterEngine, create_engine, engine_names
from repro.serving import FilterServer, ServerThread, ServingClient
from repro.service import ShardedFilterEngine
from repro.xmlstream.dom import Document, Element, parse_document, parse_forest
from repro.xmlstream.dtd import DTD
from repro.xmlstream.dtdparser import parse_dtd, parse_dtd_file
from repro.xmlstream.parser import iterparse
from repro.xpush.layered import LayeredFilterEngine
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.xpath.parser import parse_workload, parse_xpath
from repro.xpath.semantics import evaluate_filter, matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions, variant_options

__version__ = "1.0.0"

__all__ = [
    "DTD",
    "Document",
    "Element",
    "EngineConfig",
    "FilterEngine",
    "FilterServer",
    "GeneratorConfig",
    "LayeredFilterEngine",
    "MessageBroker",
    "QueryGenerator",
    "ServerThread",
    "ServingClient",
    "ShardedFilterEngine",
    "XPushMachine",
    "XPushOptions",
    "create_engine",
    "engine_names",
    "evaluate_filter",
    "iterparse",
    "matching_oids",
    "parse_document",
    "parse_dtd",
    "parse_dtd_file",
    "parse_forest",
    "parse_workload",
    "parse_xpath",
    "variant_options",
    "__version__",
]
