"""Baseline engines the paper contrasts the XPush machine with.

- :class:`repro.baselines.naive.NaiveEngine` — evaluate each filter
  separately on a DOM ("a naive approach … obviously doesn't scale");
- :class:`repro.baselines.xfilter.PerQueryEngine` — one automaton per
  query, all run in parallel over the stream, no sharing (the XFilter
  execution model: "it builds a separate FSM for each query; as a
  result it does not exploit commonality");
- :class:`repro.baselines.yfilter.SharedPathEngine` — common *path
  prefixes* shared in a trie, predicates evaluated separately per query
  against a materialised document (the YFilter model: navigation
  sharing only, "none of these systems detect common predicates"; note
  it needs "direct access to the XML document", the limitation Sec. 1
  points out for predicate-grouping approaches).

All three return exactly the reference semantics; the differential
tests hold every engine to the same answers.
"""

from repro.baselines.naive import NaiveEngine
from repro.baselines.xfilter import PerQueryEngine
from repro.baselines.yfilter import SharedPathEngine

__all__ = ["NaiveEngine", "PerQueryEngine", "SharedPathEngine"]
