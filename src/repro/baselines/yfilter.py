"""YFilter-style baseline: shared path navigation, separate predicates.

"YFilter detects all common prefixes, including wildcards and
descendant axes … None of these systems detect common predicates"
(Sec. 1).  This engine shares the *structure navigation* of the
workload in a prefix trie over the location steps (axis + node test),
exactly once per distinct prefix — but evaluates each query's
predicates **individually**, on a materialised document, at the nodes
its path binds.

Two properties make it the right foil for the XPush machine:

- work shared: navigation only.  A predicate like ``[b/text()=1]``
  common to two filters is evaluated twice;
- it requires the document in memory ("an important limitation … is
  that it requires direct access to the XML document", Sec. 1) — the
  engine builds a DOM per packet before matching.

Semantics are exact (differentially tested against the reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.xmlstream.dom import Document, parse_forest
from repro.xpath.ast import Axis, NodeTestKind, XPathFilter
from repro.xpath.semantics import _RootNode, _children, _descendants, _test_matches, _truth


@dataclass
class _TrieNode:
    """One shared location step; keyed by (axis, test kind, test name)."""

    children: dict[tuple, "_TrieNode"] = field(default_factory=dict)
    #: filters whose main path ends here: (oid, per-step predicate lists)
    anchors: list[tuple[str, tuple[tuple, ...]]] = field(default_factory=list)
    test: object = None  # NodeTest of the step leading to this node


class SharedPathEngine:
    """Prefix-shared navigation with per-query predicate evaluation."""

    name = "yfilter"

    def __init__(self, filters: Iterable[XPathFilter]):
        self.root = _TrieNode()
        self.query_count = 0
        self.shared_nodes = 0
        for xpath_filter in filters:
            self._insert(xpath_filter)

    def _insert(self, xpath_filter: XPathFilter) -> None:
        node = self.root
        predicate_lists = []
        for step in xpath_filter.path.steps:
            key = (step.axis, step.test.kind, step.test.name)
            nxt = node.children.get(key)
            if nxt is None:
                nxt = _TrieNode(test=step.test)
                node.children[key] = nxt
                self.shared_nodes += 1
            node = nxt
            predicate_lists.append(step.predicates)
        node.anchors.append((xpath_filter.oid, tuple(predicate_lists)))
        self.query_count += 1

    # ------------------------------------------------------------------

    def filter_document(self, document: Document) -> frozenset[str]:
        matched: set[str] = set()
        self._walk(self.root, _RootNode(document), [], matched)
        return frozenset(matched)

    def _walk(self, trie: _TrieNode, context, bindings: list, matched: set[str]) -> None:
        for (axis, _kind, _name), child in trie.children.items():
            if axis is Axis.SELF:
                candidates = (context,)
            elif axis is Axis.CHILD:
                candidates = _children(context)
            else:
                candidates = _descendants(context)
            test = child.test
            for candidate in candidates:
                if axis is not Axis.SELF and not _test_matches(test, candidate):
                    continue
                bindings.append(candidate)
                if child.anchors:
                    self._check_anchors(child, bindings, matched)
                if child.children:
                    self._walk(child, candidate, bindings, matched)
                bindings.pop()
                if not child.children and child.anchors and all(
                    oid in matched for oid, _ in child.anchors
                ):
                    break  # every query at this leaf already matched

    def _check_anchors(self, node: _TrieNode, bindings: list, matched: set[str]) -> None:
        for oid, predicate_lists in node.anchors:
            if oid in matched:
                continue
            # Evaluate this query's predicates — individually, at the
            # step each one is attached to (no sharing with any other
            # query, even for identical predicates).
            if all(
                _truth(predicate, bindings[i])
                for i, predicates in enumerate(predicate_lists)
                for predicate in predicates
            ):
                matched.add(oid)

    def filter_stream(self, source: str) -> list[frozenset[str]]:
        return [self.filter_document(doc) for doc in parse_forest(source)]
