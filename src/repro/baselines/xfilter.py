"""XFilter-style baseline: one automaton per query, no sharing.

"The XFilter system was the first to define the problem … It builds a
separate FSM for each query; as a result it does not exploit
commonality that exists among the path expressions" (Sec. 1, Related
Work).  This engine captures that execution model: each filter gets
its own alternating automaton and its own predicate index, and all of
them run the raw bottom-up stack algorithm over every SAX event with
no interning, no memoisation and no cross-query sharing.

Per event the cost is O(#queries), which is exactly why it loses to
the XPush machine as workloads grow — the comparison
``benchmarks/bench_baselines.py`` quantifies.
"""

from __future__ import annotations

from typing import IO, Iterable

from repro.afa.automaton import WorkloadAutomata
from repro.afa.build import build_workload_automata
from repro.afa.index import AtomicPredicateIndex
from repro.errors import MixedContentError
from repro.xmlstream.dom import Document
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    events_of_document,
)
from repro.xmlstream.parser import iterparse
from repro.xpath.ast import XPathFilter


class _QueryRunner:
    """The un-memoised bottom-up algorithm for a single filter."""

    __slots__ = ("workload", "index", "oid", "stack", "qb", "terminals")

    def __init__(self, xpath_filter: XPathFilter):
        self.workload: WorkloadAutomata = build_workload_automata([xpath_filter])
        self.oid = xpath_filter.oid
        self.index = AtomicPredicateIndex()
        for sid in self.workload.terminals:
            self.index.add(self.workload.states[sid].predicate, sid)
        self.index.freeze()
        self.terminals = frozenset(self.workload.terminals)
        self.stack: list[frozenset[int]] = []
        self.qb: frozenset[int] = frozenset()

    def start_document(self) -> None:
        self.stack = []
        self.qb = frozenset()

    def start_element(self, label: str) -> None:
        if self.qb & self.terminals:
            raise MixedContentError("mixed content")
        self.stack.append(self.qb)
        self.qb = frozenset()

    def text(self, value: str) -> None:
        self.qb = self.qb | self.index.lookup(value)

    def end_element(self, label: str) -> None:
        workload = self.workload
        evaluated = workload.eval_closure(self.qb)
        lifted = workload.delta_inverse(evaluated, label, label.startswith("@"))
        parent = self.stack.pop()
        self.qb = parent | lifted

    def matched(self) -> bool:
        return bool(self.workload.initial_sids & self.qb)


class PerQueryEngine:
    """Runs one independent automaton per filter over the stream."""

    name = "xfilter"

    def __init__(self, filters: Iterable[XPathFilter]):
        self.runners = [_QueryRunner(f) for f in filters]

    def process_events(self, events: Iterable[Event]) -> list[frozenset[str]]:
        results: list[frozenset[str]] = []
        runners = self.runners
        for event in events:
            kind = type(event)
            if kind is StartElement:
                for runner in runners:
                    runner.start_element(event.label)
            elif kind is Text:
                for runner in runners:
                    runner.text(event.value)
            elif kind is EndElement:
                for runner in runners:
                    runner.end_element(event.label)
            elif kind is StartDocument:
                for runner in runners:
                    runner.start_document()
            elif kind is EndDocument:
                results.append(
                    frozenset(r.oid for r in runners if r.matched())
                )
        return results

    def filter_document(self, document: Document) -> frozenset[str]:
        return self.process_events(events_of_document(document))[0]

    def filter_stream(self, source: str | bytes | IO) -> list[frozenset[str]]:
        return self.process_events(iterparse(source))
