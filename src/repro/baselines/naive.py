"""The naive baseline: evaluate every filter on every document.

Sec. 1: "A naive approach to query evaluation, which computes each
query separately, obviously doesn't scale."  This engine is that
approach — the reference evaluator applied per (filter, document) —
and doubles as the ground truth in the differential tests.
"""

from __future__ import annotations

from typing import IO, Iterable

from repro.xmlstream.dom import Document, parse_forest
from repro.xpath.ast import XPathFilter
from repro.xpath.semantics import evaluate_filter


class NaiveEngine:
    """Per-query, per-document DOM evaluation."""

    name = "naive"

    def __init__(self, filters: Iterable[XPathFilter]):
        self.filters = list(filters)

    def filter_document(self, document: Document) -> frozenset[str]:
        return frozenset(
            f.oid for f in self.filters if evaluate_filter(f, document)
        )

    def filter_stream(self, text: str) -> list[frozenset[str]]:
        return [self.filter_document(doc) for doc in parse_forest(text)]
