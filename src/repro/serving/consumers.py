"""Per-consumer delivery queues with backpressure policies.

Every subscriber of the serving tier owns one :class:`Consumer`: a
bounded asyncio delivery queue plus the policy applied when a producer
finds it full (the *high watermark*).  The policies mirror the three
classic answers to a slow consumer in a pub/sub broker:

- ``"block"`` — the publisher coroutine waits for space.  Backpressure
  propagates to the publishing connection (its ack is delayed), while
  other consumers keep receiving — fan-out to each consumer is an
  independent await.
- ``"drop_oldest"`` — the oldest undelivered event is discarded to make
  room (counted in ``dropped``); the publisher never waits.
- ``"evict"`` — the consumer itself is closed with a reason, on the
  theory that a consumer this far behind will never catch up; a
  connection attached in push mode receives a final close frame.

Delivery is pull (``get_batch`` — the long-poll verb) or push (the
server pumps the queue into an attached connection); both drain the
same queue, so a consumer may long-poll, then attach, then poll again.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from repro.errors import ServingError, WorkloadError

#: Accepted slow-consumer policies.
POLICIES = ("block", "drop_oldest", "evict")


class ConsumerClosed(ServingError):
    """Raised to a waiter when the consumer is closed/evicted under it."""


class Consumer:
    """One subscriber's delivery queue and counters.

    Not thread-safe: every method runs on the server's event loop.
    """

    def __init__(
        self,
        name: str,
        policy: str = "block",
        high_watermark: int = 256,
        payload: bool = False,
    ):
        if policy not in POLICIES:
            raise WorkloadError(
                f"unknown slow-consumer policy {policy!r}; known: {sorted(POLICIES)}"
            )
        if high_watermark < 1:
            raise WorkloadError(f"high_watermark must be >= 1, got {high_watermark}")
        self.name = name
        self.policy = policy
        self.high_watermark = high_watermark
        self.payload = payload
        self.closed = False
        self.close_reason: str | None = None
        self.enqueued = 0
        self.delivered = 0
        self.dropped = 0
        self.polls = 0
        self._queue: deque[dict[str, Any]] = deque()
        self._readable = asyncio.Event()
        self._writable = asyncio.Event()
        self._writable.set()

    # -- producer side -------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._queue)

    async def offer(self, event: dict[str, Any]) -> bool:
        """Enqueue one delivery, applying the slow-consumer policy.

        Returns False when the event was not enqueued because the
        consumer is (or just became) closed.
        """
        if self.closed:
            return False
        if len(self._queue) >= self.high_watermark:
            if self.policy == "drop_oldest":
                while len(self._queue) >= self.high_watermark:
                    self._queue.popleft()
                    self.dropped += 1
            elif self.policy == "evict":
                self.close("slow_consumer")
                return False
            else:  # block
                while len(self._queue) >= self.high_watermark:
                    self._writable.clear()
                    await self._writable.wait()
                    if self.closed:
                        return False
        self._queue.append(event)
        self.enqueued += 1
        self._readable.set()
        return True

    # -- consumer side -------------------------------------------------

    async def get_batch(
        self, max_events: int = 64, timeout: float | None = None
    ) -> list[dict[str, Any]]:
        """Up to *max_events* pending deliveries, waiting up to
        *timeout* seconds when the queue is empty (the long-poll).

        Raises :class:`ConsumerClosed` when the consumer was evicted or
        closed and its queue is fully drained — pending events are
        always handed out before the closure is reported.
        """
        self.polls += 1
        if not self._queue and not self.closed:
            self._readable.clear()
            try:
                await asyncio.wait_for(self._readable.wait(), timeout)
            except asyncio.TimeoutError:
                return []
        if not self._queue:
            if self.closed:
                raise ConsumerClosed(
                    f"consumer {self.name!r} closed ({self.close_reason})"
                )
            return []
        batch = []
        while self._queue and len(batch) < max_events:
            batch.append(self._queue.popleft())
        self.delivered += len(batch)
        self._writable.set()  # wake blocked producers
        if not self._queue and not self.closed:
            self._readable.clear()
        return batch

    def close(self, reason: str = "closed") -> None:
        """Close the consumer; idempotent.  Pending events stay readable
        until drained, waiters are woken so they observe the closure."""
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        self._readable.set()
        self._writable.set()

    @property
    def evicted(self) -> bool:
        return self.closed and self.close_reason == "slow_consumer"

    def stats(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "high_watermark": self.high_watermark,
            "depth": self.depth,
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "polls": self.polls,
            "closed": self.closed,
            "evicted": self.evicted,
            "close_reason": self.close_reason,
        }
