"""The network serving tier: many publishers, many subscribers, one
engine — the paper's "large number of clients" made literal.

    from repro.engine import EngineConfig
    from repro.serving import FilterServer, ServerThread, ServingClient

    server = FilterServer(config=EngineConfig(engine="layered"),
                          filters={"q0": "//a[b = 1]"})
    with ServerThread(server) as handle:
        with ServingClient(*handle.address) as client:
            client.subscribe("q1", "//c", consumer="alice")
            answers = client.publish("<a><b>1</b></a><c/>")
            inbox = client.poll("alice", timeout=1.0)["events"]

Layers (bottom up): :mod:`repro.serving.protocol` (length-prefixed JSON
frames), :mod:`repro.serving.consumers` (per-subscriber queues and
slow-consumer policies), :mod:`repro.serving.server` (the asyncio
``FilterServer`` + verb dispatch), :mod:`repro.serving.http` (the plain
HTTP adapter on the same port), :mod:`repro.serving.client` (sync and
async clients), :mod:`repro.serving.runner` (background-thread runner).
See ``docs/serving.md`` for the wire protocol and operational model.
"""

from repro.serving.client import AsyncServingClient, ServingClient
from repro.serving.consumers import POLICIES, Consumer, ConsumerClosed
from repro.serving.protocol import (
    MAX_FRAME,
    Frame,
    FrameDecoder,
    decode_body,
    encode_frame,
)
from repro.serving.runner import ServerThread
from repro.serving.server import FilterServer

__all__ = [
    "AsyncServingClient",
    "Consumer",
    "ConsumerClosed",
    "FilterServer",
    "Frame",
    "FrameDecoder",
    "MAX_FRAME",
    "POLICIES",
    "ServerThread",
    "ServingClient",
    "decode_body",
    "encode_frame",
]
