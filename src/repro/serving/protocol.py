"""The wire protocol of the serving tier: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  The framing
layer knows nothing about verbs — :mod:`repro.serving.server` gives the
objects meaning — so the same codec carries publishes, control verbs,
acks and delivery events in both directions.

Design points, each pinned by ``tests/serving/test_protocol.py``:

- **Incremental**: :class:`FrameDecoder` accepts arbitrary byte chunks
  (``feed``), so frames may straddle TCP segment boundaries anywhere,
  including in the middle of a multi-byte UTF-8 sequence — the decoder
  buffers raw bytes and decodes only complete frames.
- **Error containment**: a frame whose *body* is malformed (bad JSON,
  bad UTF-8, or a non-object payload) raises a *recoverable*
  :class:`~repro.errors.ProtocolError` — the frame boundary is still
  trustworthy, so the connection skips the bad frame and keeps
  decoding.  A broken *length prefix* (larger than ``max_frame``)
  poisons the framing itself and raises an unrecoverable error.
- **Bounded**: ``max_frame`` caps the declared length before any
  allocation happens, so a hostile 4-GiB prefix cannot balloon memory.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import ProtocolError

#: Default cap on one frame's body, in bytes.  Large enough for any
#: document the filtering engines are meant to see in one publish.
MAX_FRAME = 64 * 1024 * 1024

_PREFIX = struct.Struct("!I")
PREFIX_SIZE = _PREFIX.size

Frame = dict[str, Any]


def encode_frame(payload: Frame) -> bytes:
    """*payload* as one wire frame (length prefix + UTF-8 JSON body)."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    try:
        body = json.dumps(payload, ensure_ascii=False, separators=(",", ":")).encode(
            "utf-8"
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"frame payload is not JSON-safe: {error}") from None
    if len(body) > 0xFFFFFFFF:
        raise ProtocolError(f"frame body too large for the wire: {len(body)} bytes")
    return _PREFIX.pack(len(body)) + body


def decode_body(body: bytes) -> Frame:
    """One frame body back into its payload object.

    Raises a *recoverable* :class:`ProtocolError` on a malformed body:
    the caller already knows where the frame ends, so it can drop this
    frame and continue with the next one.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"malformed frame body: {error}", recoverable=True) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}",
            recoverable=True,
        )
    return payload


class FrameDecoder:
    """Incremental frame decoder: bytes in, payload objects out.

    ``feed(chunk)`` buffers *chunk* and returns every frame completed by
    it.  A recoverable body error is raised *after* the offending frame
    has been consumed from the buffer, so calling ``feed(b"")`` (or the
    next real chunk) resumes cleanly with the following frame — the
    connection survives.  An unrecoverable framing error leaves the
    decoder poisoned: every later call re-raises.
    """

    def __init__(self, max_frame: int = MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._ready: list[Frame] = []
        self._poisoned: ProtocolError | None = None

    @property
    def buffered(self) -> int:
        """Bytes held for an incomplete frame (mid-frame when > 0)."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Frame]:
        """Decode every frame completed by *chunk*, in order.

        When a recoverable error is raised, frames decoded before it in
        the same chunk are *retained* and returned by the next call —
        one bad frame never swallows its well-formed neighbours.
        """
        if self._poisoned is not None:
            raise self._poisoned
        self._buffer.extend(chunk)
        while len(self._buffer) >= PREFIX_SIZE:
            (length,) = _PREFIX.unpack_from(self._buffer)
            if length > self.max_frame:
                self._poisoned = ProtocolError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte bound", recoverable=False,
                )
                raise self._poisoned
            end = PREFIX_SIZE + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[PREFIX_SIZE:end])
            del self._buffer[:end]
            # decode_body raises *after* the frame left the buffer, so
            # the stream position stays valid for the next feed().
            self._ready.append(decode_body(body))
        frames = self._ready
        self._ready = []
        return frames

    def feed_all(self, chunk: bytes) -> tuple[list[Frame], list[ProtocolError]]:
        """Like :meth:`feed`, but collects recoverable errors instead of
        raising, so one bad frame does not hide the good ones around it.
        Unrecoverable errors still raise."""
        frames: list[Frame] = []
        errors: list[ProtocolError] = []
        remaining: bytes = chunk
        while True:
            try:
                frames.extend(self.feed(remaining))
                return frames, errors
            except ProtocolError as error:
                if not error.recoverable:
                    raise
                errors.append(error)
                remaining = b""
