"""Run a :class:`FilterServer` on a background thread.

Synchronous code — the test wall, the benchmarks, an application that
is not itself async — needs a live server without owning an event
loop.  :class:`ServerThread` runs one loop on a daemon thread, starts
the server there, and exposes thread-safe start/stop; used as a context
manager it guarantees the loop dies with the block:

    server = FilterServer(config=EngineConfig(engine="layered"))
    with ServerThread(server) as handle:
        client = ServingClient(*handle.address)
        ...

Stopping performs the server's graceful drain *on the loop* before the
loop is shut down, so in-flight publishes finish and attached consumers
get their close frames.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.errors import ServingError
from repro.serving.server import FilterServer


class ServerThread:
    """Own one event loop on a daemon thread and run *server* on it."""

    def __init__(self, server: FilterServer, start_timeout: float = 10.0):
        self.server = server
        self._start_timeout = start_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise ServingError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serving", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise ServingError("server thread failed to start in time")
        if self._startup_error is not None:
            raise ServingError(f"server failed to start: {self._startup_error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:  # noqa: BLE001 - reported to starter
                self._startup_error = error
                return
            finally:
                self._ready.set()
            loop.run_forever()
        finally:
            # Drain callbacks scheduled during stop(), then close.
            try:
                loop.run_until_complete(asyncio.sleep(0))
            except RuntimeError:  # pragma: no cover - loop already closing
                pass
            asyncio.set_event_loop(None)
            loop.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def port(self) -> int:
        return self.server.port

    def run_coroutine(self, coro: Any, timeout: float = 30.0) -> Any:
        """Run *coro* on the server's loop; returns its result."""
        if self._loop is None:
            raise ServingError("server thread is not running")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def stats(self, timeout: float = 30.0) -> dict[str, Any]:
        return dict(self.run_coroutine(self.server.stats(), timeout))

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Gracefully stop the server, then the loop and the thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive() and self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain, timeout=timeout), loop
            )
            try:
                future.result(timeout + 5.0)
            except (TimeoutError, Exception):  # noqa: BLE001 - stop must not raise
                pass
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
