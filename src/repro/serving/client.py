"""Clients for the serving tier: one sync, one asyncio.

Both speak the framed TCP protocol (:mod:`repro.serving.protocol`) and
expose the same verbs the server dispatches; replies arrive strictly in
request order on a connection, so no correlation ids are needed.
:class:`ServingClient` is the blocking client used by the CLI, the
benchmarks and (from worker threads) the test wall;
:class:`AsyncServingClient` adds push-mode ``attach`` delivery for code
already living on an event loop.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, AsyncIterator

from repro.errors import ProtocolError, ServingError
from repro.serving.protocol import (
    MAX_FRAME,
    Frame,
    FrameDecoder,
    encode_frame,
)

_READ_CHUNK = 65536


def _check(reply: Frame) -> Frame:
    if not reply.get("ok", False):
        raise ServingError(
            f"server error ({reply.get('kind', 'ServingError')}): "
            f"{reply.get('error', 'unknown')}"
        )
    return reply


def _result_sets(reply: Frame) -> list[frozenset[str]]:
    return [frozenset(matched) for matched in reply.get("results", [])]


class ServingClient:
    """Blocking client over one framed TCP connection (thread-safe:
    requests are serialized by an internal lock)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder(MAX_FRAME)
        self._pending: list[Frame] = []
        self._lock = threading.Lock()

    # -- plumbing ------------------------------------------------------

    def _read_frame(self, timeout: float | None = None) -> Frame:
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        while not self._pending:
            try:
                chunk = self._sock.recv(_READ_CHUNK)
            except socket.timeout:
                raise ServingError("timed out waiting for a server reply") from None
            if not chunk:
                raise ServingError("server closed the connection")
            self._pending.extend(self._decoder.feed(chunk))
        return self._pending.pop(0)

    def request(
        self, frame: Frame, *, timeout: float | None = None, check: bool = True
    ) -> Frame:
        """Send one verb frame, wait for its reply."""
        with self._lock:
            self._sock.sendall(encode_frame(frame))
            reply = self._read_frame(timeout)
        return _check(reply) if check else reply

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (protocol tests: malformed/partial frames)."""
        with self._lock:
            self._sock.sendall(data)

    def read_reply(self, *, timeout: float | None = None) -> Frame:
        """Read one server frame without sending anything first."""
        with self._lock:
            return self._read_frame(timeout)

    # -- verbs ---------------------------------------------------------

    def publish(self, xml: str) -> list[frozenset[str]]:
        """Filter *xml* on the server; one oid-set per document."""
        return _result_sets(self.publish_detail(xml))

    def publish_detail(self, xml: str) -> Frame:
        """The full publish ack: ``results``, ``epoch``, ``seq``."""
        return self.request({"op": "publish", "xml": xml})

    def subscribe(
        self,
        oid: str,
        xpath: str,
        consumer: str | None = None,
        **consumer_opts: Any,
    ) -> int:
        """Add a filter (optionally routed to *consumer*); returns the
        new workload epoch."""
        frame: Frame = {"op": "subscribe", "oid": oid, "xpath": xpath}
        if consumer is not None:
            frame["consumer"] = consumer
            frame.update(consumer_opts)
        return int(self.request(frame)["epoch"])

    def unsubscribe(self, oid: str) -> int:
        return int(self.request({"op": "unsubscribe", "oid": oid})["epoch"])

    def compact(self) -> int:
        return int(self.request({"op": "compact"})["epoch"])

    def create_consumer(
        self,
        name: str,
        policy: str | None = None,
        high_watermark: int | None = None,
        payload: bool = False,
    ) -> Frame:
        frame: Frame = {"op": "consume", "consumer": name, "payload": payload}
        if policy is not None:
            frame["policy"] = policy
        if high_watermark is not None:
            frame["high_watermark"] = high_watermark
        return self.request(frame)

    def poll(
        self, consumer: str, max_events: int = 64, timeout: float = 0.0
    ) -> Frame:
        """One long-poll round: ``{"events": [...], "closed": bool}``.
        The request timeout stretches to cover the server-side wait."""
        return self.request(
            {"op": "poll", "consumer": consumer, "max": max_events, "timeout": timeout},
            timeout=self.timeout + timeout,
        )

    def drain(self, consumer: str, timeout: float = 0.0) -> list[Frame]:
        """Every currently pending delivery for *consumer* (repeated
        polls until one comes back empty or closed)."""
        events: list[Frame] = []
        while True:
            reply = self.poll(consumer, timeout=timeout)
            events.extend(reply["events"])
            if reply.get("closed") or not reply["events"]:
                return events
            timeout = 0.0

    def stats(self) -> dict[str, Any]:
        return dict(self.request({"op": "stats"})["stats"])

    def ping(self) -> Frame:
        return self.request({"op": "ping"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncServingClient:
    """Asyncio client; same verbs, plus push-mode :meth:`attach`."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._decoder = FrameDecoder(MAX_FRAME)
        self._pending: list[Frame] = []
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServingClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        return client

    async def _read_frame(self) -> Frame:
        assert self._reader is not None
        while not self._pending:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                raise ServingError("server closed the connection")
            self._pending.extend(self._decoder.feed(chunk))
        return self._pending.pop(0)

    async def request(self, frame: Frame, *, check: bool = True) -> Frame:
        assert self._writer is not None
        async with self._lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
            reply = await self._read_frame()
        return _check(reply) if check else reply

    async def publish(self, xml: str) -> list[frozenset[str]]:
        return _result_sets(await self.publish_detail(xml))

    async def publish_detail(self, xml: str) -> Frame:
        return await self.request({"op": "publish", "xml": xml})

    async def subscribe(
        self,
        oid: str,
        xpath: str,
        consumer: str | None = None,
        **consumer_opts: Any,
    ) -> int:
        frame: Frame = {"op": "subscribe", "oid": oid, "xpath": xpath}
        if consumer is not None:
            frame["consumer"] = consumer
            frame.update(consumer_opts)
        return int((await self.request(frame))["epoch"])

    async def unsubscribe(self, oid: str) -> int:
        return int((await self.request({"op": "unsubscribe", "oid": oid}))["epoch"])

    async def compact(self) -> int:
        return int((await self.request({"op": "compact"}))["epoch"])

    async def create_consumer(
        self,
        name: str,
        policy: str | None = None,
        high_watermark: int | None = None,
        payload: bool = False,
    ) -> Frame:
        frame: Frame = {"op": "consume", "consumer": name, "payload": payload}
        if policy is not None:
            frame["policy"] = policy
        if high_watermark is not None:
            frame["high_watermark"] = high_watermark
        return await self.request(frame)

    async def poll(
        self, consumer: str, max_events: int = 64, timeout: float = 0.0
    ) -> Frame:
        return await self.request(
            {"op": "poll", "consumer": consumer, "max": max_events, "timeout": timeout}
        )

    async def stats(self) -> dict[str, Any]:
        return dict((await self.request({"op": "stats"}))["stats"])

    async def attach(self, consumer: str, **consumer_opts: Any) -> AsyncIterator[Frame]:
        """Switch this connection to push delivery for *consumer* and
        yield events until the server sends the close frame.  The
        connection carries deliveries only from here on — use a second
        client for verbs."""
        await self.request({"op": "attach", "consumer": consumer, **consumer_opts})
        while True:
            try:
                event = await self._read_frame()
            except (ServingError, ProtocolError):
                return
            if event.get("event") == "closed":
                return
            yield event

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
