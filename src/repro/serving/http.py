"""Minimal HTTP/1.1 adapter for the serving tier.

The stdlib-only counterpart of the frame protocol: the same verb
dispatch (:meth:`FilterServer.dispatch`), reachable with nothing but
``curl``.  One request per connection (``Connection: close``) keeps the
parser trivial; the long-poll endpoint holds the response open until
events arrive or the poll times out — the "websocket-style" delivery
path for clients that cannot keep a framed socket.

| Method, path | Verb |
|---|---|
| ``POST /publish`` (body = XML) | ``publish`` |
| ``POST /subscribe`` (JSON body: oid, xpath, consumer?) | ``subscribe`` |
| ``POST /unsubscribe`` (JSON body: oid) | ``unsubscribe`` |
| ``POST /compact`` | ``compact`` |
| ``POST /rebalance`` | ``rebalance`` (sharded engine only) |
| ``POST /consumers`` (JSON body: consumer, policy?, …) | ``consume`` |
| ``GET /poll?consumer=&timeout=&max=`` | ``poll`` (long-poll) |
| ``GET /stats`` | ``stats`` |
| ``GET /healthz`` | ``ping`` |
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.server import FilterServer

#: Largest accepted request head (request line + headers) and body.
MAX_HEAD = 64 * 1024
MAX_BODY = 64 * 1024 * 1024

_STATUS = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed"}


def _response(status: int, payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _query_frame(query: dict[str, list[str]]) -> dict[str, Any]:
    frame: dict[str, Any] = {}
    for key, values in query.items():
        value: Any = values[-1]
        if key in ("max", "high_watermark"):
            try:
                value = int(value)
            except ValueError:
                pass
        elif key == "timeout":
            try:
                value = float(value)
            except ValueError:
                pass
        elif key == "payload":
            value = value.lower() in ("1", "true", "yes")
        frame[key] = value
    return frame


async def handle_http(
    server: "FilterServer",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    first: bytes,
) -> None:
    """Serve one HTTP request on an accepted connection.  *first* is
    the already-sniffed leading byte of the method."""
    try:
        head = first + await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        writer.write(_response(400, {"ok": False, "error": "truncated request head"}))
        await writer.drain()
        return
    if len(head) > MAX_HEAD:
        writer.write(_response(400, {"ok": False, "error": "request head too large"}))
        await writer.drain()
        return
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        writer.write(_response(400, {"ok": False, "error": "malformed request line"}))
        await writer.drain()
        return
    headers = {}
    for line in header_lines:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            length = -1
    if length < 0 or length > MAX_BODY:
        writer.write(_response(400, {"ok": False, "error": "bad content length"}))
        await writer.drain()
        return
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            writer.write(_response(400, {"ok": False, "error": "truncated body"}))
            await writer.drain()
            return

    split = urlsplit(target)
    path = split.path.rstrip("/") or "/"
    query = parse_qs(split.query)
    status, payload = await _route(server, method.upper(), path, query, body)
    writer.write(_response(status, payload))
    await writer.drain()


async def _route(
    server: "FilterServer",
    method: str,
    path: str,
    query: dict[str, list[str]],
    body: bytes,
) -> tuple[int, dict[str, Any]]:
    frame = _query_frame(query)
    if path == "/publish":
        if method != "POST":
            return 405, {"ok": False, "error": "publish is POST"}
        try:
            frame["xml"] = body.decode("utf-8")
        except UnicodeDecodeError as error:
            return 400, {"ok": False, "error": f"body is not UTF-8: {error}"}
        frame["op"] = "publish"
    elif path in ("/subscribe", "/unsubscribe", "/compact", "/rebalance", "/consumers"):
        if method != "POST":
            return 405, {"ok": False, "error": f"{path} is POST"}
        if body:
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                return 400, {"ok": False, "error": f"bad JSON body: {error}"}
            if not isinstance(decoded, dict):
                return 400, {"ok": False, "error": "JSON body must be an object"}
            frame.update(decoded)
        frame["op"] = {"/consumers": "consume"}.get(path, path.lstrip("/"))
    elif path == "/poll":
        if method != "GET":
            return 405, {"ok": False, "error": "poll is GET"}
        frame["op"] = "poll"
    elif path == "/stats":
        frame["op"] = "stats"
    elif path == "/healthz":
        frame["op"] = "ping"
    else:
        return 404, {"ok": False, "error": f"unknown path {path!r}"}
    reply = await server.dispatch(frame, None)
    return (200 if reply.get("ok") else 400), reply
