"""`FilterServer` — the asyncio front door over any `FilterEngine`.

The paper's setting is "a large number of clients" subscribing to one
shared stream; everything below this module (serial machine, layered
engine, sharded service) filters in-process.  `FilterServer` puts a
network boundary around one engine:

- **many concurrent publishers** connect over TCP and send documents as
  length-prefixed JSON frames (:mod:`repro.serving.protocol`) or as
  plain HTTP ``POST /publish`` requests (:mod:`repro.serving.http`) —
  both arrive at the same verb dispatch;
- **engine calls never block the event loop**: every call into the
  engine (filtering *and* control verbs) is dispatched to a dedicated
  single-thread executor.  One thread means engine calls are serialized
  in submission order, which is what makes answers attributable: each
  publish is filtered against exactly one workload epoch;
- **the update control plane stays live**: ``subscribe`` /
  ``unsubscribe`` / ``compact`` are verbs, so workloads change while
  documents flow.  Every control verb bumps the server ``epoch``; every
  publish ack carries the epoch it was filtered at;
- **per-consumer delivery**: matched oids fan out to per-subscriber
  :class:`~repro.serving.consumers.Consumer` queues with a configurable
  high watermark and slow-consumer policy, drained by long-poll
  (``poll`` verb, any transport) or by push over an attached TCP
  connection;
- **graceful shutdown** (:meth:`FilterServer.stop`): stop accepting,
  drain in-flight publishes, hand pending deliveries to pollers, send
  close frames to attached consumers, then release the engine.

The server is transport-sniffing: frames and HTTP share one port (a
frame's first prefix byte can never be an ASCII letter below the 64-MiB
cap, an HTTP method always starts with one).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Coroutine, Mapping, TypeVar

from repro.engine.config import EngineConfig
from repro.engine.factory import WorkloadSpec, create_engine
from repro.engine.protocol import FilterEngine
from repro.errors import ProtocolError, ReproError, ServingError, WorkloadError
from repro.service.latency import LatencyTracker
from repro.serving.consumers import Consumer, ConsumerClosed
from repro.serving.protocol import MAX_FRAME, Frame, FrameDecoder, encode_frame

T = TypeVar("T")

_READ_CHUNK = 65536
#: Cap on one long-poll wait, seconds (clients re-poll).
MAX_POLL_WAIT = 60.0


class _Connection:
    """Per-connection bookkeeping shared by the frame and HTTP paths."""

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.conn_id = conn_id
        self.writer = writer
        self.published = 0
        self.attached: str | None = None  # consumer name in push mode


class FilterServer:
    """Serve one :class:`FilterEngine` to the network.

    Exactly one workload source: pass a live *engine* (borrowed — the
    caller keeps ownership) or a *config* plus optional *filters* (the
    server builds the engine through :func:`create_engine` and closes
    it on :meth:`stop`).
    """

    def __init__(
        self,
        engine: FilterEngine | None = None,
        *,
        config: EngineConfig | None = None,
        filters: WorkloadSpec = None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_policy: str = "block",
        high_watermark: int = 256,
        max_frame: int = MAX_FRAME,
        early: bool = False,
    ):
        if engine is not None and (config is not None or filters is not None):
            raise WorkloadError("pass either a live engine or config/filters, not both")
        self._owns_engine = engine is None
        if engine is None:
            engine = create_engine(config or EngineConfig(), filters)
        self.engine: FilterEngine = engine
        self.host = host
        self.port = port
        self.default_policy = default_policy
        self.high_watermark = high_watermark
        self.max_frame = max_frame
        self.backend = (config or EngineConfig()).backend
        #: Event-time earliest answering: when on, each publish wires
        #: the engine's ``on_match`` hook and routed ``payload=False``
        #: consumers receive per-match frames the moment the deciding
        #: event is processed — before the publish ack.  Off by default:
        #: delivery then stays the historical grouped per-document
        #: fan-out after filtering completes.
        self.early = early

        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._stopped = False
        self._epoch = 0
        self._seq = 0
        self._conn_counter = 0
        self._connections: dict[int, _Connection] = {}
        self._consumers: dict[str, Consumer] = {}
        self._attachments: dict[str, tuple[asyncio.Task[None], asyncio.StreamWriter]] = {}
        self._routes: dict[str, str] = {}  # oid -> consumer name
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._latency = LatencyTracker()
        #: Publish receipt → first delivered match frame (early mode).
        self._first_latency = LatencyTracker()
        self._counters: dict[str, int] = {
            "published_docs": 0,
            "publishes": 0,
            "publish_errors": 0,
            "protocol_errors": 0,
            "partial_frames": 0,
            "http_requests": 0,
            "deliveries": 0,
            "early_deliveries": 0,
            "delivery_drops": 0,
            "evictions": 0,
            "connections_total": 0,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is the bound port."""
        if self._server is not None:
            raise ServingError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving-engine"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight publishes,
        close consumers (pollers observe the closure, attached
        connections get a close frame), release the engine."""
        if self._stopped:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        self._stopped = True
        for name in list(self._attachments):
            self._close_attachment(name, "shutdown")
        for consumer in self._consumers.values():
            consumer.close("shutdown")
        # Let woken long-polls write their closed replies before the
        # transports go away (their handlers run when we yield here).
        await asyncio.sleep(0.1)
        for conn in list(self._connections.values()):
            conn.writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_engine:
            self.engine.close()

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI ``serve`` verb's main loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            raise

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    # -- engine dispatch -----------------------------------------------

    async def _run_engine(self, fn: Callable[[], T]) -> T:
        """Run *fn* on the single engine thread.  FIFO submission order
        is the serving tier's consistency model: a publish submitted
        after a control verb is filtered by the updated workload."""
        assert self._loop is not None and self._executor is not None
        self._inflight += 1
        self._idle.clear()
        try:
            return await self._loop.run_in_executor(self._executor, fn)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _publish_job(
        self, xml: str, want_payload: bool, start: float
    ) -> tuple[
        int, int, list[frozenset[str]], list[str], list[Any], dict[int, set[str]]
    ]:
        """Executor-side publish: filter under one epoch, assign seqs.

        Runs on the engine thread; ``self._epoch``/``self._seq`` are
        only touched there, so the (epoch, answers) pairing is exact.
        In early mode the engine's ``on_match`` hook is wired for the
        duration of the call: each decided match schedules an
        event-time delivery coroutine on the event loop *while the
        document is still being filtered*.  The returned futures are
        awaited by ``_op_publish`` before the final fan-out, and
        ``delivered`` records what the early path handed out so the
        final fan-out does not duplicate it.
        """
        epoch = self._epoch
        # Read before filtering: early frames carry their document's
        # final seq, assigned below in the same engine-thread job.
        base_seq = self._seq
        early_futures: list[Any] = []
        delivered: dict[int, set[str]] = {}
        if self.early:
            loop = self._loop
            assert loop is not None
            pending_first = [True]

            def _on_match(oid: str, doc_index: int, event_index: int) -> None:
                early_futures.append(
                    asyncio.run_coroutine_threadsafe(
                        self._deliver_early(
                            oid,
                            base_seq + doc_index,
                            epoch,
                            event_index,
                            doc_index,
                            delivered,
                            pending_first,
                            start,
                        ),
                        loop,
                    )
                )

            self.engine.on_match = _on_match
        try:
            results = self.engine.filter_stream(xml)
        finally:
            if self.early:
                self.engine.on_match = None
        self._seq += len(results)
        payloads: list[str] = []
        if want_payload and results:
            from repro.xmlstream.dom import parse_forest
            from repro.xmlstream.writer import document_to_xml

            payloads = [document_to_xml(d) for d in parse_forest(xml, backend="python")]
        return epoch, base_seq, results, payloads, early_futures, delivered

    async def _deliver_early(
        self,
        oid: str,
        seq: int,
        epoch: int,
        event_index: int,
        doc_index: int,
        delivered: dict[int, set[str]],
        pending_first: list[bool],
        start: float,
    ) -> None:
        """Deliver one event-time match to its routed consumer.

        Runs on the event loop (scheduled from the engine thread), so
        route/consumer lookups and the ``delivered`` bookkeeping are
        loop-serialized.  Only ``payload=False`` consumers are eligible
        — the document payload does not exist until filtering finishes —
        and an offered frame wakes any parked long-poll immediately,
        before the publish ack."""
        name = self._routes.get(oid)
        if name is None:
            return
        consumer = self._consumers.get(name)
        if consumer is None or consumer.payload:
            return
        delivered.setdefault(doc_index, set()).add(oid)
        event: Frame = {
            "event": "match",
            "seq": seq,
            "epoch": epoch,
            "oid": oid,
            "oids": [oid],
            "event_index": event_index,
            "early": True,
        }
        was_open = not consumer.closed
        if await consumer.offer(event):
            if pending_first[0]:
                pending_first[0] = False
                self._first_latency.record(time.perf_counter() - start)
            self._counters["deliveries"] += 1
            self._counters["early_deliveries"] += 1
        else:
            self._counters["delivery_drops"] += 1
            if was_open and consumer.evicted:
                self._counters["evictions"] += 1
                self._close_attachment(name, "slow_consumer")

    def _control_job(self, fn: Callable[[], None]) -> int:
        """Executor-side control verb: apply, then bump the epoch."""
        fn()
        self._epoch += 1
        return self._epoch

    # -- verb dispatch (shared by frames and HTTP) ---------------------

    async def dispatch(self, frame: Frame, conn: _Connection | None = None) -> Frame:
        """Execute one verb; always returns a reply payload."""
        op = frame.get("op")
        reply_id = frame.get("id")
        try:
            handler = self._VERBS.get(op if isinstance(op, str) else "")
            if handler is None:
                raise ServingError(f"unknown op {op!r}")
            reply = await handler(self, frame, conn)
        except ReproError as error:
            reply = {"ok": False, "error": str(error), "kind": type(error).__name__}
        if reply_id is not None:
            reply.setdefault("id", reply_id)
        return reply

    @staticmethod
    def _field(frame: Frame, key: str) -> str:
        value = frame.get(key)
        if not isinstance(value, str) or not value:
            raise ServingError(f"op {frame.get('op')!r} needs a string {key!r} field")
        return value

    async def _op_publish(self, frame: Frame, conn: _Connection | None) -> Frame:
        if self._draining:
            raise ServingError("server is draining; publish rejected")
        xml = self._field(frame, "xml")
        want_payload = any(c.payload for c in self._consumers.values())
        start = time.perf_counter()
        self._counters["publishes"] += 1
        try:
            epoch, base_seq, results, payloads, early_futures, delivered = (
                await self._run_engine(
                    lambda: self._publish_job(xml, want_payload, start)
                )
            )
        except ReproError:
            self._counters["publish_errors"] += 1
            raise
        self._latency.record(time.perf_counter() - start)
        self._counters["published_docs"] += len(results)
        if conn is not None:
            conn.published += len(results)
        if early_futures:
            # Early deliveries ran (or are running) on this loop already;
            # settle them so `delivered` is complete before the final
            # fan-out, and so block-policy backpressure still gates the ack.
            await asyncio.gather(
                *(asyncio.wrap_future(f) for f in early_futures)
            )
        await self._fan_out(base_seq, epoch, results, payloads, delivered)
        return {
            "ok": True,
            "epoch": epoch,
            "seq": base_seq,
            "results": [sorted(matched) for matched in results],
        }

    async def _fan_out(
        self,
        base_seq: int,
        epoch: int,
        results: list[frozenset[str]],
        payloads: list[str],
        delivered: dict[int, set[str]] | None = None,
    ) -> None:
        """Deliver matched oids to the owning consumers, one event per
        (document, consumer).  Each offer applies that consumer's own
        policy, so one slow consumer never stalls the others (only a
        ``block``-policy consumer delays this publisher's ack).

        *delivered* maps document index → oids the early path already
        handed out for this publish; those are skipped here so a match
        reaches each consumer exactly once."""
        for index, matched in enumerate(results):
            already = delivered.get(index, set()) if delivered else set()
            per_consumer: dict[str, list[str]] = {}
            for oid in matched:
                if oid in already:
                    continue
                name = self._routes.get(oid)
                if name is not None and name in self._consumers:
                    per_consumer.setdefault(name, []).append(oid)
            for name, oids in per_consumer.items():
                consumer = self._consumers[name]
                event: Frame = {
                    "event": "match",
                    "seq": base_seq + index,
                    "epoch": epoch,
                    "oids": sorted(oids),
                }
                if consumer.payload and index < len(payloads):
                    event["xml"] = payloads[index]
                was_open = not consumer.closed
                if await consumer.offer(event):
                    self._counters["deliveries"] += 1
                else:
                    self._counters["delivery_drops"] += 1
                    if was_open and consumer.evicted:
                        self._counters["evictions"] += 1
                        self._close_attachment(name, "slow_consumer")

    async def _op_subscribe(self, frame: Frame, conn: _Connection | None) -> Frame:
        oid = self._field(frame, "oid")
        xpath = self._field(frame, "xpath")
        consumer = frame.get("consumer")
        if consumer is not None:
            if not isinstance(consumer, str):
                raise ServingError("'consumer' must be a string")
            self._ensure_consumer(consumer, frame)
        epoch = await self._run_engine(
            lambda: self._control_job(lambda: self.engine.subscribe(oid, xpath))
        )
        if consumer is not None:
            self._routes[oid] = consumer
        return {"ok": True, "epoch": epoch, "filters": self.engine.filter_count}

    async def _op_unsubscribe(self, frame: Frame, conn: _Connection | None) -> Frame:
        oid = self._field(frame, "oid")
        epoch = await self._run_engine(
            lambda: self._control_job(lambda: self.engine.unsubscribe(oid))
        )
        self._routes.pop(oid, None)
        return {"ok": True, "epoch": epoch, "filters": self.engine.filter_count}

    async def _op_compact(self, frame: Frame, conn: _Connection | None) -> Frame:
        compact = getattr(self.engine, "compact", None)
        if compact is None:
            raise ServingError(
                f"engine {self.engine.stats().get('engine')!r} has no compact verb"
            )
        epoch = await self._run_engine(lambda: self._control_job(compact))
        return {"ok": True, "epoch": epoch}

    async def _op_rebalance(self, frame: Frame, conn: _Connection | None) -> Frame:
        rebalance = getattr(self.engine, "rebalance", None)
        if rebalance is None:
            raise ServingError(
                f"engine {self.engine.stats().get('engine')!r} has no rebalance verb"
            )

        def job() -> tuple[int, int, float]:
            moves = rebalance()
            epoch = self._control_job(lambda: None)
            stats = self.engine.stats()
            imbalance = stats.get("imbalance", 1.0)
            return epoch, len(moves), float(imbalance)

        epoch, moves, imbalance = await self._run_engine(job)
        return {"ok": True, "epoch": epoch, "moves": moves, "imbalance": imbalance}

    def _ensure_consumer(self, name: str, frame: Frame) -> Consumer:
        existing = self._consumers.get(name)
        if existing is not None:
            return existing
        policy = frame.get("policy", self.default_policy)
        watermark = frame.get("high_watermark", self.high_watermark)
        if not isinstance(policy, str):
            raise ServingError("'policy' must be a string")
        if not isinstance(watermark, int) or isinstance(watermark, bool):
            raise ServingError("'high_watermark' must be an integer")
        consumer = Consumer(
            name,
            policy=policy,
            high_watermark=watermark,
            payload=bool(frame.get("payload", False)),
        )
        self._consumers[name] = consumer
        return consumer

    async def _op_consume(self, frame: Frame, conn: _Connection | None) -> Frame:
        name = self._field(frame, "consumer")
        consumer = self._ensure_consumer(name, frame)
        return {"ok": True, "consumer": name, "stats": consumer.stats()}

    def _consumer(self, frame: Frame) -> Consumer:
        name = self._field(frame, "consumer")
        consumer = self._consumers.get(name)
        if consumer is None:
            raise ServingError(f"unknown consumer {name!r}")
        return consumer

    async def _op_poll(self, frame: Frame, conn: _Connection | None) -> Frame:
        consumer = self._consumer(frame)
        max_events = frame.get("max", 64)
        timeout = frame.get("timeout", 0)
        if not isinstance(max_events, int) or max_events < 1:
            raise ServingError("'max' must be a positive integer")
        if not isinstance(timeout, (int, float)) or timeout < 0:
            raise ServingError("'timeout' must be a non-negative number")
        try:
            events = await consumer.get_batch(
                max_events, min(float(timeout), MAX_POLL_WAIT)
            )
        except ConsumerClosed:
            return {
                "ok": True,
                "events": [],
                "closed": True,
                "reason": consumer.close_reason,
            }
        return {"ok": True, "events": events, "closed": False}

    async def _op_stats(self, frame: Frame, conn: _Connection | None) -> Frame:
        return {"ok": True, "stats": await self.stats()}

    async def _op_ping(self, frame: Frame, conn: _Connection | None) -> Frame:
        return {"ok": True, "draining": self._draining}

    async def _op_attach(self, frame: Frame, conn: _Connection | None) -> Frame:
        if conn is None:
            raise ServingError("attach needs a frame connection (not HTTP)")
        if conn.attached is not None:
            raise ServingError("connection already attached")
        consumer = self._ensure_consumer(self._field(frame, "consumer"), frame)
        if consumer.closed:
            raise ServingError(f"consumer {consumer.name!r} is closed")
        if consumer.name in self._attachments:
            raise ServingError(f"consumer {consumer.name!r} already attached")
        conn.attached = consumer.name
        task = asyncio.ensure_future(self._pump(consumer, conn.writer))
        self._attachments[consumer.name] = (task, conn.writer)
        return {"ok": True, "consumer": consumer.name}

    _VERBS: dict[
        str,
        Callable[["FilterServer", Frame, "_Connection | None"], Coroutine[Any, Any, Frame]],
    ] = {
        "publish": _op_publish,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
        "compact": _op_compact,
        "rebalance": _op_rebalance,
        "consume": _op_consume,
        "poll": _op_poll,
        "stats": _op_stats,
        "ping": _op_ping,
        "attach": _op_attach,
    }

    # -- push delivery -------------------------------------------------

    async def _pump(self, consumer: Consumer, writer: asyncio.StreamWriter) -> None:
        """Drain *consumer* into an attached connection.  ``drain()``
        propagates TCP backpressure: a peer that stops reading stops the
        pump, the queue fills, and the consumer's policy takes over."""
        try:
            while True:
                try:
                    events = await consumer.get_batch(64, timeout=None)
                except ConsumerClosed:
                    writer.write(
                        encode_frame(
                            {"event": "closed", "reason": consumer.close_reason}
                        )
                    )
                    break
                for event in events:
                    writer.write(encode_frame(event))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._attachments.pop(consumer.name, None)

    def _close_attachment(self, name: str, reason: str) -> None:
        """Tear down a push attachment with a best-effort close frame
        (the 'websocket-style' close): the pump may be wedged in
        ``drain()`` against a peer that stopped reading, so it is
        cancelled rather than joined."""
        entry = self._attachments.pop(name, None)
        if entry is None:
            return
        task, writer = entry
        task.cancel()
        try:
            writer.write(encode_frame({"event": "closed", "reason": reason}))
            writer.close()
        except (ConnectionError, RuntimeError):
            pass

    # -- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_counter += 1
        self._counters["connections_total"] += 1
        conn = _Connection(self._conn_counter, writer)
        self._connections[conn.conn_id] = conn
        try:
            first = await reader.read(1)
            if not first:
                return
            if 0x41 <= first[0] <= 0x5A:  # ASCII upper letter: an HTTP method
                from repro.serving.http import handle_http

                self._counters["http_requests"] += 1
                await handle_http(self, reader, writer, first)
            else:
                await self._frame_loop(reader, writer, conn, first)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.pop(conn.conn_id, None)
            if conn.attached is not None:
                # the peer vanished; the pump dies with the transport
                entry = self._attachments.pop(conn.attached, None)
                if entry is not None:
                    entry[0].cancel()
            try:
                writer.close()
            except RuntimeError:  # event loop already closed
                pass

    async def _frame_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: _Connection,
        first: bytes,
    ) -> None:
        """One framed connection: decode, dispatch, reply, repeat.

        A recoverable protocol error answers with an error frame and
        keeps the connection; an unrecoverable one closes it.  EOF with
        bytes still buffered is a mid-frame disconnect: the partial
        document is discarded (counted), the server unaffected."""
        decoder = FrameDecoder(self.max_frame)
        chunk = first
        while True:
            if not chunk:
                if decoder.buffered:
                    self._counters["partial_frames"] += 1
                break
            try:
                frames, errors = decoder.feed_all(chunk)
            except ProtocolError as error:
                self._counters["protocol_errors"] += 1
                writer.write(
                    encode_frame(
                        {"ok": False, "error": str(error), "fatal": True,
                         "kind": "ProtocolError"}
                    )
                )
                await writer.drain()
                break
            for error in errors:
                self._counters["protocol_errors"] += 1
                writer.write(
                    encode_frame(
                        {"ok": False, "error": str(error), "fatal": False,
                         "kind": "ProtocolError"}
                    )
                )
            for frame in frames:
                reply = await self.dispatch(frame, conn)
                writer.write(encode_frame(reply))
            await writer.drain()
            chunk = await reader.read(_READ_CHUNK)

    # -- observability -------------------------------------------------

    async def stats(self) -> dict[str, Any]:
        """Server + engine counters; engine stats are read on the
        engine thread, like every other engine call."""
        engine_stats = await self._run_engine(self.engine.stats)
        return self._stats_dict(engine_stats)

    def stats_nowait(self) -> dict[str, Any]:
        """Server-side counters only (no engine round-trip); safe from
        any thread."""
        return self._stats_dict(None)

    def _stats_dict(self, engine_stats: Mapping[str, Any] | None) -> dict[str, Any]:
        out: dict[str, Any] = dict(self._counters)
        out["epoch"] = self._epoch
        out["seq"] = self._seq
        out["draining"] = self._draining
        out["connections"] = len(self._connections)
        out["inflight"] = self._inflight
        out["publish_latency"] = self._latency.snapshot()
        out["first_match_latency"] = self._first_latency.snapshot()
        out["consumers"] = {
            name: consumer.stats() for name, consumer in sorted(self._consumers.items())
        }
        out["attached"] = sorted(self._attachments)
        # Uniform placement gauge block: mirror the engine's gauges at
        # the top level so dashboards read one shape from every tier.
        out["shard_load"] = []
        out["imbalance"] = 1.0
        if engine_stats is not None:
            out["engine"] = dict(engine_stats)
            out["shard_load"] = list(engine_stats.get("shard_load", []))
            out["imbalance"] = engine_stats.get("imbalance", 1.0)
        return out
