"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the filtering engine (e.g. a message broker) can catch
one base class at the ingestion boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class XMLSyntaxError(ReproError):
    """Raised by the streaming parser on malformed XML input.

    Attributes:
        line: 1-based line of the offending construct, when known.
        column: 1-based column, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class EventStreamError(ReproError):
    """Raised when a hand-built event stream is malformed (unbalanced
    start/end elements, end of document with open elements).  Streams
    produced by :func:`repro.xmlstream.parser.iterparse` are always
    well-formed; this guards direct users of ``process_events``.
    """


class MixedContentError(ReproError):
    """Raised when a document mixes text and element children.

    The XPush machine assumes element content is either pure text (plus
    attributes) or pure elements, as in Sec. 3.2 of the paper ("we will
    always assume that the XML document has no mixed content").
    """


class XPathSyntaxError(ReproError):
    """Raised when an XPath filter does not belong to the Fig. 1 fragment."""

    def __init__(self, message: str, position: int | None = None, source: str | None = None):
        if position is not None and source is not None:
            pointer = source[:position] + " >>> " + source[position:]
            message = f"{message} (at position {position}: {pointer!r})"
        super().__init__(message)
        self.position = position
        self.source = source


class DTDError(ReproError):
    """Raised for malformed DTD definitions or DTD-invalid documents."""


class WorkloadError(ReproError):
    """Raised when a filter workload is ill-formed (e.g. duplicate oids)."""


class OptionsError(WorkloadError, ValueError):
    """Raised for an invalid option value or combination on a config
    surface (:class:`repro.xpush.options.XPushOptions`,
    :class:`repro.engine.config.EngineConfig`).

    Derives from both :class:`WorkloadError` — so CLI/engine handlers
    that report configuration problems at the boundary catch it — and
    :class:`ValueError`, the type these validations historically
    raised, so existing ``except ValueError`` callers keep working.
    """


class ServingError(ReproError):
    """Raised by the network serving tier (`repro.serving`) for
    server-side failures that are not wire-protocol violations: unknown
    consumers, verbs on a draining server, client-side timeouts."""


class ProtocolError(ServingError):
    """Raised on a malformed wire frame (`repro.serving.protocol`).

    Attributes:
        recoverable: True when the frame boundary is still trustworthy
            (e.g. a well-delimited frame holding invalid JSON), so the
            connection can skip the frame and keep decoding; False when
            framing itself is broken (oversized or negative declared
            length) and the connection must be closed.
    """

    def __init__(self, message: str, recoverable: bool = False):
        super().__init__(message)
        self.recoverable = recoverable
