"""A small XML message broker built on the XPush filtering engine.

The motivating application of Sec. 1: a message-oriented middleware
node where producers publish XML packets and consumers subscribe with
XPath filters; "the broker's main task is to route the messages from
producers to the consumers".  Each packet is filtered once by a single
XPush machine regardless of how many subscriptions exist, and delivered
to every subscriber whose filter matched.

Subscription changes use the strategy of Sec. 8: insertions mark the
machine *stale* and it is rebuilt lazily on the next publish (the
"brute force" reset — equivalent to flushing a cache); the
alternative layered-machine scheme the paper sketches is future work
there and here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xmlstream.dom import Document
from repro.xpath.parser import parse_xpath
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions
from repro.afa.build import build_workload_automata

Deliver = Callable[[str, Document], None]


@dataclass
class Subscription:
    """One consumer's standing query."""

    subscriber: str
    xpath: str
    oid: str = field(default="")


class MessageBroker:
    """Routes XML packets to subscribers via one shared XPush machine.

    >>> broker = MessageBroker()
    >>> broker.subscribe("alice", "//a[b/text() = 1]")
    'sub0'
    >>> inbox = []
    >>> broker.on_deliver = lambda who, doc: inbox.append(who)
    >>> broker.publish_text("<a><b>1</b></a>")
    1
    >>> inbox
    ['alice']
    """

    def __init__(
        self,
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        incremental: bool = False,
        shards: int = 1,
        batch_size: int = 16,
        shard_strategy: str = "hash",
        shard_parallel: bool | None = None,
        backend: str = "auto",
    ):
        """*incremental* selects the update strategy of Sec. 8: False =
        brute-force rebuild on change (flush the cache); True = keep a
        warmed base machine and put new subscriptions in a small delta
        layer (:class:`repro.xpush.layered.LayeredFilterEngine`).

        *shards* >= 2 selects the scale-out mode of ``docs/scaling.md``:
        the workload is partitioned over a
        :class:`repro.service.ShardedFilterEngine` (one warmed machine
        per shard, worker processes unless *shard_parallel* is False)
        and packets are filtered by fan-out/union.  Subscription changes
        keep the Sec. 8 brute-force contract: the sharded engine is torn
        down and rebuilt lazily on the next publish.

        *backend* selects the parser backend of the push-mode event
        path used when packets arrive as text (``publish_text``) and by
        shard workers (``"python"``, ``"expat"`` or ``"auto"``; see
        :func:`repro.xmlstream.parser.parse_into`).  Routing decisions
        are backend-independent — this is a throughput knob only."""
        if incremental and shards > 1:
            raise WorkloadError("incremental and sharded modes are mutually exclusive")
        if shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {shards}")
        self.options = options or XPushOptions(top_down=True, precompute_values=False)
        self.dtd = dtd
        self.incremental = incremental
        self.shards = int(shards)
        self.batch_size = int(batch_size)
        self.shard_strategy = shard_strategy
        self.shard_parallel = shard_parallel
        from repro.xmlstream.parser import resolve_backend

        try:
            resolve_backend(backend)  # validate eagerly, at construction
        except ValueError as error:
            raise WorkloadError(str(error)) from None
        self.backend = backend
        self._subscriptions: dict[str, Subscription] = {}
        self._machine: XPushMachine | None = None
        self._layered = None
        self._sharded = None
        self._worker_restarts = 0
        if incremental:
            from repro.xpush.layered import LayeredFilterEngine

            self._layered = LayeredFilterEngine([], self.options, dtd)
        self._counter = 0
        self.on_deliver: Deliver = lambda subscriber, document: None
        self.delivered = 0
        self.published = 0

    # -- subscription management ----------------------------------------

    def subscribe(self, subscriber: str, xpath: str) -> str:
        """Register a filter; returns the subscription oid."""
        oid = f"sub{self._counter}"
        self._counter += 1
        parse_xpath(xpath)  # validate eagerly, fail at subscribe time
        self._subscriptions[oid] = Subscription(subscriber, xpath, oid)
        if self._layered is not None:
            self._layered.insert(oid, xpath)
        else:
            self._invalidate()  # rebuild lazily (Sec. 8 brute-force path)
        return oid

    def unsubscribe(self, oid: str) -> None:
        if oid not in self._subscriptions:
            raise WorkloadError(f"unknown subscription {oid!r}")
        del self._subscriptions[oid]
        if self._layered is not None:
            self._layered.remove(oid)
        else:
            self._invalidate()

    def _invalidate(self) -> None:
        self._machine = None
        if self._sharded is not None:
            self._worker_restarts += self._sharded.worker_restarts
            self._sharded.close()
            self._sharded = None

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def _engine(self) -> XPushMachine:
        if self._machine is None:
            from dataclasses import replace

            filters = [
                parse_xpath(sub.xpath, oid) for oid, sub in self._subscriptions.items()
            ]
            # The broker delivers each packet's matches immediately; a
            # machine retaining its own results list would grow without
            # bound across an unbounded publish stream.
            self._machine = XPushMachine(
                build_workload_automata(filters),
                replace(self.options, retain_results=False),
                dtd=self.dtd,
            )
        return self._machine

    def _sharded_engine(self):
        if self._sharded is None:
            from repro.service.engine import ShardedFilterEngine

            filters = [
                parse_xpath(sub.xpath, oid) for oid, sub in self._subscriptions.items()
            ]
            self._sharded = ShardedFilterEngine(
                filters,
                self.shards,
                options=self.options,
                dtd=self.dtd,
                strategy=self.shard_strategy,
                batch_size=self.batch_size,
                parallel=self.shard_parallel,
                backend=self.backend,
            )
        return self._sharded

    # -- publishing -------------------------------------------------------

    def _matched_sets(self, documents: list[Document]) -> list[frozenset[str]]:
        """One oid-set per document, via whichever engine mode is active."""
        if self._layered is not None:
            return [self._layered.filter_document(doc) for doc in documents]
        if self.shards > 1:
            return self._sharded_engine().filter_batch(documents)
        machine = self._engine()
        return [machine.filter_document(doc) for doc in documents]

    def publish(self, document: Document) -> int:
        """Route one packet; returns the number of deliveries."""
        return self.publish_batch([document])

    def publish_batch(self, documents: list[Document]) -> int:
        """Route a batch of packets in one engine round-trip; returns
        the total number of deliveries.  In sharded mode this is the
        fast path: the whole batch is fanned out to the shard workers
        pipelined, instead of one queue round-trip per packet."""
        documents = list(documents)
        if not documents:
            return 0
        if not self._subscriptions:
            self.published += len(documents)
            return 0
        total = 0
        for document, matched in zip(documents, self._matched_sets(documents)):
            self.published += 1
            count = 0
            for oid in sorted(matched):
                subscription = self._subscriptions.get(oid)
                if subscription is not None:
                    self.on_deliver(subscription.subscriber, document)
                    count += 1
            self.delivered += count
            total += count
        return total

    def publish_text(self, xml_text: str) -> int:
        """Parse and route every document in *xml_text* as one batch.

        Parsing uses the broker's configured push-mode *backend*."""
        from repro.xmlstream.dom import parse_forest

        return self.publish_batch(parse_forest(xml_text, backend=self.backend))

    def stats(self) -> dict:
        out = {
            "subscriptions": len(self._subscriptions),
            "published": self.published,
            "delivered": self.delivered,
            "backend": self.backend,
            "runtime": self.options.runtime,
        }
        if self._layered is not None:
            layered = self._layered.stats()
            out["xpush_states"] = layered["base_states"] + layered["delta_states"]
            out["hit_ratio"] = 0.0
            out["layered"] = layered
        elif self.shards > 1:
            out["worker_restarts"] = self._worker_restarts
            if self._sharded is not None:
                sharded = self._sharded.stats()
                out["sharded"] = sharded
                out["worker_restarts"] += sharded["worker_restarts"]
                out["xpush_states"] = sum(
                    entry["xpush_states"] for entry in sharded["per_shard"]
                )
                out["resident_bytes"] = sharded["resident_bytes"]
                out["evictions"] = sharded["evictions"]
            else:
                out["xpush_states"] = 0
                out["resident_bytes"] = 0
                out["evictions"] = 0
            out["hit_ratio"] = 0.0
        else:
            machine = self._machine
            out["xpush_states"] = machine.state_count if machine else 0
            out["hit_ratio"] = machine.stats.hit_ratio if machine else 0.0
            out["resident_bytes"] = machine.store.resident_bytes if machine else 0
            out["evictions"] = machine.stats.evictions if machine else 0
        return out

    def close(self) -> None:
        """Release resources (shard worker processes); publishing after
        close lazily rebuilds the engine, so this is safe mid-lifetime."""
        if self._sharded is not None:
            self._worker_restarts += self._sharded.worker_restarts
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "MessageBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
