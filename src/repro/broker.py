"""A small XML message broker built on the XPush filtering engine.

The motivating application of Sec. 1: a message-oriented middleware
node where producers publish XML packets and consumers subscribe with
XPath filters; "the broker's main task is to route the messages from
producers to the consumers".  Each packet is filtered once by a single
XPush machine regardless of how many subscriptions exist, and delivered
to every subscriber whose filter matched.

Subscription changes use the strategy of Sec. 8: insertions mark the
machine *stale* and it is rebuilt lazily on the next publish (the
"brute force" reset — equivalent to flushing a cache); the
alternative layered-machine scheme the paper sketches is future work
there and here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD
from repro.xmlstream.dom import Document
from repro.xpath.parser import parse_xpath
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions
from repro.afa.build import build_workload_automata

Deliver = Callable[[str, Document], None]


@dataclass
class Subscription:
    """One consumer's standing query."""

    subscriber: str
    xpath: str
    oid: str = field(default="")


class MessageBroker:
    """Routes XML packets to subscribers via one shared XPush machine.

    >>> broker = MessageBroker()
    >>> broker.subscribe("alice", "//a[b/text() = 1]")
    'sub0'
    >>> inbox = []
    >>> broker.on_deliver = lambda who, doc: inbox.append(who)
    >>> broker.publish_text("<a><b>1</b></a>")
    1
    >>> inbox
    ['alice']
    """

    def __init__(
        self,
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        incremental: bool = False,
    ):
        """*incremental* selects the update strategy of Sec. 8: False =
        brute-force rebuild on change (flush the cache); True = keep a
        warmed base machine and put new subscriptions in a small delta
        layer (:class:`repro.xpush.layered.LayeredFilterEngine`)."""
        self.options = options or XPushOptions(top_down=True, precompute_values=False)
        self.dtd = dtd
        self.incremental = incremental
        self._subscriptions: dict[str, Subscription] = {}
        self._machine: XPushMachine | None = None
        self._layered = None
        if incremental:
            from repro.xpush.layered import LayeredFilterEngine

            self._layered = LayeredFilterEngine([], self.options, dtd)
        self._counter = 0
        self.on_deliver: Deliver = lambda subscriber, document: None
        self.delivered = 0
        self.published = 0

    # -- subscription management ----------------------------------------

    def subscribe(self, subscriber: str, xpath: str) -> str:
        """Register a filter; returns the subscription oid."""
        oid = f"sub{self._counter}"
        self._counter += 1
        parse_xpath(xpath)  # validate eagerly, fail at subscribe time
        self._subscriptions[oid] = Subscription(subscriber, xpath, oid)
        if self._layered is not None:
            self._layered.insert(oid, xpath)
        else:
            self._machine = None  # rebuild lazily (Sec. 8 brute-force path)
        return oid

    def unsubscribe(self, oid: str) -> None:
        if oid not in self._subscriptions:
            raise WorkloadError(f"unknown subscription {oid!r}")
        del self._subscriptions[oid]
        if self._layered is not None:
            self._layered.remove(oid)
        else:
            self._machine = None

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def _engine(self) -> XPushMachine:
        if self._machine is None:
            filters = [
                parse_xpath(sub.xpath, oid) for oid, sub in self._subscriptions.items()
            ]
            self._machine = XPushMachine(
                build_workload_automata(filters), self.options, dtd=self.dtd
            )
        return self._machine

    # -- publishing -------------------------------------------------------

    def publish(self, document: Document) -> int:
        """Route one packet; returns the number of deliveries."""
        if not self._subscriptions:
            self.published += 1
            return 0
        if self._layered is not None:
            matched = self._layered.filter_document(document)
        else:
            matched = self._engine().filter_document(document)
        self.published += 1
        count = 0
        for oid in sorted(matched):
            subscription = self._subscriptions.get(oid)
            if subscription is not None:
                self.on_deliver(subscription.subscriber, document)
                count += 1
        self.delivered += count
        return count

    def publish_text(self, xml_text: str) -> int:
        """Parse and route every document in *xml_text*."""
        from repro.xmlstream.dom import parse_forest

        return sum(self.publish(doc) for doc in parse_forest(xml_text))

    def stats(self) -> dict:
        out = {
            "subscriptions": len(self._subscriptions),
            "published": self.published,
            "delivered": self.delivered,
        }
        if self._layered is not None:
            layered = self._layered.stats()
            out["xpush_states"] = layered["base_states"] + layered["delta_states"]
            out["hit_ratio"] = 0.0
            out["layered"] = layered
        else:
            machine = self._machine
            out["xpush_states"] = machine.state_count if machine else 0
            out["hit_ratio"] = machine.stats.hit_ratio if machine else 0.0
        return out
