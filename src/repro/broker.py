"""A small XML message broker built on the XPush filtering engine.

The motivating application of Sec. 1: a message-oriented middleware
node where producers publish XML packets and consumers subscribe with
XPath filters; "the broker's main task is to route the messages from
producers to the consumers".  Each packet is filtered once by a single
filtering engine regardless of how many subscriptions exist, and
delivered to every subscriber whose filter matched.

The broker is a thin routing shell over one
:class:`~repro.engine.protocol.FilterEngine`, constructed exclusively
through :func:`~repro.engine.factory.create_engine`; the engine kind
decides the Sec. 8 update strategy:

- ``"xpush"`` (default) — brute-force: a subscription change marks the
  machine stale and it is rebuilt lazily on the next publish
  ("equivalent to flushing an entire cache");
- ``"layered"`` (``incremental=True``) — a warmed base machine plus a
  small delta layer; insertions never flush the base tables;
- ``"sharded"`` (``shards >= 2``) — the scale-out service of
  ``docs/scaling.md``; subscription changes ride its update control
  plane as epoch-stamped control messages, so the worker processes
  (and their warmed tables) survive every change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.config import EngineConfig
from repro.engine.factory import create_engine
from repro.engine.protocol import FilterEngine
from repro.errors import WorkloadError
from repro.xmlstream.dom import Document
from repro.xmlstream.dtd import DTD
from repro.xpath.parser import parse_xpath
from repro.xpush.options import XPushOptions

Deliver = Callable[[str, Document], None]


@dataclass
class Subscription:
    """One consumer's standing query."""

    subscriber: str
    xpath: str
    oid: str = field(default="")


class MessageBroker:
    """Routes XML packets to subscribers via one shared filter engine.

    >>> broker = MessageBroker()
    >>> broker.subscribe("alice", "//a[b/text() = 1]")
    'sub0'
    >>> inbox = []
    >>> broker.on_deliver = lambda who, doc: inbox.append(who)
    >>> broker.publish_text("<a><b>1</b></a>")
    1
    >>> inbox
    ['alice']
    """

    def __init__(
        self,
        options: XPushOptions | None = None,
        dtd: DTD | None = None,
        incremental: bool = False,
        shards: int = 1,
        batch_size: int = 16,
        shard_strategy: str = "hash",
        shard_parallel: bool | None = None,
        backend: str = "auto",
        config: EngineConfig | None = None,
    ):
        """*incremental* selects the layered engine, *shards* >= 2 the
        sharded service (worker processes unless *shard_parallel* is
        False) — see the module docstring for the update semantics of
        each.  *backend* selects the parser backend of the push-mode
        event path used when packets arrive as text (``publish_text``)
        and by shard workers; routing decisions are backend-independent.

        Alternatively pass a full :class:`EngineConfig` as *config* —
        it wins over every other argument and may name any registered
        engine kind that supports ``subscribe``/``unsubscribe``."""
        if config is None:
            if incremental and shards > 1:
                raise WorkloadError(
                    "incremental and sharded modes are mutually exclusive"
                )
            engine = "layered" if incremental else "sharded" if shards > 1 else "xpush"
            config = EngineConfig(
                engine=engine,
                options=options
                or XPushOptions(top_down=True, precompute_values=False),
                dtd=dtd,
                backend=backend,
                shards=int(shards),  # EngineConfig rejects shards < 1
                strategy=shard_strategy,
                batch_size=int(batch_size),
                parallel=shard_parallel,
            )
        self.config = config
        self.options = config.options
        self.dtd = config.dtd
        self.incremental = config.engine == "layered"
        self.shards = config.shards
        self.batch_size = config.batch_size
        self.backend = config.backend
        self._subscriptions: dict[str, Subscription] = {}
        self._filter_engine: FilterEngine | None = None
        self._counter = 0
        self.on_deliver: Deliver = lambda subscriber, document: None
        self.delivered = 0
        self.published = 0

    # -- subscription management ----------------------------------------

    def _engine(self) -> FilterEngine:
        """The live engine; (re)created through the factory on first
        use and after :meth:`close`, resuming every subscription."""
        if self._filter_engine is None:
            self._filter_engine = create_engine(
                self.config,
                {oid: sub.xpath for oid, sub in self._subscriptions.items()},
            )
        return self._filter_engine

    def subscribe(self, subscriber: str, xpath: str) -> str:
        """Register a filter; returns the subscription oid."""
        oid = f"sub{self._counter}"
        self._counter += 1
        parse_xpath(xpath)  # validate eagerly, fail at subscribe time
        self._engine().subscribe(oid, xpath)
        self._subscriptions[oid] = Subscription(subscriber, xpath, oid)
        return oid

    def unsubscribe(self, oid: str) -> None:
        if oid not in self._subscriptions:
            raise WorkloadError(f"unknown subscription {oid!r}")
        self._engine().unsubscribe(oid)
        del self._subscriptions[oid]

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    # -- publishing -------------------------------------------------------

    def _matched_sets(self, documents: list[Document]) -> list[frozenset[str]]:
        """One oid-set per document.  The sharded engine filters the
        whole batch in one pipelined fan-out; in-process engines go
        document by document."""
        engine = self._engine()
        filter_batch = getattr(engine, "filter_batch", None)
        if filter_batch is not None:
            return filter_batch(documents)
        return [engine.filter_document(doc) for doc in documents]

    def publish(self, document: Document) -> int:
        """Route one packet; returns the number of deliveries."""
        return self.publish_batch([document])

    def publish_batch(self, documents: list[Document]) -> int:
        """Route a batch of packets in one engine round-trip; returns
        the total number of deliveries.  In sharded mode this is the
        fast path: the whole batch is fanned out to the shard workers
        pipelined, instead of one queue round-trip per packet."""
        documents = list(documents)
        if not documents:
            return 0
        if not self._subscriptions:
            self.published += len(documents)
            return 0
        total = 0
        for document, matched in zip(documents, self._matched_sets(documents)):
            self.published += 1
            count = 0
            for oid in sorted(matched):
                subscription = self._subscriptions.get(oid)
                if subscription is not None:
                    self.on_deliver(subscription.subscriber, document)
                    count += 1
            self.delivered += count
            total += count
        return total

    def publish_text(self, xml_text: str) -> int:
        """Parse and route every document in *xml_text* as one batch.

        Parsing uses the broker's configured push-mode *backend*."""
        from repro.xmlstream.dom import parse_forest

        return self.publish_batch(parse_forest(xml_text, backend=self.backend))

    def stats(self) -> dict:
        out = {
            "subscriptions": len(self._subscriptions),
            "published": self.published,
            "delivered": self.delivered,
            "backend": self.backend,
            "runtime": self.options.runtime,
            "engine": self.config.engine,
        }
        engine_stats = (
            self._filter_engine.stats() if self._filter_engine is not None else {}
        )
        if self.config.engine == "layered":
            out["layered"] = engine_stats
            out["xpush_states"] = engine_stats.get("xpush_states", 0)
            out["hit_ratio"] = engine_stats.get("hit_ratio", 0.0)
        elif self.config.engine == "sharded":
            out["sharded"] = engine_stats
            out["worker_restarts"] = engine_stats.get("worker_restarts", 0)
            out["xpush_states"] = engine_stats.get("xpush_states", 0)
            out["resident_bytes"] = engine_stats.get("resident_bytes", 0)
            out["evictions"] = engine_stats.get("evictions", 0)
            out["epoch"] = engine_stats.get("epoch", 0)
            out["hit_ratio"] = 0.0
        else:
            out["xpush_states"] = engine_stats.get("xpush_states", 0)
            out["hit_ratio"] = engine_stats.get("hit_ratio", 0.0)
            out["resident_bytes"] = engine_stats.get("resident_bytes", 0)
            out["evictions"] = engine_stats.get("evictions", 0)
        # Uniform placement gauge block, whatever the engine kind.
        out["shard_load"] = engine_stats.get(
            "shard_load", [float(len(self._subscriptions))]
        )
        out["imbalance"] = engine_stats.get("imbalance", 1.0)
        return out

    def rebalance(self) -> list:
        """Migrate filters between shards until balanced (the sharded
        engine's placement verb); raises
        :class:`~repro.errors.WorkloadError` on engines without one."""
        rebalance = getattr(self._engine(), "rebalance", None)
        if rebalance is None:
            raise WorkloadError(
                f"engine {self.config.engine!r} does not support rebalance"
            )
        moves = rebalance()
        assert isinstance(moves, list)
        return moves

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        default_policy: str = "block",
        high_watermark: int = 256,
    ):
        """A network front door over this broker's engine: a
        :class:`repro.serving.server.FilterServer` *borrowing* the live
        engine (the broker keeps ownership and its in-process delivery
        path).  Network ``subscribe``/``unsubscribe`` verbs act on the
        shared engine directly — oids issued over the wire live beside
        the broker's ``subN`` oids, and network consumers receive their
        fan-out from the server's per-consumer queues while local
        ``on_deliver`` subscribers keep being routed by ``publish``.

        The caller starts it (``ServerThread`` or ``await start()``);
        stopping the server never closes the broker's engine."""
        from repro.serving.server import FilterServer

        return FilterServer(
            self._engine(),
            host=host,
            port=port,
            default_policy=default_policy,
            high_watermark=high_watermark,
        )

    def close(self) -> None:
        """Release resources (shard worker processes); publishing after
        close lazily rebuilds the engine from the live subscriptions,
        so this is safe mid-lifetime."""
        if self._filter_engine is not None:
            self._filter_engine.close()
            self._filter_engine = None

    def __enter__(self) -> "MessageBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
