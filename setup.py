"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` works through this setup.py via
the legacy code path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
