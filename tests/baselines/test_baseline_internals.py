"""Edge-case tests for baseline engine internals."""

import pytest

from repro.baselines.xfilter import PerQueryEngine, _QueryRunner
from repro.baselines.yfilter import SharedPathEngine
from repro.errors import MixedContentError
from repro.xmlstream.dom import parse_document
from repro.xpath.parser import parse_workload, parse_xpath


def test_query_runner_state_machine():
    runner = _QueryRunner(parse_xpath("/a[b = 1]", "q"))
    runner.start_document()
    runner.start_element("a")
    runner.start_element("b")
    runner.text("1")
    runner.end_element("b")
    runner.end_element("a")
    assert runner.matched()
    # Fresh document resets the runner.
    runner.start_document()
    assert not runner.matched()


def test_query_runner_rejects_mixed_content():
    runner = _QueryRunner(parse_xpath("/a[text() = 1]", "q"))
    runner.start_document()
    runner.start_element("a")
    runner.text("1")
    with pytest.raises(MixedContentError):
        runner.start_element("b")


def test_per_query_engine_multiple_documents_independent():
    engine = PerQueryEngine(parse_workload({"q": "//x[y = 1]"}))
    results = engine.filter_stream("<x><y>1</y></x><x><y>2</y></x><x><y>1</y></x>")
    assert [bool(r) for r in results] == [True, False, True]


def test_shared_path_engine_early_exit_on_all_matched():
    """Once every query anchored at a leaf trie node has matched, the
    engine stops scanning further candidates of that step."""
    engine = SharedPathEngine(parse_workload({"q": "/r/x"}))
    wide = "<r>" + "<x/>" * 500 + "</r>"
    assert engine.filter_document(parse_document(wide)) == {"q"}


def test_shared_path_engine_self_axis():
    engine = SharedPathEngine(parse_workload({"q": "//a[. = 5]"}))
    assert engine.filter_document(parse_document("<a>5</a>")) == {"q"}
    assert engine.filter_document(parse_document("<a>6</a>")) == frozenset()


def test_shared_path_engine_counts():
    sources = {"a": "/r/x", "b": "/r/x[k = 1]", "c": "/r/y"}
    engine = SharedPathEngine(parse_workload(sources))
    assert engine.query_count == 3
    # /r shared; /r/x shared by a and b (same axis+test); /r/y separate.
    assert engine.shared_nodes == 3


def test_shared_path_engine_anchor_on_attribute():
    engine = SharedPathEngine(parse_workload({"q": "//x/@id"}))
    assert engine.filter_document(parse_document('<x id="1"/>')) == {"q"}
    assert engine.filter_document(parse_document("<x/>")) == frozenset()
