"""Tests for the baseline engines."""

from repro.baselines import NaiveEngine, PerQueryEngine, SharedPathEngine
from repro.xmlstream.dom import parse_document
from repro.xpath.parser import parse_workload
from repro.xpath.semantics import matching_oids

from tests.conftest import make_workload


def filters_for(sources):
    return parse_workload(sources)


def test_naive_engine_basics():
    engine = NaiveEngine(filters_for({"a": "/x[y = 1]", "b": "//z"}))
    assert engine.filter_document(parse_document("<x><y>1</y></x>")) == {"a"}
    assert engine.filter_stream("<x><y>1</y></x><z/>") == [
        frozenset({"a"}),
        frozenset({"b"}),
    ]


def test_per_query_engine_streaming():
    engine = PerQueryEngine(filters_for({"a": "/x[y = 1]", "b": "//z"}))
    results = engine.filter_stream("<x><y>1</y></x><x><z/></x>")
    assert results == [frozenset({"a"}), frozenset({"b"})]


def test_shared_path_engine_shares_prefixes():
    sources = {f"q{i}": f"/r/a/b[c = {i}]" for i in range(10)}
    engine = SharedPathEngine(filters_for(sources))
    # 10 queries share the 3-step navigation entirely: 3 trie nodes.
    assert engine.shared_nodes == 3
    assert engine.query_count == 10
    doc = parse_document("<r><a><b><c>4</c></b></a></r>")
    assert engine.filter_document(doc) == {"q4"}


def test_shared_path_engine_descendants_and_wildcards():
    sources = {"a": "//b[c = 1]", "b": "/r/*/b", "c": "//@k"}
    engine = SharedPathEngine(filters_for(sources))
    doc = parse_document('<r><x k="0"><b><c>1</c></b></x></r>')
    assert engine.filter_document(doc) == {"a", "b", "c"}


def test_engines_match_reference_on_generated_workloads(protein, protein_docs):
    filters = make_workload(protein, 30, seed=99)
    engines = [
        NaiveEngine(filters),
        PerQueryEngine(filters),
        SharedPathEngine(filters),
    ]
    for doc in protein_docs[:8]:
        want = matching_oids(filters, doc)
        for engine in engines:
            assert engine.filter_document(doc) == want, engine.name


def test_engines_handle_not_and_or(protein):
    sources = {
        "u": "/ProteinDatabase/ProteinEntry[not(keywords)]",
        "v": "//refinfo[year = 1999 or year = 2000]",
    }
    filters = filters_for(sources)
    engines = [NaiveEngine(filters), PerQueryEngine(filters), SharedPathEngine(filters)]
    for doc in protein.documents(6):
        want = matching_oids(filters, doc)
        for engine in engines:
            assert engine.filter_document(doc) == want, engine.name
