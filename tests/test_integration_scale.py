"""Medium-scale integration: independent engines agree on real streams.

The unit differential tests run tens of queries; this exercises the
machine at a few hundred queries over a multi-document stream, checked
against the structurally unrelated shared-path engine (so a common bug
in the automata layer cannot hide) — and across machine restarts via
the persistence layer.
"""

import pytest

from repro.afa.build import build_workload_automata
from repro.baselines import SharedPathEngine
from repro.xmlstream.writer import document_to_xml
from repro.xpush.machine import XPushMachine
from repro.xpush.options import variant_options
from repro.xpush.persist import workload_from_json, workload_to_json

from tests.conftest import make_workload


@pytest.mark.slow
def test_medium_scale_consistency(protein):
    filters = make_workload(
        protein, 300, seed=2026, mean_predicates=2.0,
        prob_or=0.1, prob_not=0.05, prob_nested=0.1,
        prob_descendant=0.05, prob_wildcard=0.02,
    )
    documents = list(protein.documents(20))
    stream = "".join(document_to_xml(d) for d in documents)

    workload = build_workload_automata(filters)
    machine = XPushMachine(
        workload, variant_options("TD-order-train"), dtd=protein.dtd
    )
    via_stream = machine.filter_stream(stream)

    shared = SharedPathEngine(filters)
    expected = [shared.filter_document(d) for d in documents]
    assert via_stream == expected

    # Restart from the persisted workload: identical answers again.
    restarted = XPushMachine(
        workload_from_json(workload_to_json(workload)),
        variant_options("TD"),
    )
    assert restarted.filter_stream(stream) == expected

    # The stream matched a healthy number of (query, document) pairs —
    # the workload isn't vacuous.
    matches = sum(len(r) for r in expected)
    assert matches > 20
    assert machine.stats.hit_ratio > 0.5
