"""Tests for WorkloadAutomata runtime operations: eval closure, δ⁻¹."""

from repro.afa.automaton import StateKind, WorkloadAutomata
from repro.afa.build import build_workload_automata
from repro.afa.predicates import AtomicPredicate
from repro.xpath.parser import parse_xpath


def build(*sources):
    return build_workload_automata(
        [parse_xpath(s, f"o{i}") for i, s in enumerate(sources)]
    )


def find(workload, kind, index=0):
    found = [s for s in workload.states if s.kind is kind and s.is_connective]
    return found[index]


def test_eval_adds_and_state_when_all_children_present():
    workload = build("/a[b = 1 and c = 2]")
    and_state = find(workload, StateKind.AND)
    children = list(and_state.eps)
    partial = workload.eval_closure([children[0]])
    assert and_state.sid not in partial
    full = workload.eval_closure(children)
    assert and_state.sid in full


def test_eval_adds_or_state_when_any_child_present():
    workload = build("/a[b = 1 or c = 2]")
    or_state = next(
        s for s in workload.states if s.kind is StateKind.OR and len(s.eps) == 2
    )
    assert or_state.sid in workload.eval_closure([or_state.eps[0]])
    assert or_state.sid in workload.eval_closure([or_state.eps[1]])
    assert or_state.sid not in workload.eval_closure([])


def test_eval_not_fires_on_absence():
    workload = build("/a[not(b = 1)]")
    (not_sid,) = workload.not_sids
    child = workload.states[not_sid].eps[0]
    assert not_sid in workload.eval_closure([])
    assert not_sid not in workload.eval_closure([child])


def test_eval_handles_double_negation_in_one_pass():
    workload = build("/a[not(not(b = 1))]")
    outer, inner = sorted(
        workload.not_sids, key=lambda sid: workload.states[sid].rank, reverse=True
    )
    # Inner child present → inner NOT absent → outer NOT present.
    inner_child = workload.states[inner].eps[0]
    closure = workload.eval_closure([inner_child])
    assert inner not in closure
    assert outer in closure
    # Nothing present → inner NOT fires → outer NOT must not.
    closure = workload.eval_closure([])
    assert inner in closure
    assert outer not in closure


def test_eval_nested_connectives():
    workload = build("/a[(b = 1 or c = 2) and d = 3]")
    and_state = find(workload, StateKind.AND)
    or_state = next(
        s for s in workload.states if s.kind is StateKind.OR and len(s.eps) == 2
    )
    d_branch = next(c for c in and_state.eps if c != or_state.sid)
    closure = workload.eval_closure([or_state.eps[0], d_branch])
    assert and_state.sid in closure


def test_delta_inverse_follows_labels_and_wildcards(running_filters):
    workload = build_workload_automata(running_filters)
    # From the paper's Example 3.4: tpop(q1, b) with q1 = {=1 terminals}
    # reaches the two b-navigation states.
    terminals_eq1 = [
        sid
        for sid in workload.terminals
        if workload.states[sid].predicate == AtomicPredicate("=", 1)
    ]
    lifted = workload.delta_inverse(frozenset(terminals_eq1), "b", False)
    assert len(lifted) == 2
    for sid in lifted:
        assert "b" in workload.states[sid].edges


def test_delta_inverse_self_loops(running_filters):
    workload = build_workload_automata(running_filters)
    init = workload.afas[0].initial
    # The *-self-loop keeps the initial state alive across any element close.
    assert init in workload.delta_inverse(frozenset([init]), "zzz", False)
    # ... but not across an attribute close (@* vs *).
    assert init not in workload.delta_inverse(frozenset([init]), "@zzz", True)


def test_delta_inverse_includes_top_edges():
    workload = build("/a[b]")
    lifted = workload.delta_inverse(frozenset(), "b", False)
    assert lifted  # existence edge fires even from the empty set
    assert not workload.delta_inverse(frozenset(), "c", False)


def test_accepted_oids(running_filters):
    workload = build_workload_automata(running_filters)
    both = frozenset(afa.initial for afa in workload.afas)
    assert workload.accepted_oids(both) == {"o1", "o2"}
    assert workload.accepted_oids(frozenset()) == frozenset()
    assert workload.accepted_oids(frozenset([workload.afas[0].initial])) == {"o1"}


def test_epsilon_closure():
    workload = build("/a[b = 1 and c = 2]")
    and_state = find(workload, StateKind.AND)
    closure = workload.epsilon_closure({and_state.sid})
    for child in and_state.eps:
        assert child in closure


def test_push_targets(running_filters):
    workload = build_workload_automata(running_filters)
    init = {afa.initial for afa in workload.afas}
    after_a = workload.push_targets(init, "a", False)
    # both AND states reached, plus the self-loops keep the inits alive
    kinds = {workload.states[sid].kind for sid in after_a}
    assert StateKind.AND in kinds
    assert init <= after_a  # * self-loops
    after_zzz = workload.push_targets(init, "zzz", False)
    assert after_zzz == init


def test_ranks_monotone():
    workload = build("/a[not(b = 1 and not(c = 2))]")
    for state in workload.states:
        for child in state.eps:
            assert state.rank > workload.states[child].rank
