"""Tests for the Graphviz export."""

from repro.afa.build import build_workload_automata
from repro.afa.dot import afa_to_dot, machine_states_to_dot
from repro.xmlstream.dom import parse_document
from repro.xpush.machine import XPushMachine


def test_afa_dot_structure(running_filters):
    workload = build_workload_automata(running_filters)
    dot = afa_to_dot(workload)
    assert dot.startswith("digraph")
    assert dot.count("subgraph cluster_") == 2  # one per filter
    assert "o1" in dot and "o2" in dot
    # All 13 AFA states present, AND states boxed, terminals doubled.
    for sid in range(13):
        assert f"n{sid} [" in dot
    assert "shape=box" in dot
    assert "shape=doublecircle" in dot
    assert "ε" in dot
    # Balanced braces → parseable by graphviz.
    assert dot.count("{") == dot.count("}")


def test_afa_dot_with_top_edges():
    workload = build_workload_automata(
        __import__("repro.xpath.parser", fromlist=["parse_workload"]).parse_workload(
            {"q": "/a[b]"}
        )
    )
    dot = afa_to_dot(workload)
    assert "⊤" in dot


def test_machine_states_dot(running_filters, running_document):
    machine = XPushMachine.from_filters(running_filters)
    machine.filter_document(running_document)
    dot = machine_states_to_dot(machine)
    assert dot.startswith("digraph")
    assert "pop" in dot
    assert "accepts" in dot  # the final state accepts o1,o2
    assert dot.count("{") == dot.count("}")


def test_machine_states_dot_with_early_pop_keys(running_filters, running_document):
    from repro.xpush.options import XPushOptions

    machine = XPushMachine.from_filters(
        running_filters,
        options=XPushOptions(top_down=True, early=True, precompute_values=False),
    )
    machine.filter_document(running_document)
    dot = machine_states_to_dot(machine)
    # Early mode stores tuple pop keys; the exporter renders the label part.
    assert "pop" in dot
    assert dot.count("{") == dot.count("}")


def test_machine_states_dot_cap(running_filters, running_document):
    machine = XPushMachine.from_filters(running_filters)
    machine.filter_document(running_document)
    dot = machine_states_to_dot(machine, max_states=2)
    assert dot.count("[label=") <= 2 + dot.count("->")
