"""Tests for the XPath → AFA compiler against the paper's Fig. 4."""

import pytest

from repro.afa.automaton import StateKind
from repro.afa.build import build_afa, build_workload_automata
from repro.errors import WorkloadError
from repro.xpath.parser import parse_xpath


def build(sources):
    if isinstance(sources, str):
        sources = [sources]
    return build_workload_automata(
        [parse_xpath(s, f"o{i+1}") for i, s in enumerate(sources)]
    )


def test_running_example_matches_fig4(running_filters):
    workload = build_workload_automata(running_filters)
    a1, a2 = workload.afas
    # Fig. 4: A1 has 7 states (1..7), A2 has 6 states (8..13).
    assert len(a1.state_sids) == 7
    assert len(a2.state_sids) == 6
    assert workload.state_count == 13

    states = workload.states
    init1 = states[a1.initial]
    # initial state: OR with a *-self-loop (//) and an `a` edge to the AND
    assert init1.kind is StateKind.OR
    assert init1.edges["*"] == [init1.sid]
    (and_sid,) = init1.edges["a"]
    and_state = states[and_sid]
    assert and_state.kind is StateKind.AND
    assert len(and_state.eps) == 2

    # One branch: b → terminal(=1); other: *-loop OR with a → @c → terminal(>2)
    kinds = sorted(
        (states[child].kind.name, bool(states[child].edges.get("b")))
        for child in and_state.eps
    )
    assert ("OR", True) in kinds

    terminals = [states[sid] for sid in workload.terminals]
    predicates = sorted(str(t.predicate) for t in terminals)
    assert predicates == ["= 1", "= 1", "> 2", "> 2"]


def test_notification_states_of_running_example(running_filters):
    workload = build_workload_automata(running_filters)
    # Example from Sec. 5: "the first branching state in A1 is 2, and in
    # A2 is 9" — i.e. each filter's AND state.
    for afa in workload.afas:
        assert workload.states[afa.notification].kind is StateKind.AND


def test_linear_path_compiles_to_top_edges():
    workload = build("//a/b")
    (afa,) = workload.afas
    assert not workload.terminals  # existence only, no predicate terminals
    assert "b" in workload.top_by_label
    # Notification of a linear existence filter: the state owning the ⊤ edge.
    note = workload.states[afa.notification]
    assert "b" in note.top_labels


def test_existence_predicate_uses_top_edge():
    workload = build("/a[b]")
    assert "b" in workload.top_by_label


def test_text_absorbed_into_terminal():
    workload = build("/a[b/text() = 1]")
    # Fig. 4 encoding: nav --b--> terminal; no separate text() state.
    terminal_sid = workload.terminals[0]
    sources = workload.states[terminal_sid].rev
    assert "b" in sources


def test_attribute_comparison():
    workload = build("//x[@k >= 10]")
    terminal_sid = workload.terminals[0]
    assert "@k" in workload.states[terminal_sid].rev


def test_not_state_created():
    workload = build("/a[not(b = 1)]")
    assert len(workload.not_sids) == 1
    not_state = workload.states[workload.not_sids[0]]
    assert len(not_state.eps) == 1


def test_or_connective():
    workload = build("/a[b = 1 or c = 2]")
    ors = [
        s
        for s in workload.states
        if s.kind is StateKind.OR and len(s.eps) == 2
    ]
    assert len(ors) == 1


def test_descendant_text():
    workload = build("/a[.//b//text() = 3]")
    # a//text() shape: OR with *-loop and an ε to the terminal
    terminal_sid = workload.terminals[0]
    parents = [
        s for s in workload.states if terminal_sid in s.eps
    ]
    assert len(parents) == 1
    assert parents[0].edges.get("*") == [parents[0].sid]


def test_trivially_true_filter_rejected():
    with pytest.raises(WorkloadError):
        build("/.")


def test_duplicate_oids_rejected():
    f = parse_xpath("/a", "same")
    g = parse_xpath("/b", "same")
    with pytest.raises(WorkloadError):
        build_workload_automata([f, g])


def test_owner_assignment(running_filters):
    workload = build_workload_automata(running_filters)
    for i, afa in enumerate(workload.afas):
        for sid in afa.state_sids:
            assert workload.states[sid].owner == i


def test_wildcard_steps():
    workload = build("/*/a[@* = 'x']")
    init = workload.states[workload.afas[0].initial]
    assert "*" in init.edges
    terminal = workload.states[workload.terminals[0]]
    assert "@*" in terminal.rev
