"""Tests for the from-scratch Aho-Corasick matcher."""

import random

import pytest

from repro.afa.ahocorasick import AhoCorasick


def brute_match_set(patterns, text):
    return frozenset(i for i, p in enumerate(patterns) if p in text)


def test_basic_matching():
    patterns = ["he", "she", "his", "hers"]
    matcher = AhoCorasick(patterns)
    assert matcher.match_set("ushers") == brute_match_set(patterns, "ushers")
    assert matcher.match_set("ushers") == {0, 1, 3}


def test_overlapping_patterns():
    patterns = ["aa", "aaa", "aaaa"]
    matcher = AhoCorasick(patterns)
    assert matcher.match_set("aaaa") == {0, 1, 2}
    assert matcher.match_set("aa") == {0}


def test_no_match():
    matcher = AhoCorasick(["xyz"])
    assert matcher.match_set("abcdef") == frozenset()
    assert matcher.match_set("") == frozenset()


def test_pattern_equal_to_text():
    matcher = AhoCorasick(["abc"])
    assert matcher.match_set("abc") == {0}


def test_duplicate_patterns_each_reported():
    matcher = AhoCorasick(["ab", "ab"])
    assert matcher.match_set("ab") == {0, 1}


def test_empty_pattern_rejected():
    with pytest.raises(ValueError):
        AhoCorasick([""])


def test_against_brute_force_randomised():
    rng = random.Random(7)
    alphabet = "abc"
    patterns = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 4)))
        for _ in range(12)
    ]
    matcher = AhoCorasick(patterns)
    for _ in range(200):
        text = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
        assert matcher.match_set(text) == brute_match_set(patterns, text), text
