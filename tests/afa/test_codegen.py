"""Unit wall for the codegen emitter (ISSUE 7).

These tests pin the emitter contract directly, below the machine:
handler counts match the plan, the generated source is real retained
Python, every generated handler agrees with the interpreted
:class:`CompiledMasks` tables it specialises (respecting the fused pop
handlers' ``qb ⊆ P`` contract), and the fallback boundary is exact —
one warning, never a hard error.  The machine-level three-way answers
wall lives in ``tests/xpush/test_runtime_differential.py``.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.afa.build import build_workload_automata
from repro.afa.codegen import (
    CHUNK_BITS,
    CHUNK_TABLE_LIMIT,
    CodegenUnsupported,
    _chunk_builder,
    compile_handlers,
    planned_handler_count,
)
from repro.errors import WorkloadError
from repro.xpath.parser import parse_workload

from tests.conftest import make_workload


def compiled(sources: dict[str, str]):
    workload = build_workload_automata(parse_workload(sources)).finalize()
    return workload, compile_handlers(workload)


def generated_workload(dataset, count, seed=0, **kwargs):
    workload = build_workload_automata(make_workload(dataset, count, seed, **kwargs))
    return workload.finalize()


# ---------------------------------------------------------------------------
# Shape: counts, source, retained metadata
# ---------------------------------------------------------------------------


def test_handler_count_matches_plan(protein):
    workload = generated_workload(protein, 40, seed=1)
    handlers = compile_handlers(workload)
    assert handlers.handler_count == planned_handler_count(workload.masks)
    assert handlers.compile_ms > 0.0


def test_source_is_retained_and_structured():
    _, handlers = compiled({"q0": "//a[b = 1]", "q1": "/x/*[@id = 'v']"})
    source = handlers.dump_source()
    assert source is handlers.source
    assert "def _pop_" in source
    assert "def _push_" in source
    assert "def _eval(" in source
    # Mask constants are baked in as int literals, not table lookups.
    assert "0x" in source


def test_source_compiles_standalone():
    """The dumped source is complete: exec'ing it (with the lazily
    bound tables stripped of defaults) must at least parse."""
    _, handlers = compiled({"q0": "//a[b = 1]"})
    compile(handlers.source, "<test>", "exec")


def test_empty_workload_compiles():
    workload = build_workload_automata([]).finalize()
    handlers = compile_handlers(workload)
    assert handlers.pop_elem_default(0) == 0
    assert handlers.eval_closure(0) == 0


# ---------------------------------------------------------------------------
# Differential: generated handlers vs the interpreted mask tables
# ---------------------------------------------------------------------------


def possible_mask(masks) -> int:
    """The fused pop handlers' input contract P: terminal bits, push-row
    source bits, and top rows (what a real qb can contain)."""
    possible = masks.terminal_mask
    for sources_mask, _table, _union in masks.push_rows().values():
        possible |= sources_mask
    for row in masks.top_rows().values():
        possible |= row
    return possible


def random_submasks(full: int, rng: random.Random, count: int):
    bits = [1 << i for i in range(full.bit_length()) if full >> i & 1]
    yield 0
    yield full
    for _ in range(count):
        chosen = rng.sample(bits, rng.randint(0, len(bits)))
        yield sum(chosen)


@pytest.mark.parametrize("seed", [0, 7])
def test_generated_handlers_match_masks(protein, seed):
    workload = generated_workload(protein, 30, seed=seed)
    masks = workload.masks
    handlers = compile_handlers(workload)
    rng = random.Random(seed)
    full = (1 << workload.state_count) - 1
    possible = possible_mask(masks)

    for mask in random_submasks(full, rng, 40):
        assert handlers.eval_closure(mask) == masks.eval_closure(mask)

    labels = sorted(set(masks.rev_rows()) | set(masks.push_rows()) | {"zz", "@zz"})
    for label in labels:
        is_attr = label.startswith("@")
        push = handlers.push.get(label) or (
            handlers.push_attr_default if is_attr else handlers.push_elem_default
        )
        pop = handlers.pop.get(label) or (
            handlers.pop_attr_default if is_attr else handlers.pop_elem_default
        )
        pop_ev = handlers.pop_ev.get(label) or (
            handlers.pop_ev_attr_default if is_attr else handlers.pop_ev_elem_default
        )
        for mask in random_submasks(full, rng, 25):
            assert push(mask) == masks.push_targets_closure(mask, label, is_attr)
            evaluated = masks.eval_closure(mask)
            assert pop_ev(evaluated) == masks.delta_inverse(evaluated, label, is_attr)
            qb = mask & possible  # the fused handler's qb ⊆ P contract
            assert pop(qb) == masks.delta_inverse(
                masks.eval_closure(qb), label, is_attr
            )


def test_not_heavy_workload_matches_masks(protein):
    """NOT-heavy connective DAGs exercise the non-foldable statement
    path (xN assignments) rather than the swept tables."""
    workload = generated_workload(protein, 20, seed=5, prob_not=0.6, prob_nested=0.4)
    masks = workload.masks
    handlers = compile_handlers(workload)
    rng = random.Random(5)
    full = (1 << workload.state_count) - 1
    for mask in random_submasks(full, rng, 60):
        assert handlers.eval_closure(mask) == masks.eval_closure(mask)


def test_dense_and_sparse_pop_inputs_agree(protein):
    """The large-union pop sweep picks per call between a per-bit scan
    (sparse masks) and a chunked window scan (dense masks); both
    paths must agree with the interpreted tables."""
    workload = generated_workload(protein, 400, seed=11, mean_predicates=1.15)
    masks = workload.masks
    handlers = compile_handlers(workload)
    possible = possible_mask(masks)
    label = max(masks.rev_rows(), key=lambda lb: len(masks.rev_rows()[lb]))
    pop = handlers.pop.get(label) or handlers.pop_elem_default
    rng = random.Random(11)
    bits = [1 << i for i in range(possible.bit_length()) if possible >> i & 1]

    def check(qb):
        assert pop(qb) == masks.delta_inverse(
            masks.eval_closure(qb), label, label.startswith("@")
        )

    check(possible)  # densest possible input -> chunked windows
    for size in (1, 2, 5):  # sparse inputs -> per-bit scan
        for _ in range(10):
            check(sum(rng.sample(bits, min(size, len(bits)))))
    for _ in range(10):  # mid-density inputs straddle the cutover
        check(sum(rng.sample(bits, len(bits) // 2)))


def test_chunk_builder_is_idempotent_and_bounded():
    per_bit = {1 << i: 1 << (i + 10) for i in range(8)}
    table: dict = {}
    build = _chunk_builder(table, per_bit)
    key = (0 << CHUNK_BITS) | 0b10110000  # window 0, pattern with 3 bits

    first = build(key)
    assert first == per_bit[0b10000000] | per_bit[0b00100000] | per_bit[0b00010000]
    assert table[key] == first
    assert build(key) == first  # built once, then served from the table

    # Overflow clears the table instead of growing without bound.
    for i in range(CHUNK_TABLE_LIMIT):
        table[-i - 1] = 0
    build((1 << CHUNK_BITS) | 0b1)
    assert len(table) <= 2


# ---------------------------------------------------------------------------
# Fallback boundary
# ---------------------------------------------------------------------------


def test_fallback_boundary_is_exact(protein):
    workload = generated_workload(protein, 25, seed=2)
    planned = planned_handler_count(workload.masks)
    assert compile_handlers(workload, planned).handler_count == planned
    with pytest.raises(CodegenUnsupported):
        compile_handlers(workload, planned - 1)


def test_workload_fallback_warns_once_and_caches(protein):
    workload = generated_workload(protein, 25, seed=2)
    planned = planned_handler_count(workload.masks)
    with pytest.warns(RuntimeWarning, match="falling back to the bitmask"):
        assert workload.compiled_handlers(planned - 1) is None
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        assert workload.compiled_handlers(planned - 1) is None
    # The bound is part of the cache key: a permissive bound still works.
    handlers = workload.compiled_handlers(planned)
    assert handlers is not None
    assert workload.compiled_handlers(planned) is handlers


def test_machine_falls_back_with_identical_answers(protein, protein_docs):
    from repro.xpush.machine import XPushMachine
    from repro.xpush.options import XPushOptions

    filters = make_workload(protein, 18, seed=8)
    reference = XPushMachine(
        build_workload_automata(filters), XPushOptions(runtime="bitmask")
    )
    with pytest.warns(RuntimeWarning):
        declined = XPushMachine(
            build_workload_automata(filters),
            XPushOptions(runtime="codegen", codegen_max_handlers=1),
        )
    docs = protein_docs[:6]
    assert [declined.filter_document(d) for d in docs] == [
        reference.filter_document(d) for d in docs
    ]
    assert declined.stats.codegen_fallbacks > 0
    assert declined.stats.codegen_handlers == 0
    assert declined.dump_source() is None


def test_unfinalized_workload_is_rejected():
    workload = build_workload_automata(parse_workload({"q0": "//a"}))
    workload.masks = None  # simulate a never-finalized workload
    with pytest.raises(WorkloadError, match="finalize"):
        workload.compiled_handlers()
