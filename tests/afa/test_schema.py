"""Schema-aware AFA specialization (repro.afa.schema).

The pruning makes exactly two assumptions — every start-element label
is producible under the DTD, and nesting respects the derived depth
bound — so the wall here is differential: schema-on must equal
schema-off on conforming input for every compiled runtime, and
``validate`` mode must equal schema-off even on *non*-conforming
input (by falling back, never by mis-answering).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.afa.build import build_workload_automata
from repro.afa.schema import analyze, dtd_fingerprint, specialize
from repro.errors import WorkloadError
from repro.xmlstream.dtd import DTD, ElementDecl, PCDATA, elem, seq
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import SCHEMA_MODES, XPushOptions

from tests.conftest import make_workload

#: Compiled runtimes the specialization feeds (the "sets" reference
#: runtime deliberately ignores schema_mode).
COMPILED_RUNTIMES = ("bitmask", "codegen")


def mixed_workload(protein, nasa, protein_count=20, nasa_count=20):
    """Protein plus NASA queries under one workload — under the protein
    DTD the NASA-only states are forward-unreachable, so the pruning
    has real work to do (a single-dataset workload is schema-consistent
    by construction and prunes little)."""
    filters = list(make_workload(protein, protein_count, seed=11))
    for index, f in enumerate(make_workload(nasa, nasa_count, seed=12)):
        filters.append(parse_xpath(f.source, f"nasa{index}"))
    return filters


# ----------------------------------------------------------------------
# Fingerprint and analysis
# ----------------------------------------------------------------------


def test_fingerprint_is_stable(protein):
    assert dtd_fingerprint(protein.dtd) == dtd_fingerprint(protein.dtd)


def test_fingerprint_distinguishes_dtds(protein, nasa):
    assert dtd_fingerprint(protein.dtd) != dtd_fingerprint(nasa.dtd)


def test_fingerprint_sensitive_to_content_model():
    a = DTD("r", [ElementDecl("r", seq(elem("x"))), ElementDecl("x", PCDATA)])
    b = DTD("r", [ElementDecl("r", seq(elem("x", "*"))), ElementDecl("x", PCDATA)])
    assert dtd_fingerprint(a) != dtd_fingerprint(b)


def test_analyze_protein_depth_bound(protein):
    analysis = analyze(protein.dtd)
    assert not analysis.is_recursive
    # Paper Sec. 7: protein max document depth 7; attributes push one
    # pseudo-level deeper.
    assert analysis.max_depth == 7
    assert analysis.depth_bound == 8
    assert not analysis.saturated
    assert analysis.levels[0] == frozenset({protein.dtd.root})


def test_analyze_nasa_is_unbounded(nasa):
    analysis = analyze(nasa.dtd)
    assert analysis.is_recursive
    assert analysis.max_depth is None
    assert analysis.depth_bound is None
    assert analysis.saturated


def test_analyze_producible_covers_attributes(protein):
    analysis = analyze(protein.dtd)
    assert analysis.element_labels <= analysis.producible
    assert analysis.attribute_labels <= analysis.producible
    assert all(label.startswith("@") for label in analysis.attribute_labels)


# ----------------------------------------------------------------------
# Specialization mechanics
# ----------------------------------------------------------------------


def test_specialize_prunes_foreign_states(protein, nasa):
    workload = build_workload_automata(mixed_workload(protein, nasa))
    spec = specialize(workload, protein.dtd)
    assert spec.pruned_state_count > 0
    assert spec.pruned_edge_count > 0
    # Same sid space: externally visible structure lines up 1:1.
    assert len(spec.workload.states) == len(workload.states)
    assert [afa.oid for afa in spec.workload.afas] == [
        afa.oid for afa in workload.afas
    ]
    # A pruned state really is emptied out.
    for sid in spec.pruned_sids:
        twin = spec.workload.states[sid]
        assert not twin.edges and not twin.eps and not twin.top_labels
        assert twin.predicate is None


def test_specialize_keeps_consistent_workload_intact(protein):
    """A pure single-dataset workload is schema-consistent: nothing to
    prune, and the pruned tables answer identically by construction."""
    workload = build_workload_automata(make_workload(protein, 25, seed=4))
    spec = specialize(workload, protein.dtd)
    assert spec.pruned_state_count == 0
    assert spec.pruned_edge_count == 0


def test_specialize_is_cached_per_fingerprint(protein, nasa):
    workload = build_workload_automata(mixed_workload(protein, nasa, 5, 5))
    assert specialize(workload, protein.dtd) is specialize(workload, protein.dtd)
    assert specialize(workload, protein.dtd) is not specialize(workload, nasa.dtd)


def test_specialize_requires_finalized_workload(protein):
    from repro.afa.automaton import WorkloadAutomata

    with pytest.raises(WorkloadError):
        specialize(WorkloadAutomata(), protein.dtd)


def test_materialized_push_rows_cover_producible_labels(protein, nasa):
    workload = build_workload_automata(mixed_workload(protein, nasa, 10, 5))
    spec = specialize(workload, protein.dtd)
    rows = spec.workload.masks.push_rows()
    wild_rows = workload.masks.push_rows()
    analysis = spec.analysis
    # Every element label the schema can produce resolves to a direct
    # per-label row — t_push never falls through to the wildcard.
    covered = {label for label in analysis.element_labels if label in rows}
    assert covered == set(analysis.element_labels)
    assert len(rows) >= len(wild_rows)


def test_schema_mode_requires_dtd(protein):
    workload = build_workload_automata(make_workload(protein, 5, seed=1))
    with pytest.raises(WorkloadError):
        XPushMachine(workload, XPushOptions(schema_mode="trust"))


def test_unknown_schema_mode_rejected():
    with pytest.raises(ValueError):
        XPushOptions(schema_mode="hope")
    assert set(SCHEMA_MODES) == {"off", "trust", "validate"}


def test_sets_runtime_ignores_schema(protein, protein_docs):
    workload = build_workload_automata(make_workload(protein, 10, seed=2))
    machine = XPushMachine(
        workload,
        XPushOptions(runtime="sets", schema_mode="trust"),
        dtd=protein.dtd,
    )
    assert machine.schema is None
    machine.filter_document(protein_docs[0])


# ----------------------------------------------------------------------
# Differential wall: conforming input
# ----------------------------------------------------------------------


def _machine(workload, options, dtd):
    return XPushMachine(workload, options, dtd=dtd)


@pytest.mark.parametrize("runtime", COMPILED_RUNTIMES)
@pytest.mark.parametrize("mode", ["trust", "validate"])
def test_schema_on_equals_schema_off_on_conforming_input(
    runtime, mode, protein, nasa, protein_docs
):
    filters = mixed_workload(protein, nasa)
    workload = build_workload_automata(filters)
    base = XPushOptions(top_down=True, precompute_values=False, runtime=runtime)
    plain = _machine(workload, base, protein.dtd)
    pruned = _machine(workload, replace(base, schema_mode=mode), protein.dtd)
    expected = [matching_oids(filters, doc) for doc in protein_docs]
    assert [plain.filter_document(d) for d in protein_docs] == expected
    assert [pruned.filter_document(d) for d in protein_docs] == expected
    assert pruned.stats.schema_pruned_states > 0
    assert pruned.stats.schema_fallbacks == 0


@pytest.mark.parametrize("mode", ["trust", "validate"])
def test_schema_with_early_notification(mode, protein, nasa, protein_docs):
    filters = mixed_workload(protein, nasa, 15, 10)
    workload = build_workload_automata(filters)
    options = XPushOptions(
        top_down=True, early=True, precompute_values=False, schema_mode=mode
    )
    machine = _machine(workload, options, protein.dtd)
    expected = [matching_oids(filters, doc) for doc in protein_docs[:10]]
    assert [machine.filter_document(d) for d in protein_docs[:10]] == expected


def test_bounded_stack_round_trips(protein, protein_docs):
    """A non-recursive schema runs on the preallocated frame buffer;
    repeated documents must not grow it or leak frames."""
    workload = build_workload_automata(make_workload(protein, 15, seed=8))
    machine = _machine(
        workload, XPushOptions(schema_mode="trust"), protein.dtd
    )
    assert machine._stack_bound == 8
    assert len(machine._stack) == 8
    for doc in protein_docs[:10]:
        machine.filter_document(doc)
        assert machine._sp == 0
    assert len(machine._stack) == 8


def test_recursive_schema_has_no_stack_bound(nasa, nasa_docs):
    filters = make_workload(nasa, 10, seed=3, prob_descendant=0.3)
    workload = build_workload_automata(filters)
    machine = _machine(workload, XPushOptions(schema_mode="trust"), nasa.dtd)
    assert machine._stack_bound is None
    expected = [matching_oids(filters, doc) for doc in nasa_docs[:8]]
    assert [machine.filter_document(d) for d in nasa_docs[:8]] == expected


def test_reset_tables_under_schema(protein, protein_docs):
    workload = build_workload_automata(make_workload(protein, 15, seed=21))
    machine = _machine(workload, XPushOptions(schema_mode="trust"), protein.dtd)
    before = [machine.filter_document(d) for d in protein_docs[:5]]
    machine.reset_tables()
    assert len(machine._stack) == 8 and machine._sp == 0
    assert [machine.filter_document(d) for d in protein_docs[:5]] == before


# ----------------------------------------------------------------------
# Validate mode: non-conforming input
# ----------------------------------------------------------------------


@pytest.mark.parametrize("runtime", COMPILED_RUNTIMES)
def test_validate_never_misanswers_on_nonconforming_input(
    runtime, protein, nasa, protein_docs, nasa_docs
):
    """Filter a stream that mixes protein documents (conforming) with
    NASA documents (not producible under the protein DTD): ``validate``
    must match the unpruned machine document-for-document, counting one
    fallback per non-conforming document."""
    filters = mixed_workload(protein, nasa)
    workload = build_workload_automata(filters)
    stream = (
        protein_docs[:3] + nasa_docs[:5] + protein_docs[3:5]
    )
    base = XPushOptions(top_down=True, precompute_values=False, runtime=runtime)
    plain = _machine(workload, base, protein.dtd)
    checking = _machine(workload, replace(base, schema_mode="validate"), protein.dtd)
    expected = [plain.filter_document(doc) for doc in stream]
    assert [checking.filter_document(doc) for doc in stream] == expected
    assert expected == [matching_oids(filters, doc) for doc in stream]
    assert checking.stats.schema_fallbacks == 5
    assert checking.stats.documents == len(stream)


def test_validate_with_early_notification_on_nonconforming_input(
    protein, nasa, protein_docs, nasa_docs
):
    filters = mixed_workload(protein, nasa, 15, 15)
    workload = build_workload_automata(filters)
    stream = protein_docs[:2] + nasa_docs[:3] + protein_docs[2:4]
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    plain = _machine(workload, options, protein.dtd)
    checking = _machine(
        workload, replace(options, schema_mode="validate"), protein.dtd
    )
    assert [checking.filter_document(d) for d in stream] == [
        plain.filter_document(d) for d in stream
    ]


def test_validate_recovers_after_fallback(protein, nasa, protein_docs, nasa_docs):
    """After a non-conforming document trips the fallback, the next
    conforming document runs on the pruned tables again."""
    filters = mixed_workload(protein, nasa, 10, 10)
    workload = build_workload_automata(filters)
    machine = _machine(
        workload,
        XPushOptions(schema_mode="validate"),
        protein.dtd,
    )
    machine.filter_document(nasa_docs[0])
    assert machine.stats.schema_fallbacks == 1
    before = machine.stats.schema_fallbacks
    expected = matching_oids(filters, protein_docs[0])
    assert machine.filter_document(protein_docs[0]) == expected
    assert machine.stats.schema_fallbacks == before


def test_validate_stats_survive_warm_up(protein, nasa, nasa_docs):
    filters = mixed_workload(protein, nasa, 8, 8)
    workload = build_workload_automata(filters)
    machine = _machine(workload, XPushOptions(schema_mode="validate"), protein.dtd)
    machine.filter_document(nasa_docs[0])
    assert machine.stats.schema_fallbacks == 1
    machine.warm_up()
    assert machine.stats.schema_fallbacks == 1
    assert machine.stats.schema_pruned_states > 0
