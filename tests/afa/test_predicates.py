"""Tests for atomic predicate comparison semantics."""

import pytest

from repro.afa.predicates import AtomicPredicate, canonical_value, compare, parse_number


def test_canonicalisation_strips():
    assert canonical_value("  1 ") == "1"
    assert compare(" 1 ", "=", 1)


def test_numeric_comparisons():
    assert compare("3", ">", 2)
    assert compare("3.5", ">=", 3.5)
    assert not compare("2", ">", 2)
    assert compare("2", "!=", 3)
    assert compare("-4", "<", 0)
    assert compare("10", "=", 10.0)


def test_non_numeric_value_fails_numeric_predicate():
    assert not compare("abc", ">", 2)
    assert not compare("", "=", 0)
    assert not compare("3x", "=", 3)


def test_string_comparisons():
    assert compare("abc", "=", "abc")
    assert compare("abd", ">", "abc")
    assert compare("ab", "<", "abc")
    assert not compare("abc", "!=", "abc")
    # strings compare on the canonical (stripped) value
    assert compare(" abc ", "=", "abc")


def test_string_ops():
    assert compare("hello", "starts-with", "he")
    assert not compare("hello", "starts-with", "lo")
    assert compare("hello", "contains", "ell")
    assert not compare("hello", "contains", "xyz")
    with pytest.raises(ValueError):
        compare("x", "contains", 5)


def test_parse_number():
    assert parse_number("42") == 42.0
    assert parse_number(" 4.5") == 4.5
    assert parse_number("nope") is None


def test_atomic_predicate_object():
    predicate = AtomicPredicate(">", 2)
    assert predicate.test("3")
    assert not predicate.test("2")
    assert predicate.is_numeric
    assert str(predicate) == "> 2"


def test_true_predicate():
    assert AtomicPredicate.TRUE.is_true
    assert AtomicPredicate.TRUE.test("anything")
    assert AtomicPredicate.TRUE.test("")


def test_invalid_predicates():
    with pytest.raises(ValueError):
        AtomicPredicate("~", 1)
    with pytest.raises(ValueError):
        AtomicPredicate("=", None)


def test_predicate_equality_and_hash():
    assert AtomicPredicate("=", 1) == AtomicPredicate("=", 1)
    assert len({AtomicPredicate("=", 1), AtomicPredicate("=", 1)}) == 1
