"""Tests for the atomic predicate index (vs. brute-force scans)."""

import random

import pytest

from repro.afa.index import AtomicPredicateIndex
from repro.afa.predicates import AtomicPredicate


def build_index(predicates):
    index = AtomicPredicateIndex()
    for i, predicate in enumerate(predicates):
        index.add(predicate, i)
    return index.freeze(), predicates


def brute(predicates, value):
    return frozenset(i for i, p in enumerate(predicates) if p.test(value))


def test_numeric_intervals():
    index, predicates = build_index(
        [
            AtomicPredicate("=", 1),
            AtomicPredicate(">", 2),
            AtomicPredicate("<", 5),
            AtomicPredicate(">=", 2),
            AtomicPredicate("!=", 1),
        ]
    )
    for value in ["0", "1", "1.5", "2", "3", "5", "6", "-7", "1e3"]:
        assert index.lookup(value) == brute(predicates, value), value


def test_paper_value_index():
    # The Fig. 3 T_value: predicates = 1 and > 2.
    index, predicates = build_index([AtomicPredicate("=", 1), AtomicPredicate(">", 2)])
    assert index.lookup("0.5") == frozenset()  # (-inf, 1)
    assert index.lookup("1") == {0}  # {1}
    assert index.lookup("1.5") == frozenset()  # (1, 2]
    assert index.lookup("2") == frozenset()
    assert index.lookup("3") == {1}  # (2, inf)


def test_string_predicates():
    index, predicates = build_index(
        [
            AtomicPredicate("=", "john"),
            AtomicPredicate(">", "m"),
            AtomicPredicate("<=", "zz"),
        ]
    )
    for value in ["adam", "john", "mary", "zz", "zzz", ""]:
        assert index.lookup(value) == brute(predicates, value), value


def test_mixed_numeric_and_string():
    index, predicates = build_index(
        [AtomicPredicate("=", 5), AtomicPredicate("=", "5"), AtomicPredicate("<", "9")]
    )
    # "5" is numeric AND a string: both equality predicates fire.
    assert index.lookup("5") == brute(predicates, "5") == {0, 1, 2}
    assert index.lookup("5.0") == brute(predicates, "5.0")  # numeric = only


def test_substring_predicates():
    index, predicates = build_index(
        [
            AtomicPredicate("contains", "ell"),
            AtomicPredicate("starts-with", "he"),
            AtomicPredicate("=", "hello"),
        ]
    )
    for value in ["hello", "shell", "he", "x"]:
        assert index.lookup(value) == brute(predicates, value), value


def test_key_identifies_equivalence_classes():
    index, predicates = build_index([AtomicPredicate(">", 2), AtomicPredicate("<", 7)])
    assert index.key_of("3") == index.key_of("4")
    assert index.key_of("3") != index.key_of("2")
    assert index.key_of("2") != index.key_of("8")


def test_cache_hits_accumulate():
    index, _ = build_index([AtomicPredicate("=", 1)])
    index.lookup("1")
    index.lookup("1")
    index.lookup(" 1 ")  # same canonical key
    assert index.lookups == 3
    assert index.hits == 2
    assert 0 < index.hit_ratio < 1


def test_precompute_covers_all_intervals():
    index, predicates = build_index(
        [AtomicPredicate("=", 1), AtomicPredicate(">", 2), AtomicPredicate("=", "abc")]
    )
    cached = index.precompute()
    assert cached >= 5
    # Lookups after precompute are all hits for in-range values.
    before = index.hits
    index.lookup("1")
    index.lookup("3")
    assert index.hits == before + 2


def test_add_after_freeze_rejected():
    index, _ = build_index([AtomicPredicate("=", 1)])
    with pytest.raises(RuntimeError):
        index.add(AtomicPredicate("=", 2), 99)


def test_lookup_before_freeze_rejected():
    index = AtomicPredicateIndex()
    index.add(AtomicPredicate("=", 1), 0)
    with pytest.raises(RuntimeError):
        index.lookup("1")


def test_randomised_against_brute_force():
    rng = random.Random(11)
    predicates = []
    for _ in range(40):
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        if rng.random() < 0.5:
            predicates.append(AtomicPredicate(op, rng.randint(-5, 5)))
        else:
            predicates.append(AtomicPredicate(op, rng.choice("abcde") * rng.randint(1, 3)))
    index, _ = build_index(predicates)
    values = [str(rng.randint(-6, 6)) for _ in range(30)]
    values += ["".join(rng.choice("abcdef") for _ in range(rng.randint(0, 4))) for _ in range(30)]
    for value in values:
        assert index.lookup(value) == brute(predicates, value), value
