"""Cross-cutting edge cases: unicode, odd values, deep structures."""

import pytest

from repro.errors import MixedContentError
from repro.xmlstream.dom import parse_document
from repro.xmlstream.writer import document_to_xml
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_filter, matching_oids
from repro.xpush.machine import XPushMachine


def check(sources, xml):
    """Machine answers must equal reference answers on this document."""
    filters = [parse_xpath(x, f"q{i}") for i, x in enumerate(sources)]
    machine = XPushMachine.from_filters(filters)
    doc = parse_document(xml)
    assert machine.filter_document(doc) == matching_oids(filters, doc)
    return machine.filter_document(doc)


def test_unicode_labels_and_values():
    got = check(
        ["//café[λ = 'наука']", "//café"],
        "<café><λ>наука</λ></café>",
    )
    assert got == {"q0", "q1"}


def test_unicode_round_trip():
    doc = parse_document("<a t='χ𝄞'>中文 text</a>")
    again = parse_document(document_to_xml(doc))
    assert again.root.text == "中文 text"
    assert again.root.attribute("t") == "χ𝄞"


def test_numeric_value_formats():
    assert check(["/a[b = 10]"], "<a><b>1e1</b></a>") == {"q0"}
    assert check(["/a[b = 0.5]"], "<a><b>.5</b></a>") == {"q0"}
    assert check(["/a[b = -3]"], "<a><b>-3.0</b></a>") == {"q0"}
    assert check(["/a[b > 1000]"], "<a><b>inf</b></a>") == {"q0"}  # float('inf')
    assert check(["/a[b = 1]"], "<a><b>one</b></a>") == frozenset()


def test_empty_and_whitespace_values():
    # Whitespace-only text is ignorable; the element has no text event.
    assert check(["/a[b = '']"], "<a><b>  </b></a>") == frozenset()
    assert check(["/a[b]"], "<a><b>  </b></a>") == {"q0"}  # existence still holds


def test_duplicate_sibling_labels():
    got = check(
        ["/a[b = 1 and b = 2]"],
        "<a><b>1</b><b>2</b></a>",
    )
    assert got == {"q0"}  # different b's may witness different conjuncts


def test_same_label_nested():
    got = check(["//a[a[a]]"], "<a><a><a/></a></a>")
    assert got == {"q0"}
    assert check(["//a[a[a]]"], "<a><a/></a>") == frozenset()


def test_attribute_and_element_same_name():
    got = check(
        ["//x[@n = 1]", "//x[n = 1]"],
        '<x n="1"><n>2</n></x>',
    )
    assert got == {"q0"}


def test_very_deep_document():
    depth = 300
    xml = "<a>" * depth + "<leaf>1</leaf>" + "</a>" * depth
    assert check(["//leaf[text() = 1]"], xml) == {"q0"}


def test_wide_document():
    xml = "<a>" + "".join(f"<b>{i}</b>" for i in range(500)) + "</a>"
    assert check(["/a[b = 499]", "/a[b = 500]"], xml) == {"q0"}


def test_mixed_content_raises_consistently():
    machine = XPushMachine.from_xpath({"q": "//a"})
    with pytest.raises(MixedContentError):
        machine.filter_document(parse_document("<a>x<b/>y</a>"))
    # The machine remains usable for the next document.
    assert machine.filter_document(parse_document("<a/>")) == {"q"}


def test_comparison_against_negative_and_zero():
    assert check(["/a[b != 0]"], "<a><b>0</b></a>") == frozenset()
    assert check(["/a[b <= -1]"], "<a><b>-5</b></a>") == {"q0"}


def test_many_predicates_single_step():
    predicates = " and ".join(f"c{i} = {i}" for i in range(12))
    body = "".join(f"<c{i}>{i}</c{i}>" for i in range(12))
    assert check([f"/a[{predicates}]"], f"<a>{body}</a>") == {"q0"}
    body_missing = "".join(f"<c{i}>{i}</c{i}>" for i in range(11))
    assert check([f"/a[{predicates}]"], f"<a>{body_missing}</a>") == frozenset()
