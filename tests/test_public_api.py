"""Smoke tests for the public API surface and reprs."""

import importlib

import repro


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_subpackage_all_resolves():
    for module_name in (
        "repro.xmlstream",
        "repro.xpath",
        "repro.afa",
        "repro.xpush",
        "repro.baselines",
        "repro.data",
        "repro.theory",
        "repro.bench",
    ):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_reprs_are_informative(running_filters, running_document):
    from repro.afa.build import build_workload_automata
    from repro.xpush.machine import XPushMachine

    workload = build_workload_automata(running_filters)
    assert "AFA(oid='o1'" in repr(workload.afas[0])
    assert "OR" in repr(workload.states[0])
    assert "workload: 2 AFAs, 13 states" in workload.describe()

    machine = XPushMachine(workload)
    machine.filter_document(running_document)
    state = machine.store.bottom_states()[-1]
    assert repr(state).startswith("<Qb#")
    top = machine.qt0
    assert "Qt#" in repr(top)


def test_error_hierarchy():
    from repro.errors import (
        DTDError,
        EventStreamError,
        MixedContentError,
        ReproError,
        WorkloadError,
        XMLSyntaxError,
        XPathSyntaxError,
    )

    for error in (
        DTDError,
        EventStreamError,
        MixedContentError,
        WorkloadError,
        XMLSyntaxError,
        XPathSyntaxError,
    ):
        assert issubclass(error, ReproError)


def test_xpath_syntax_error_carries_position():
    import pytest

    from repro.errors import XPathSyntaxError
    from repro.xpath.parser import parse_xpath

    with pytest.raises(XPathSyntaxError) as excinfo:
        parse_xpath("/a[b = ]")
    assert excinfo.value.position is not None
    assert ">>>" in str(excinfo.value)


def test_xml_syntax_error_carries_line():
    import pytest

    from repro.errors import XMLSyntaxError
    from repro.xmlstream.parser import parse_events

    with pytest.raises(XMLSyntaxError) as excinfo:
        parse_events("<a>\n<b>\n</wrong>")
    assert "line 3" in str(excinfo.value)
