"""Property: persistence round-trips arbitrary generated workloads."""

import json

from hypothesis import given, settings, strategies as st

from repro.afa.build import build_workload_automata
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.persist import workload_from_json, workload_to_json

from tests.property.test_machine_properties import documents, workloads


@given(workloads())
@settings(max_examples=80, deadline=None)
def test_round_trip_preserves_structure(filters):
    original = build_workload_automata(filters)
    rebuilt = workload_from_json(
        json.loads(json.dumps(workload_to_json(original)))
    )
    assert rebuilt.state_count == original.state_count
    assert rebuilt.initial_sids == original.initial_sids
    assert rebuilt.terminals == original.terminals
    for a, b in zip(original.states, rebuilt.states):
        assert (a.kind, a.predicate, a.edges, a.eps, a.top_labels, a.rank) == (
            b.kind,
            b.predicate,
            b.edges,
            b.eps,
            b.top_labels,
            b.rank,
        )


@given(workloads(), documents)
@settings(max_examples=60, deadline=None)
def test_round_trip_preserves_answers(filters, document):
    if document.has_mixed_content():
        return
    rebuilt = workload_from_json(
        workload_to_json(build_workload_automata(filters))
    )
    machine = XPushMachine(rebuilt)
    assert machine.filter_document(document) == matching_oids(filters, document)
