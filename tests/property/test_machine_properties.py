"""Properties of the XPush machine: correctness vs. reference and
determinism, over hypothesis-generated documents and workloads."""

import string

from hypothesis import given, settings, strategies as st

from repro.afa.build import build_workload_automata
from repro.xmlstream.dom import Document, Element
from repro.xpath.ast import (
    And,
    Axis,
    Comparison,
    Exists,
    LocationPath,
    Not,
    NodeTest,
    NodeTestKind,
    Or,
    Step,
    XPathFilter,
)
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions

# A small shared vocabulary keeps collisions (the interesting case) likely.
LABELS = ["a", "b", "c", "d"]
VALUES = ["1", "2", "x"]

labels = st.sampled_from(LABELS)
values = st.sampled_from(VALUES)


@st.composite
def elements(draw, depth=0):
    node = Element(draw(labels))
    n_attrs = draw(st.integers(0, 2))
    seen = set()
    for _ in range(n_attrs):
        name = draw(labels)
        if name not in seen:
            seen.add(name)
            node.attributes.append((name, draw(values)))
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            node.text = draw(values)
        return node
    node.children = draw(st.lists(elements(depth=depth + 1), max_size=3))
    return node


documents = elements().map(Document)


@st.composite
def relative_paths(draw):
    steps = []
    for _ in range(draw(st.integers(1, 2))):
        steps.append(
            Step(
                draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT])),
                NodeTest(NodeTestKind.NAME, draw(labels)),
            )
        )
    if draw(st.booleans()):
        steps.append(Step(Axis.CHILD, NodeTest(NodeTestKind.TEXT)))
    elif draw(st.booleans()):
        steps[-1] = Step(
            steps[-1].axis, NodeTest(NodeTestKind.ATTRIBUTE, "@" + draw(labels))
        )
    return LocationPath(tuple(steps))


@st.composite
def boolean_exprs(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        path = draw(relative_paths())
        if draw(st.booleans()):
            constant = draw(st.sampled_from([1, 2, "x", "1"]))
            op = draw(st.sampled_from(["=", "!=", "<", ">"]))
            return Comparison(path, op, constant)
        return Exists(path)
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(boolean_exprs(depth=depth + 1)))
    children = tuple(
        draw(boolean_exprs(depth=depth + 1)) for _ in range(draw(st.integers(2, 3)))
    )
    return And(children) if kind == "and" else Or(children)


@st.composite
def filters(draw, oid="q0"):
    steps = []
    for i in range(draw(st.integers(1, 3))):
        axis = Axis.DESCENDANT if draw(st.booleans()) else Axis.CHILD
        predicates = tuple(
            draw(boolean_exprs()) for _ in range(draw(st.integers(0, 2)))
        )
        steps.append(Step(axis, NodeTest(NodeTestKind.NAME, draw(labels)), predicates))
    path = LocationPath(tuple(steps), absolute=True)
    return XPathFilter(path, oid=oid, source=str(path))


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 4))
    return [draw(filters(oid=f"q{i}")) for i in range(n)]


@given(workloads(), st.lists(documents, min_size=1, max_size=3))
@settings(max_examples=120, deadline=None)
def test_machine_equals_reference(workload, docs):
    machine = XPushMachine(build_workload_automata(workload))
    for doc in docs:
        if doc.has_mixed_content():
            continue
        assert machine.filter_document(doc) == matching_oids(workload, doc)


@given(workloads(), st.lists(documents, min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_top_down_early_equals_reference(workload, docs):
    machine = XPushMachine(
        build_workload_automata(workload),
        XPushOptions(top_down=True, early=True, precompute_values=False),
    )
    for doc in docs:
        if doc.has_mixed_content():
            continue
        assert machine.filter_document(doc) == matching_oids(workload, doc)


@given(workloads(), documents)
@settings(max_examples=60, deadline=None)
def test_machine_is_deterministic(workload, doc):
    if doc.has_mixed_content():
        return
    a = XPushMachine(build_workload_automata(workload))
    b = XPushMachine(build_workload_automata(workload))
    assert a.filter_document(doc) == b.filter_document(doc)
    assert a.state_count == b.state_count
    assert a.average_state_size == b.average_state_size


@given(workloads(), documents)
@settings(max_examples=40, deadline=None)
def test_reprocessing_creates_no_new_states(workload, doc):
    if doc.has_mixed_content():
        return
    machine = XPushMachine(build_workload_automata(workload))
    first = machine.filter_document(doc)
    states = machine.state_count
    assert machine.filter_document(doc) == first
    assert machine.state_count == states
