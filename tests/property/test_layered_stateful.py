"""Stateful property test: the layered engine under arbitrary
insert/remove/compact/filter interleavings always answers like the
reference evaluator over its *current* filter set."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.xmlstream.dom import parse_document
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import matching_oids
from repro.xpush.layered import LayeredFilterEngine

# A small closed world so interactions (duplicates, overlaps) happen.
FILTER_POOL = [
    "//a",
    "//a[b = 1]",
    "/a/b",
    "//b[text() = 2]",
    "/a[not(b = 1)]",
    "//a[b = 1 or b = 2]",
    "//*[@k = 'x']",
]
DOC_POOL = [
    "<a><b>1</b></a>",
    "<a><b>2</b></a>",
    "<a/>",
    "<b>2</b>",
    '<a k="x"><b>1</b></a>',
    "<c><a><b>3</b></a></c>",
]


class LayeredEngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = LayeredFilterEngine([])
        self.engine.compact_threshold = 3  # force frequent compactions
        self.live: dict[str, str] = {}  # oid -> xpath
        self.counter = 0

    @rule(source=st.sampled_from(FILTER_POOL))
    def insert(self, source):
        oid = f"f{self.counter}"
        self.counter += 1
        self.engine.insert(oid, source)
        self.live[oid] = source

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def remove(self, data):
        oid = data.draw(st.sampled_from(sorted(self.live)))
        self.engine.remove(oid)
        del self.live[oid]

    @rule()
    def compact(self):
        self.engine.compact()

    @rule(xml=st.sampled_from(DOC_POOL))
    def filter_matches_reference(self, xml):
        document = parse_document(xml)
        expected = matching_oids(
            [parse_xpath(source, oid) for oid, source in self.live.items()],
            document,
        )
        assert self.engine.filter_document(document) == expected

    @invariant()
    def count_is_consistent(self):
        assert self.engine.filter_count == len(self.live)


TestLayeredEngine = LayeredEngineMachine.TestCase
TestLayeredEngine.settings = settings(
    max_examples=40, stateful_step_count=25, deadline=None
)
