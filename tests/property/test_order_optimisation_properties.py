"""Property: the order optimisation never changes answers on
DTD-valid documents, for hypothesis-generated DTDs and flat workloads.

This is the optimisation's exact soundness condition — it prunes
states whose DTD-mandated predecessors can no longer appear, so it is
only claimed correct for conforming documents (Sec. 5).
"""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.afa.build import build_workload_automata
from repro.xmlstream.dtd import DTD, AttributeDecl, ElementDecl, PCDATA, elem, seq
from repro.xpath.generator import flat_workload
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions


@st.composite
def flat_dtds(draw):
    """A root with 3-6 optional/repeated PCDATA children, in DTD order."""
    count = draw(st.integers(3, 6))
    labels = [f"c{i}" for i in range(count)]
    particles = []
    for label in labels:
        occurrence = draw(st.sampled_from(["?", "*", ""]))
        particles.append(elem(label, occurrence))
    declarations = [ElementDecl("root", seq(*particles), (AttributeDecl("id"),))]
    declarations += [ElementDecl(label, PCDATA) for label in labels]
    return DTD("root", declarations), labels


@st.composite
def scenario(draw):
    dtd, labels = draw(flat_dtds())
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    values = [str(v) for v in range(4)]
    k = draw(st.integers(1, min(3, len(labels))))
    filters = flat_workload("root", labels, draw(st.integers(1, 6)), k, values, rng)
    documents = [
        dtd.generate(rng, lambda label, r: r.choice(values))
        for _ in range(draw(st.integers(1, 5)))
    ]
    return dtd, filters, documents


@given(scenario())
@settings(max_examples=120, deadline=None)
def test_order_optimisation_preserves_answers(data):
    dtd, filters, documents = data
    workload = build_workload_automata(filters)
    ordered = XPushMachine(workload, XPushOptions(order=True), dtd=dtd)
    for document in documents:
        dtd.validate(document)  # precondition of the optimisation
        assert ordered.filter_document(document) == matching_oids(filters, document)


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_order_optimisation_never_inflates_states(data):
    dtd, filters, documents = data
    workload = build_workload_automata(filters)
    plain = XPushMachine(workload, XPushOptions())
    ordered = XPushMachine(workload, XPushOptions(order=True), dtd=dtd)
    for document in documents:
        plain.filter_document(document)
        ordered.filter_document(document)
    assert ordered.state_count <= plain.state_count + 1


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_full_stack_on_random_flat_scenarios(data):
    """All optimisations together on the generated DTD-valid streams."""
    dtd, filters, documents = data
    machine = XPushMachine(
        build_workload_automata(filters),
        XPushOptions(top_down=True, order=True, early=True, train=True, precompute_values=False),
        dtd=dtd,
    )
    for document in documents:
        assert machine.filter_document(document) == matching_oids(filters, document)
