"""Fuzz the streaming XML parser: on arbitrary input it must either
produce a well-formed event stream or raise XMLSyntaxError — never any
other exception, never a malformed event sequence."""

import string

from hypothesis import given, settings, strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.parser import parse_events

# Bias toward markup-looking noise so interesting paths are hit.
noise = st.text(
    alphabet=string.ascii_letters + "<>/=\"'& \n\t![]-?;#" + "0123456789",
    max_size=80,
)

fragments = st.lists(
    st.sampled_from(
        [
            "<a>",
            "</a>",
            "<b c='1'>",
            "<x/>",
            "text",
            "<!-- c -->",
            "<![CDATA[z]]>",
            "&amp;",
            "&#65;",
            "<?pi?>",
            "< a>",
            "<a b=>",
            "</>",
            "&bad;",
        ]
    ),
    max_size=12,
).map("".join)


def check_stream_shape(events):
    """A produced event stream must be properly balanced."""
    depth = 0
    in_document = False
    stack = []
    for event in events:
        kind = type(event)
        if kind is StartDocument:
            assert not in_document
            in_document = True
        elif kind is EndDocument:
            assert in_document and depth == 0
            in_document = False
        elif kind is StartElement:
            assert in_document
            stack.append(event.label)
            depth += 1
        elif kind is EndElement:
            assert stack and stack[-1] == event.label
            stack.pop()
            depth -= 1
        elif kind is Text:
            assert in_document and depth > 0
    assert depth == 0 and not in_document


@given(noise)
@settings(max_examples=400, deadline=None)
def test_noise_never_crashes(text):
    try:
        events = parse_events(text)
    except XMLSyntaxError:
        return
    check_stream_shape(events)


@given(fragments)
@settings(max_examples=400, deadline=None)
def test_fragment_soup_never_crashes(text):
    try:
        events = parse_events(text)
    except XMLSyntaxError:
        return
    check_stream_shape(events)


@given(noise)
@settings(max_examples=200, deadline=None)
def test_machine_survives_arbitrary_parse_results(text):
    """Feeding whatever the parser yields into the machine raises only
    library errors (mixed content), never internal failures."""
    from repro.errors import ReproError
    from repro.xpush.machine import XPushMachine

    try:
        events = parse_events(text)
    except XMLSyntaxError:
        return
    machine = XPushMachine.from_xpath({"q": "//a[b = 1]"})
    try:
        machine.process_events(events)
    except ReproError:
        pass
