"""Properties of the eval() connective closure."""

from hypothesis import given, settings, strategies as st

from repro.afa.build import build_workload_automata
from repro.xpath.parser import parse_xpath

SOURCES = [
    "/a[b = 1 and c = 2]",
    "/a[b = 1 or not(c = 2)]",
    "/a[not(not(b = 1))]",
    "/a[(b = 1 or c = 2) and not(d = 3 and e = 4)]",
    "//a[b/text()=1 and .//a[@c>2]]",
]


@st.composite
def workload_and_subset(draw):
    source = draw(st.sampled_from(SOURCES))
    workload = build_workload_automata([parse_xpath(source, "q")])
    base = [s.sid for s in workload.states if not s.is_connective]
    subset = draw(st.sets(st.sampled_from(base)) if base else st.just(set()))
    return workload, frozenset(subset)


@given(workload_and_subset())
@settings(max_examples=200, deadline=None)
def test_closure_is_extensive_and_idempotent(pair):
    workload, subset = pair
    closure = workload.eval_closure(subset)
    assert subset <= closure  # extensive
    assert workload.eval_closure(closure) == closure  # idempotent


@given(workload_and_subset())
@settings(max_examples=200, deadline=None)
def test_closure_is_a_fixpoint_of_the_rules(pair):
    workload, subset = pair
    closure = workload.eval_closure(subset)
    for state in workload.states:
        if not state.eps:
            continue
        kind = state.kind.name
        if kind == "AND":
            satisfied = all(c in closure for c in state.eps)
        elif kind == "NOT":
            satisfied = state.eps[0] not in closure
        else:
            satisfied = any(c in closure for c in state.eps)
        if satisfied:
            assert state.sid in closure, (state, closure)


@given(workload_and_subset())
@settings(max_examples=100, deadline=None)
def test_closure_adds_only_connectives(pair):
    workload, subset = pair
    closure = workload.eval_closure(subset)
    for sid in closure - subset:
        assert workload.states[sid].is_connective
