"""Properties of the atomic predicate index vs. brute force."""

import string

from hypothesis import given, settings, strategies as st

from repro.afa.index import AtomicPredicateIndex
from repro.afa.predicates import AtomicPredicate, canonical_value

relational_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
constants = st.one_of(
    st.integers(-20, 20),
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4),
)
predicates = st.builds(AtomicPredicate, relational_ops, constants)

substring_predicates = st.builds(
    AtomicPredicate,
    st.sampled_from(["contains", "starts-with"]),
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3),
)

values = st.one_of(
    st.integers(-25, 25).map(str),
    st.text(alphabet=string.ascii_lowercase + "0123456789 ", max_size=6),
)


def build(preds):
    index = AtomicPredicateIndex()
    for i, predicate in enumerate(preds):
        index.add(predicate, i)
    return index.freeze()


@given(st.lists(st.one_of(predicates, substring_predicates), max_size=25), st.lists(values, max_size=15))
@settings(max_examples=200, deadline=None)
def test_lookup_equals_brute_force(preds, vals):
    index = build(preds)
    for value in vals:
        want = frozenset(i for i, p in enumerate(preds) if p.test(value))
        assert index.lookup(value) == want


@given(st.lists(predicates, max_size=20), values, values)
@settings(max_examples=200, deadline=None)
def test_equal_keys_imply_equal_answers(preds, a, b):
    index = build(preds)
    if index.key_of(a) == index.key_of(b):
        assert index.lookup(a) == index.lookup(b)


@given(st.lists(predicates, max_size=20), values)
@settings(max_examples=100, deadline=None)
def test_key_is_canonicalisation_invariant(preds, value):
    index = build(preds)
    assert index.key_of(value) == index.key_of("  " + value + " ")
    assert index.lookup(value) == index.lookup("  " + value + " ")


@given(st.lists(predicates, min_size=1, max_size=15))
@settings(max_examples=100, deadline=None)
def test_precompute_then_lookup_all_hits(preds):
    index = build(preds)
    index.precompute()
    probes = []
    for predicate in preds:
        if predicate.is_numeric:
            probes += [str(float(predicate.constant)), str(float(predicate.constant) + 0.5)]
        else:
            probes += [predicate.constant, predicate.constant + "z"]
    before_misses = index.lookups - index.hits
    for probe in probes:
        index.lookup(probe)
    assert index.lookups - index.hits == before_misses  # zero new misses
