"""Property: serialise → parse round-trips any generated DOM tree."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlstream.dom import Document, Element, parse_document
from repro.xmlstream.events import events_of_document
from repro.xmlstream.writer import document_to_xml

labels = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

# Text values: printable, no leading/trailing whitespace (the parser
# treats whitespace-only runs as ignorable and strips nothing else,
# and canonical comparison strips anyway), non-empty after stripping.
text_values = (
    st.text(
        alphabet=string.ascii_letters + string.digits + " <>&\"'._-",
        min_size=1,
        max_size=12,
    )
    .map(str.strip)
    .filter(bool)
)

attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'._-", max_size=10
)


@st.composite
def elements(draw, depth=0):
    label = draw(labels)
    n_attrs = draw(st.integers(0, 3))
    seen = set()
    attrs = []
    for _ in range(n_attrs):
        name = draw(labels)
        if name in seen:
            continue
        seen.add(name)
        attrs.append((name, draw(attr_values)))
    node = Element(label, attributes=attrs)
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            node.text = draw(text_values)
        return node
    children = draw(st.lists(elements(depth=depth + 1), max_size=3))
    node.children = children
    return node


documents = elements().map(Document)


@given(documents)
@settings(max_examples=150, deadline=None)
def test_write_parse_round_trip(document):
    text = document_to_xml(document)
    reparsed = parse_document(text)
    assert events_of_document(reparsed) == events_of_document(document)


@given(documents, st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_pretty_printed_round_trip(document, indent):
    text = document_to_xml(document, indent=indent)
    reparsed = parse_document(text)
    assert events_of_document(reparsed) == events_of_document(document)


@given(documents, st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_chunked_parse_equals_whole_parse(document, chunk_size):
    from repro.xmlstream.parser import iterparse, parse_events

    text = document_to_xml(document)
    assert list(iterparse(text, chunk_size=chunk_size)) == parse_events(text)
