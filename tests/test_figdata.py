"""Tests for the session-cached figure data used by the benchmarks."""

from repro.bench.figdata import query_sweep, sweep_point, warm_machine


def test_query_sweep_scaling():
    low = query_sweep(1.15)
    high = query_sweep(10.45)
    assert len(low) == len(high) == 4
    # The high-predicate sweep is the paper's ÷10 query counts.
    assert all(h <= l for l, h in zip(low, high))
    assert low == tuple(sorted(low))


def test_sweep_point_is_cached():
    queries = query_sweep(1.15)[0]
    a = sweep_point("basic", queries, 1.15, stream_bytes=20_000)
    b = sweep_point("basic", queries, 1.15, stream_bytes=20_000)
    assert a is b  # lru_cache hit: the expensive run happened once
    assert a.variant == "basic"
    assert a.states > 0
    assert a.filtering_seconds > 0


def test_sweep_point_variants_differ():
    queries = query_sweep(1.15)[0]
    basic = sweep_point("basic", queries, 1.15, stream_bytes=20_000)
    td = sweep_point("TD", queries, 1.15, stream_bytes=20_000)
    assert basic is not td
    assert td.variant == "TD"


def test_warm_machine_reuse():
    queries = query_sweep(1.15)[0]
    machine_a, stream_a = warm_machine(queries, 1.15)
    machine_b, stream_b = warm_machine(queries, 1.15)
    assert machine_a is machine_b
    assert stream_a is stream_b
    # It is genuinely warm: a pass over the same stream creates nothing.
    before = machine_a.state_count
    machine_a.filter_stream(stream_a)
    machine_a.clear_results()
    assert machine_a.state_count == before
