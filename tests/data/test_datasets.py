"""Tests for the synthetic datasets (paper-profile conformance)."""

from repro.data import NasaDataset, ProteinDataset
from repro.xmlstream.dom import parse_forest


def test_protein_profile(protein):
    # Paper: "Protein dataset has a non-recursive DTD and the maximum
    # depth of the document is 7."
    assert not protein.dtd.is_recursive()
    assert protein.dtd.max_depth() == 7


def test_nasa_profile(nasa):
    # Paper: "NASA dataset has a recursive DTD, with maximum document
    # depth equal to 8."
    assert nasa.dtd.is_recursive()
    assert all(d.depth() <= 8 for d in nasa.documents(30))
    assert max(d.depth() for d in nasa.documents(60)) == 8


def test_documents_validate(protein, nasa):
    for doc in protein.documents(10):
        protein.dtd.validate(doc)
    for doc in nasa.documents(10):
        nasa.dtd.validate(doc)


def test_determinism():
    a = ProteinDataset(seed=5).stream_text(4)
    b = ProteinDataset(seed=5).stream_text(4)
    c = ProteinDataset(seed=6).stream_text(4)
    assert a == b
    assert a != c


def test_stream_round_trips(protein):
    text = protein.stream_text(5)
    assert len(parse_forest(text)) == 5


def test_stream_of_bytes_reaches_target(protein):
    text = protein.stream_of_bytes(50_000)
    assert len(text.encode("utf-8")) >= 50_000
    parse_forest(text)  # well-formed


def test_value_pools_cover_leaves(protein):
    leaves = {
        name
        for name, decl in protein.dtd.elements.items()
        if decl.content.kind == "pcdata"
    }
    missing = leaves - set(protein.value_pool)
    assert not missing, f"leaf labels without value pools: {missing}"


def test_value_pools_cover_attributes(protein, nasa):
    for dataset in (protein, nasa):
        declared = set(dataset.dtd.attribute_labels())
        missing = declared - set(dataset.value_pool)
        assert not missing, f"attributes without value pools: {missing}"


def test_values_drawn_from_pools(protein):
    pools = protein.value_pool
    for doc in protein.documents(5):
        for node in doc.root.iter_descendants():
            if node.text is not None and node.label in pools:
                assert node.text in pools[node.label], (node.label, node.text)
            for name, value in node.attributes:
                key = "@" + name
                if key in pools:
                    assert value in pools[key], (key, value)
