"""Tests for the auction dataset and full-stack differential on it."""

from repro.afa.build import build_workload_automata
from repro.data import AuctionDataset
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions

import pytest


@pytest.fixture(scope="module")
def auction():
    return AuctionDataset(seed=17)


@pytest.fixture(scope="module")
def auction_docs(auction):
    return list(auction.documents(12))


def test_profile(auction, auction_docs):
    assert auction.dtd.is_recursive()
    for doc in auction_docs:
        auction.dtd.validate(doc)
        assert doc.depth() <= 10
    # The recursion actually recurses in practice.
    assert max(d.depth() for d in auction_docs) >= 7


def test_pools_cover_declared_attributes(auction):
    declared = set(auction.dtd.attribute_labels())
    assert declared <= set(auction.value_pool)


def test_differential_on_auction_data(auction, auction_docs):
    generator = QueryGenerator(
        auction.dtd,
        auction.value_pool,
        GeneratorConfig(
            seed=4, mean_predicates=2.5, prob_descendant=0.25, prob_wildcard=0.1,
            prob_or=0.15, prob_not=0.1, prob_nested=0.15, path_depth_max=5,
        ),
    )
    filters = generator.generate(35)
    workload = build_workload_automata(filters)
    for options in (
        XPushOptions(),
        XPushOptions(top_down=True, order=True, early=True, train=True, precompute_values=False),
    ):
        machine = XPushMachine(workload, options, dtd=auction.dtd)
        for doc in auction_docs:
            assert machine.filter_document(doc) == matching_oids(filters, doc)


def test_schema_modes_agree_on_recursive_auction(auction, auction_docs):
    """Schema specialization on a recursive DTD: no depth bound, but
    label pruning still applies — answers must match schema-off."""
    from dataclasses import replace

    generator = QueryGenerator(
        auction.dtd,
        auction.value_pool,
        GeneratorConfig(seed=8, mean_predicates=2.0, prob_descendant=0.2),
    )
    filters = generator.generate(25)
    workload = build_workload_automata(filters)
    base = XPushOptions(top_down=True, precompute_values=False)
    plain = XPushMachine(workload, base, dtd=auction.dtd)
    expected = [plain.filter_document(doc) for doc in auction_docs]
    for mode in ("trust", "validate"):
        machine = XPushMachine(
            workload, replace(base, schema_mode=mode), dtd=auction.dtd
        )
        assert machine._stack_bound is None  # recursive: no preallocation
        assert [machine.filter_document(d) for d in auction_docs] == expected
        assert machine.stats.schema_fallbacks == 0


def test_deep_recursion_descendant_queries(auction):
    """// through the parlist/listitem recursion."""
    machine = XPushMachine.from_xpath(
        {
            "deep": "//description//text",
            "nest": "//parlist//parlist",
        },
        options=XPushOptions(top_down=True, early=True, precompute_values=False),
    )
    hits = {"deep": 0, "nest": 0}
    for doc in auction.documents(20):
        matched = machine.filter_document(doc)
        for oid in matched:
            hits[oid] += 1
        assert matched == matching_oids(
            __import__("repro.xpath.parser", fromlist=["parse_workload"]).parse_workload(
                {"deep": "//description//text", "nest": "//parlist//parlist"}
            ),
            doc,
        )
    assert hits["deep"] > 0  # the recursion is exercised
