"""Tests for the value-pool machinery."""

import random

from repro.data.pools import PoolDrawer, integer_pool, synthetic_words


def test_synthetic_words_deterministic_and_distinct():
    a = synthetic_words(50, seed=1)
    b = synthetic_words(50, seed=1)
    c = synthetic_words(50, seed=2)
    assert a == b
    assert a != c
    assert len(set(a)) == 50
    assert all(word.isalpha() for word in a)


def test_integer_pool():
    pool = integer_pool(10, 20, 5, seed=3)
    assert len(pool) == 5
    assert all(10 <= int(v) <= 20 for v in pool)
    # Requesting more than the range yields the whole range.
    assert integer_pool(1, 3, 10, seed=0) == ["1", "2", "3"]


def test_pool_drawer_skew():
    pool = [str(i) for i in range(100)]
    drawer = PoolDrawer({"x": pool}, skew=2.0)
    rng = random.Random(0)
    draws = [int(drawer.draw("x", rng)) for _ in range(2000)]
    # Skewed towards low indexes: the median draw sits well below 50.
    draws.sort()
    assert draws[len(draws) // 2] < 50
    assert set(draws) <= set(range(100))


def test_pool_drawer_missing_label():
    drawer = PoolDrawer({})
    assert drawer.draw("ghost", random.Random(0)) == "0"


def test_text_for_adapter():
    drawer = PoolDrawer({"a": ["v1", "v2"]})
    assert drawer.text_for("a", random.Random(0)) in {"v1", "v2"}
