"""Tests for the message broker application."""

import random

import pytest

from repro.broker import MessageBroker
from repro.errors import ReproError, WorkloadError
from repro.xmlstream.dom import parse_document


def test_subscribe_publish_deliver():
    broker = MessageBroker()
    inbox = []
    broker.on_deliver = lambda who, doc: inbox.append((who, doc.root.label))
    broker.subscribe("alice", "//a[b/text() = 1]")
    broker.subscribe("bob", "//c")
    assert broker.publish_text("<a><b>1</b></a>") == 1
    assert broker.publish_text("<c/>") == 1
    assert broker.publish_text("<d/>") == 0
    assert inbox == [("alice", "a"), ("bob", "c")]
    stats = broker.stats()
    assert stats["published"] == 3
    assert stats["delivered"] == 2
    assert stats["subscriptions"] == 2


def test_multiple_matches_single_packet():
    broker = MessageBroker()
    seen = []
    broker.on_deliver = lambda who, doc: seen.append(who)
    broker.subscribe("x", "//a")
    broker.subscribe("y", "/a[b]")
    broker.publish(parse_document("<a><b/></a>"))
    assert sorted(seen) == ["x", "y"]


def test_unsubscribe():
    broker = MessageBroker()
    seen = []
    broker.on_deliver = lambda who, doc: seen.append(who)
    oid = broker.subscribe("x", "//a")
    broker.publish(parse_document("<a/>"))
    broker.unsubscribe(oid)
    broker.publish(parse_document("<a/>"))
    assert seen == ["x"]
    with pytest.raises(WorkloadError):
        broker.unsubscribe(oid)


def test_invalid_subscription_rejected_eagerly():
    broker = MessageBroker()
    with pytest.raises(ReproError):
        broker.subscribe("x", "not a filter [")
    assert broker.subscription_count == 0


def test_machine_rebuilt_after_subscription_change():
    broker = MessageBroker()
    seen = []
    broker.on_deliver = lambda who, doc: seen.append(who)
    broker.subscribe("x", "//a")
    broker.publish(parse_document("<a/>"))
    broker.subscribe("y", "//a")  # triggers a lazy rebuild
    broker.publish(parse_document("<a/>"))
    assert seen == ["x", "x", "y"]


def test_publish_with_no_subscribers():
    broker = MessageBroker()
    assert broker.publish(parse_document("<a/>")) == 0
    assert broker.stats()["published"] == 1


def test_incremental_broker_equals_rebuilding_broker():
    plain = MessageBroker()
    layered = MessageBroker(incremental=True)
    log_plain, log_layered = [], []
    plain.on_deliver = lambda who, doc: log_plain.append(who)
    layered.on_deliver = lambda who, doc: log_layered.append(who)
    for broker in (plain, layered):
        broker.subscribe("x", "//a")
        broker.subscribe("y", "/a[b = 1]")
    docs = [parse_document(x) for x in ("<a><b>1</b></a>", "<a/>", "<c/>")]
    for doc in docs:
        plain.publish(doc)
        layered.publish(doc)
    # Mid-stream subscription change on both.
    oid_p = plain.subscribe("z", "//c")
    oid_l = layered.subscribe("z", "//c")
    for doc in docs:
        plain.publish(doc)
        layered.publish(doc)
    plain.unsubscribe(oid_p)
    layered.unsubscribe(oid_l)
    for doc in docs:
        plain.publish(doc)
        layered.publish(doc)
    assert log_plain == log_layered
    assert layered.stats()["layered"]["insertions"] == 3


# ----------------------------------------------------------------------
# Sharded mode (docs/scaling.md) and batch publishing
# ----------------------------------------------------------------------

#: A small document pool with structures the filter pool below can hit.
DOC_POOL = [
    "<a><b>1</b></a>",
    '<a c="3"><b>1</b></a>',
    "<a><b>2</b></a>",
    "<c><d/></c>",
    "<d/>",
    "<a><a><b>1</b></a></a>",
]

FILTER_POOL = [
    "//a",
    "/a[b]",
    "//a[b/text() = 1]",
    "//a[@c > 2]",
    "//c[d]",
    "//d",
    "//b[text() = 2]",
    "/a[b = 1 and not(c)]",
]


def _make_modes():
    """The three broker modes the delivery-equivalence property covers."""
    return {
        "plain": MessageBroker(),
        "incremental": MessageBroker(incremental=True),
        "sharded": MessageBroker(shards=2, shard_parallel=False),
    }


def test_publish_batch_counts_and_delivery():
    broker = MessageBroker()
    inbox = []
    broker.on_deliver = lambda who, doc: inbox.append((who, doc.root.label))
    broker.subscribe("alice", "//a")
    broker.subscribe("bob", "//c[d]")
    docs = [parse_document(text) for text in DOC_POOL]
    assert broker.publish_batch(docs) == 5
    assert broker.stats()["published"] == len(docs)
    assert inbox.count(("bob", "c")) == 1
    assert broker.publish_batch([]) == 0


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_broker_modes_agree_on_random_interleavings(seed):
    """Subscribe/unsubscribe/publish interleavings deliver identically
    in rebuild, incremental and sharded modes, and an unsubscribed oid
    is never delivered after its removal."""
    rng = random.Random(seed)
    docs = [parse_document(text) for text in DOC_POOL]
    modes = _make_modes()
    logs = {name: [] for name in modes}
    removed: set[str] = set()  # subscribers unsubscribed in every mode
    for name, broker in modes.items():
        broker.on_deliver = lambda who, doc, log=logs[name]: log.append(who)
    active: list[tuple[dict[str, str], str]] = []  # (oid per mode, subscriber)
    counter = 0
    for _ in range(40):
        action = rng.random()
        if action < 0.35 or not active:
            xpath = rng.choice(FILTER_POOL)
            subscriber = f"sub-{counter}"
            counter += 1
            oids = {
                name: broker.subscribe(subscriber, xpath)
                for name, broker in modes.items()
            }
            active.append((oids, subscriber))
        elif action < 0.5:
            index = rng.randrange(len(active))
            oids, subscriber = active.pop(index)
            for name, broker in modes.items():
                broker.unsubscribe(oids[name])
            removed.add(subscriber)
        else:
            doc = rng.choice(docs)
            counts = {name: broker.publish(doc) for name, broker in modes.items()}
            assert len(set(counts.values())) == 1, counts
            for name in modes:
                delivered_now = logs[name][-counts[name]:] if counts[name] else []
                assert not (set(delivered_now) & removed), (
                    f"{name}: delivery to unsubscribed {set(delivered_now) & removed}"
                )
    reference = logs["plain"]
    assert logs["incremental"] == reference
    assert logs["sharded"] == reference
    for broker in modes.values():
        broker.close()


def test_sharded_broker_with_worker_processes():
    plain = MessageBroker()
    with MessageBroker(shards=2, batch_size=2) as sharded:
        log_plain, log_sharded = [], []
        plain.on_deliver = lambda who, doc: log_plain.append(who)
        sharded.on_deliver = lambda who, doc: log_sharded.append(who)
        for broker in (plain, sharded):
            broker.subscribe("alice", "//a[b/text() = 1]")
            broker.subscribe("bob", "//c[d]")
            broker.subscribe("carol", "//a")
        docs = [parse_document(text) for text in DOC_POOL]
        assert plain.publish_batch(docs) == sharded.publish_batch(docs)
        assert log_plain == log_sharded
        stats = sharded.stats()
        assert stats["worker_restarts"] == 0
        assert stats["sharded"]["shards"] == 2
        assert stats["xpush_states"] > 0
        if not stats["sharded"]["serial_fallback"]:
            assert stats["sharded"]["batches"] >= 3  # batched fan-out happened


def test_sharded_and_incremental_modes_are_exclusive():
    with pytest.raises(WorkloadError):
        MessageBroker(incremental=True, shards=2)
    with pytest.raises(WorkloadError):
        MessageBroker(shards=0)


def test_broker_serve_bridges_to_network_tier():
    from repro.serving import ServerThread, ServingClient

    with MessageBroker() as broker:
        inbox = []
        broker.on_deliver = lambda who, doc: inbox.append(who)
        broker.subscribe("alice", "//a[b/text() = 1]")
        with ServerThread(broker.serve()) as handle:
            with ServingClient(*handle.address) as client:
                # the wire sees the broker's live workload
                assert client.publish("<a><b>1</b></a>") == [frozenset({"sub0"})]
                # wire-side subscriptions land in the shared engine
                client.subscribe("net0", "//c", consumer="remote")
                assert client.publish("<c/>") == [frozenset({"net0"})]
                events = client.drain("remote", timeout=1.0)
                assert [e["oids"] for e in events] == [["net0"]]
        # stopping the server left the broker's engine alive
        assert broker.publish_text("<a><b>1</b></a>") == 1
        assert inbox == ["alice"]
