"""Tests for the message broker application."""

import pytest

from repro.broker import MessageBroker
from repro.errors import ReproError, WorkloadError
from repro.xmlstream.dom import parse_document


def test_subscribe_publish_deliver():
    broker = MessageBroker()
    inbox = []
    broker.on_deliver = lambda who, doc: inbox.append((who, doc.root.label))
    broker.subscribe("alice", "//a[b/text() = 1]")
    broker.subscribe("bob", "//c")
    assert broker.publish_text("<a><b>1</b></a>") == 1
    assert broker.publish_text("<c/>") == 1
    assert broker.publish_text("<d/>") == 0
    assert inbox == [("alice", "a"), ("bob", "c")]
    stats = broker.stats()
    assert stats["published"] == 3
    assert stats["delivered"] == 2
    assert stats["subscriptions"] == 2


def test_multiple_matches_single_packet():
    broker = MessageBroker()
    seen = []
    broker.on_deliver = lambda who, doc: seen.append(who)
    broker.subscribe("x", "//a")
    broker.subscribe("y", "/a[b]")
    broker.publish(parse_document("<a><b/></a>"))
    assert sorted(seen) == ["x", "y"]


def test_unsubscribe():
    broker = MessageBroker()
    seen = []
    broker.on_deliver = lambda who, doc: seen.append(who)
    oid = broker.subscribe("x", "//a")
    broker.publish(parse_document("<a/>"))
    broker.unsubscribe(oid)
    broker.publish(parse_document("<a/>"))
    assert seen == ["x"]
    with pytest.raises(WorkloadError):
        broker.unsubscribe(oid)


def test_invalid_subscription_rejected_eagerly():
    broker = MessageBroker()
    with pytest.raises(ReproError):
        broker.subscribe("x", "not a filter [")
    assert broker.subscription_count == 0


def test_machine_rebuilt_after_subscription_change():
    broker = MessageBroker()
    seen = []
    broker.on_deliver = lambda who, doc: seen.append(who)
    broker.subscribe("x", "//a")
    broker.publish(parse_document("<a/>"))
    broker.subscribe("y", "//a")  # triggers a lazy rebuild
    broker.publish(parse_document("<a/>"))
    assert seen == ["x", "x", "y"]


def test_publish_with_no_subscribers():
    broker = MessageBroker()
    assert broker.publish(parse_document("<a/>")) == 0
    assert broker.stats()["published"] == 1


def test_incremental_broker_equals_rebuilding_broker():
    plain = MessageBroker()
    layered = MessageBroker(incremental=True)
    log_plain, log_layered = [], []
    plain.on_deliver = lambda who, doc: log_plain.append(who)
    layered.on_deliver = lambda who, doc: log_layered.append(who)
    for broker in (plain, layered):
        broker.subscribe("x", "//a")
        broker.subscribe("y", "/a[b = 1]")
    docs = [parse_document(x) for x in ("<a><b>1</b></a>", "<a/>", "<c/>")]
    for doc in docs:
        plain.publish(doc)
        layered.publish(doc)
    # Mid-stream subscription change on both.
    oid_p = plain.subscribe("z", "//c")
    oid_l = layered.subscribe("z", "//c")
    for doc in docs:
        plain.publish(doc)
        layered.publish(doc)
    plain.unsubscribe(oid_p)
    layered.unsubscribe(oid_l)
    for doc in docs:
        plain.publish(doc)
        layered.publish(doc)
    assert log_plain == log_layered
    assert layered.stats()["layered"]["insertions"] == 3
