"""Shared fixtures: the paper's running example, datasets, workloads."""

from __future__ import annotations

import pytest

from repro.data import NasaDataset, ProteinDataset
from repro.xmlstream.dom import parse_document
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.xpath.parser import parse_xpath

#: The two filters of Example 1.1 (used throughout the paper).
P1 = "//a[b/text()=1 and .//a[@c>2]]"
P2 = "//a[@c>2 and b/text()=1]"

#: The document of the Fig. 3 execution trace.
RUNNING_DOC = '<a> <b> 1 </b> <a c="3"> <b> 1 </b> </a> </a>'


@pytest.fixture(scope="session")
def running_filters():
    return [parse_xpath(P1, "o1"), parse_xpath(P2, "o2")]


@pytest.fixture(scope="session")
def running_document():
    return parse_document(RUNNING_DOC)


@pytest.fixture(scope="session")
def protein():
    return ProteinDataset(seed=42)


@pytest.fixture(scope="session")
def nasa():
    return NasaDataset(seed=42)


@pytest.fixture(scope="session")
def protein_docs(protein):
    return list(protein.documents(20))


@pytest.fixture(scope="session")
def nasa_docs(nasa):
    return list(nasa.documents(15))


def make_workload(dataset, count, seed=0, **config_kwargs):
    """Helper for tests that need a generated workload."""
    defaults = dict(
        seed=seed,
        mean_predicates=2.5,
        prob_or=0.15,
        prob_not=0.1,
        prob_nested=0.15,
        prob_inequality=0.25,
        prob_descendant=0.1,
        prob_wildcard=0.05,
        path_depth_max=5,
    )
    defaults.update(config_kwargs)
    generator = QueryGenerator(dataset.dtd, dataset.value_pool, GeneratorConfig(**defaults))
    return generator.generate(count)
