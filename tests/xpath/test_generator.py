"""Tests for the synthetic workload generator."""

import random

from repro.xmlstream.dom import Document
from repro.xpath.ast import count_atomic_predicates
from repro.xpath.generator import GeneratorConfig, QueryGenerator, flat_workload
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_filter

from tests.conftest import make_workload


def test_determinism(protein):
    a = make_workload(protein, 20, seed=3)
    b = make_workload(protein, 20, seed=3)
    assert [f.source for f in a] == [f.source for f in b]
    c = make_workload(protein, 20, seed=4)
    assert [f.source for f in c] != [f.source for f in a]


def test_sources_reparse(protein):
    for f in make_workload(protein, 30, seed=1):
        assert parse_xpath(f.source).path == f.path


def test_mean_predicates_is_respected(protein):
    generator = QueryGenerator(
        protein.dtd, protein.value_pool, GeneratorConfig(seed=0, mean_predicates=10.45)
    )
    filters = generator.generate(150)
    mean = sum(count_atomic_predicates(f.path) for f in filters) / len(filters)
    assert 8.0 < mean < 13.0
    generator = QueryGenerator(
        protein.dtd, protein.value_pool, GeneratorConfig(seed=0, mean_predicates=1.15)
    )
    filters = generator.generate(300)
    mean = sum(count_atomic_predicates(f.path) for f in filters) / len(filters)
    assert 1.0 <= mean < 1.4


def test_exact_predicates(protein):
    generator = QueryGenerator(
        protein.dtd, protein.value_pool, GeneratorConfig(seed=0, exact_predicates=5)
    )
    for f in generator.generate(20):
        assert count_atomic_predicates(f.path) == 5


def test_zero_wildcard_and_descendant_by_default(protein):
    filters = make_workload(protein, 40, seed=2, prob_wildcard=0.0, prob_descendant=0.0)
    for f in filters:
        assert "*" not in f.source
        assert "//" not in f.source[1:]  # the leading / may not be //


def test_each_query_satisfiable_on_some_document(protein):
    """The paper's requirement: every predicate true on at least some
    document.  We check the weaker end-to-end form: across a large
    enough sample of documents, a decent share of queries match."""
    filters = make_workload(
        protein, 30, seed=5, prob_not=0.0, prob_or=0.0, mean_predicates=1.0,
        prob_descendant=0.0, prob_wildcard=0.0,
    )
    docs = list(protein.documents(300))
    matched = {
        f.oid for f in filters for doc in docs if evaluate_filter(f, doc)
    }
    assert len(matched) >= len(filters) * 0.3


def test_flat_workload_shape():
    filters = flat_workload(
        "person", ["name", "age", "phone"], queries=5, predicates_per_query=2,
        values=["1", "2", "3"], rng=random.Random(0),
    )
    assert len(filters) == 5
    for f in filters:
        assert f.source.startswith("/person[")
        assert count_atomic_predicates(f.path) == 2
