"""Tests for the XPath tokeniser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath import lexer
from repro.xpath.lexer import Token, parse_literal, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_simple_path():
    assert kinds("/a/b") == [lexer.SLASH, lexer.NAME, lexer.SLASH, lexer.NAME]


def test_descendant_and_wildcards():
    assert kinds("//*") == [lexer.DSLASH, lexer.STAR]
    assert kinds("//@*") == [lexer.DSLASH, lexer.AT_STAR]
    assert kinds("//@c") == [lexer.DSLASH, lexer.AT_NAME]


def test_operators():
    values = [t.value for t in tokenize("= != < <= > >=") if t.kind == lexer.OP]
    assert values == ["=", "!=", "<", "<=", ">", ">="]


def test_numbers():
    tokens = [t for t in tokenize("1 -2 3.5 .25") if t.kind == lexer.NUMBER]
    assert [parse_literal(t) for t in tokens] == [1, -2, 3.5, 0.25]


def test_strings_both_quotes():
    tokens = [t for t in tokenize("\"abc\" 'd e'") if t.kind == lexer.STRING]
    assert [t.value for t in tokens] == ["abc", "d e"]


def test_dot_and_dotslash():
    assert kinds(".//a") == [lexer.DOT, lexer.DSLASH, lexer.NAME]


def test_text_function_tokens():
    assert kinds("text()") == [lexer.NAME, lexer.LPAREN, lexer.RPAREN]


def test_hyphenated_names():
    tokens = tokenize("starts-with")
    assert tokens[0] == Token(lexer.NAME, "starts-with", 0)


def test_errors():
    with pytest.raises(XPathSyntaxError):
        tokenize("a ! b")
    with pytest.raises(XPathSyntaxError):
        tokenize('"unterminated')
    with pytest.raises(XPathSyntaxError):
        tokenize("a # b")
    with pytest.raises(XPathSyntaxError):
        tokenize("@1bad")


def test_positions_recorded():
    tokens = tokenize("/a[b = 1]")
    by_value = {t.value: t.position for t in tokens if t.value}
    assert by_value["/"] == 0
    assert by_value["a"] == 1
    assert by_value["["] == 2
