"""Tests for workload file I/O."""

import io

import pytest

from repro.errors import WorkloadError
from repro.xpath.parser import parse_workload
from repro.xpath.workload_io import (
    dump_workload,
    iter_workload_lines,
    load_workload,
    save_workload,
)


def test_iter_workload_lines():
    pairs = list(
        iter_workload_lines(
            ["# comment", "", "a\t//x", "  //y  ", "b\t /z[k = 1] "]
        )
    )
    assert pairs == [("a", "//x"), (None, "//y"), ("b", "/z[k = 1]")]


def test_load_from_text():
    filters = load_workload("a\t//x\n//y\n")
    assert [f.oid for f in filters] == ["a", "q0"]
    assert filters[1].source == "//y"


def test_load_from_file_object():
    filters = load_workload(io.StringIO("p\t//x[y = 1]\n"))
    assert filters[0].oid == "p"


def test_load_from_path(tmp_path):
    path = tmp_path / "w.txt"
    path.write_text("one\t//x\ntwo\t//y\n")
    filters = load_workload(str(path))
    assert [f.oid for f in filters] == ["one", "two"]


def test_round_trip():
    filters = parse_workload({"a": "//x[y = 1 and not(z)]", "b": "/p/q"})
    again = load_workload(dump_workload(filters))
    assert [(f.oid, str(f.path)) for f in again] == [
        (f.oid, str(f.path)) for f in filters
    ]


def test_save_and_load(tmp_path):
    filters = parse_workload({"a": "//x"})
    path = tmp_path / "out.txt"
    save_workload(filters, str(path))
    assert [f.oid for f in load_workload(str(path))] == ["a"]


def test_duplicate_oids_rejected():
    with pytest.raises(WorkloadError):
        load_workload("a\t//x\na\t//y\n")


def test_empty_rejected():
    with pytest.raises(WorkloadError):
        load_workload("# only comments\n\n")
