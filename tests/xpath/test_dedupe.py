"""Tests for workload deduplication."""

import pytest

from repro.errors import WorkloadError
from repro.xmlstream.dom import parse_document
from repro.xpath.dedupe import DeduplicatedEngine, DeduplicatedWorkload, canonical_key
from repro.xpath.parser import parse_workload, parse_xpath
from repro.xpath.semantics import matching_oids

from tests.conftest import make_workload


def key(source):
    return canonical_key(parse_xpath(source).path)


def test_identical_filters_share_a_key():
    assert key("//a[x = 1]") == key("//a[x = 1]")


def test_conjunct_order_is_canonicalised():
    assert key("//a[x = 1 and y = 2]") == key("//a[y = 2 and x = 1]")
    assert key("//a[x = 1 or y = 2]") == key("//a[y = 2 or x = 1]")


def test_simplification_feeds_canonicalisation():
    assert key("//a[x = 1 and (x = 1)]") == key("//a[x = 1]")
    assert key("//a[not(not(x = 1))]") == key("//a[x = 1]")
    assert key("/a[./b = 1]") == key("/a[b = 1]")


def test_numeric_normalisation():
    assert key("//a[x = 2]") == key("//a[x = 2.0]")
    assert key("//a[x = 2]") != key("//a[x = '2']")  # string vs number


def test_distinct_filters_stay_distinct():
    assert key("//a[x = 1]") != key("//a[x = 2]")
    assert key("//a[x = 1]") != key("/a[x = 1]")
    assert key("//a[x = 1]") != key("//a[x >= 1]")
    assert key("//a[x and y]") != key("//a[x or y]")


def test_grouping_and_expand():
    filters = parse_workload(
        {
            "u1": "//a[x = 1 and y = 2]",
            "u2": "//a[y = 2 and x = 1]",
            "u3": "//b",
        }
    )
    dedup = DeduplicatedWorkload(filters)
    assert dedup.original_count == 3
    assert dedup.class_count == 2
    assert dedup.duplicates_removed == 1
    representative = next(
        oid for oid, members in dedup.members.items() if len(members) == 2
    )
    assert dedup.expand(frozenset([representative])) == {"u1", "u2"}
    assert dedup.expand(frozenset()) == frozenset()


def test_duplicate_oids_rejected():
    f = parse_xpath("/a", "same")
    with pytest.raises(WorkloadError):
        DeduplicatedWorkload([f, f])


def test_engine_equals_full_workload(protein, protein_docs):
    base = make_workload(protein, 20, seed=31)
    # Clone every filter under fresh oids → heavy duplication.
    clones = [
        parse_xpath(f.source, f"clone-{f.oid}") for f in base
    ]
    filters = base + clones
    engine = DeduplicatedEngine(filters)
    assert engine.stats()["duplicates_removed"] >= 20
    for doc in protein_docs[:8]:
        assert engine.filter_document(doc) == matching_oids(filters, doc)


def test_engine_reduces_states(protein, protein_docs):
    base = make_workload(protein, 15, seed=8)
    clones = [parse_xpath(f.source, f"c{f.oid}") for f in base]
    filters = base + clones
    from repro.xpush.machine import XPushMachine

    full = XPushMachine.from_filters(filters)
    deduped = DeduplicatedEngine(filters)
    for doc in protein_docs[:6]:
        full.filter_document(doc)
        deduped.filter_document(doc)
    assert deduped.state_count <= full.state_count
    # Duplicated AFAs double the sids per state in the full machine.
    assert deduped.machine.average_state_size <= full.average_state_size
