"""Tests for the boolean simplification pass."""

from repro.xpath.parser import parse_xpath
from repro.xpath.simplify import simplify_filter, simplify_workload


def simplified(source):
    return str(simplify_filter(parse_xpath(source, "q")).path)


def test_flatten_nested_and():
    assert simplified("/r[a and (b and c)]") == simplified("/r[a and b and c]")
    assert " and " in simplified("/r[a and (b and c)]")
    assert "(" not in simplified("/r[a and (b and c)]").replace("text()", "")


def test_flatten_nested_or():
    assert simplified("/r[(a or b) or c]") == simplified("/r[a or b or c]")


def test_duplicate_conjuncts_dropped():
    assert simplified("/r[a = 1 and a = 1]") == simplified("/r[a = 1]")
    assert simplified("/r[a or a or b]") == simplified("/r[a or b]")


def test_double_negation_eliminated():
    assert simplified("/r[not(not(a = 1))]") == simplified("/r[a = 1]")
    # Triple negation keeps exactly one not.
    assert simplified("/r[not(not(not(a)))]") == simplified("/r[not(a)]")


def test_duplicate_brackets_on_step():
    assert simplified("/r[a][a]") == simplified("/r[a]")


def test_recurses_into_nested_paths():
    # The duplication lives inside an Exists' inner predicate.
    source = "/r[x[b = 1 and (b = 1 and c = 2)]]"
    assert simplified(source) == simplified("/r[x[b = 1 and c = 2]]")


def test_idempotent():
    sources = [
        "/r[a and (b and (c or c)) and not(not(d = 1))]",
        "//a[b/text()=1 and .//a[@c>2]]",
    ]
    for source in sources:
        once = simplify_filter(parse_xpath(source, "q"))
        twice = simplify_filter(once)
        assert once.path == twice.path


def test_simplification_shrinks_afa():
    from repro.afa.build import build_workload_automata
    from repro.xpath.parser import parse_workload

    filters = parse_workload({"q": "/r[a = 1 and (a = 1 and a = 1)]"})
    plain = build_workload_automata(filters)
    slim = build_workload_automata(simplify_workload(filters))
    assert slim.state_count < plain.state_count


def test_simplification_preserves_semantics(protein, protein_docs):
    from repro.xpath.semantics import matching_oids
    from tests.conftest import make_workload

    filters = make_workload(protein, 25, seed=71, prob_not=0.3, prob_or=0.3)
    simplified_filters = simplify_workload(filters)
    for doc in protein_docs[:8]:
        assert matching_oids(filters, doc) == matching_oids(simplified_filters, doc)
