"""Tests for the reference evaluator — the library's ground truth."""

from repro.xmlstream.dom import parse_document
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_filter, matching_oids


def matches(xpath: str, xml: str) -> bool:
    return evaluate_filter(parse_xpath(xpath), parse_document(xml))


def test_simple_child_paths():
    assert matches("/a", "<a/>")
    assert not matches("/b", "<a/>")
    assert matches("/a/b", "<a><b/></a>")
    assert not matches("/a/b", "<a><c><b/></c></a>")


def test_descendant_axis():
    assert matches("//b", "<a><c><b/></c></a>")
    assert matches("/a//b", "<a><c><b/></c></a>")
    assert not matches("/a//b", "<a><c/></a>")
    # // means depth >= 1, not self
    assert not matches("/a//a", "<a/>")
    assert matches("//a//a", "<a><x><a/></x></a>")


def test_wildcards():
    assert matches("/*", "<anything/>")
    assert matches("/a/*/c", "<a><b><c/></b></a>")
    # * never matches attributes
    assert not matches("/a/*", '<a only="attrs"/>')
    assert matches("/a/@*", '<a only="attrs"/>')


def test_attributes():
    assert matches("/a[@c = 3]", '<a c="3"/>')
    assert not matches("/a[@c = 3]", '<a c="4"/>')
    assert matches("/a[@c > 2]", '<a c="3"/>')
    assert matches("//@c", '<x><a c="1"/></x>')


def test_text_comparisons():
    assert matches("/a[b/text() = 1]", "<a><b>1</b></a>")
    assert matches("/a[b/text() = 1]", "<a><b> 1 </b></a>")  # canonicalised
    assert not matches("/a[b/text() = 1]", "<a><b>2</b></a>")
    assert matches("/a[b = 1]", "<a><b>1</b></a>")  # bare form, same meaning
    assert matches("/a[text() = 'x']", "<a>x</a>")


def test_numeric_vs_string_comparison():
    assert matches("/a[b = 10]", "<a><b>10.0</b></a>")  # numeric equality
    assert not matches("/a[b = '10']", "<a><b>10.0</b></a>")  # string equality
    assert matches("/a[b > 9]", "<a><b>10</b></a>")
    assert not matches("/a[b > 9]", "<a><b>abc</b></a>")  # non-numeric → false
    assert matches("/a[b > 'abc']", "<a><b>abd</b></a>")  # lexicographic


def test_existence_predicates():
    assert matches("/a[b]", "<a><b/></a>")  # empty element still witnesses
    assert not matches("/a[b]", "<a><c/></a>")
    assert matches("/a[b/c]", "<a><b><c/></b></a>")
    assert matches("/a[.//c]", "<a><b><c/></b></a>")


def test_not_is_universal():
    # The paper: /a[not(b/text()=1)] matches iff ALL b's are != 1.
    assert matches("/a[not(b/text() = 1)]", "<a><b>2</b><b>3</b></a>")
    assert not matches("/a[not(b/text() = 1)]", "<a><b>2</b><b>1</b></a>")
    assert matches("/a[not(b/text() = 1)]", "<a/>")  # vacuously true


def test_double_negation():
    assert matches("/a[not(not(b = 1))]", "<a><b>1</b></a>")
    assert not matches("/a[not(not(b = 1))]", "<a><b>2</b></a>")


def test_and_or():
    xml = "<a><b>1</b><c>2</c></a>"
    assert matches("/a[b = 1 and c = 2]", xml)
    assert not matches("/a[b = 1 and c = 3]", xml)
    assert matches("/a[b = 9 or c = 2]", xml)
    assert not matches("/a[b = 9 or c = 9]", xml)


def test_existential_over_siblings():
    # some b satisfies = 1 even though another does not
    assert matches("/a[b = 1]", "<a><b>5</b><b>1</b></a>")


def test_predicates_mid_path():
    assert matches("/a/b[@k = 1]/c", '<a><b k="1"><c/></b></a>')
    assert not matches("/a/b[@k = 1]/c", '<a><b k="2"><c/></b></a>')
    assert matches("/a/b[@k = 1]/c", '<a><b k="2"/><b k="1"><c/></b></a>')


def test_predicate_with_descendant_path():
    assert matches("/a[.//d = 7]", "<a><b><c><d>7</d></c></b></a>")
    assert not matches("/a[.//d = 7]", "<a><b><c><d>8</d></c></b></a>")


def test_string_extension_ops():
    assert matches('/a[starts-with(b, "he")]', "<a><b>hello</b></a>")
    assert not matches('/a[starts-with(b, "lo")]', "<a><b>hello</b></a>")
    assert matches('/a[contains(b, "ell")]', "<a><b>hello</b></a>")


def test_matching_oids():
    filters = [
        parse_xpath("/a[b = 1]", "x"),
        parse_xpath("/a[b = 2]", "y"),
        parse_xpath("//b", "z"),
    ]
    doc = parse_document("<a><b>1</b></a>")
    assert matching_oids(filters, doc) == {"x", "z"}


def test_running_example(running_filters, running_document):
    assert evaluate_filter(running_filters[0], running_document)
    assert evaluate_filter(running_filters[1], running_document)


def test_running_example_negative_cases(running_filters):
    p1, p2 = running_filters
    # No @c anywhere: both filters need it.
    doc = parse_document("<a><b>1</b><a><b>1</b></a></a>")
    assert not evaluate_filter(p1, doc)
    assert not evaluate_filter(p2, doc)
    # @c on the inner a and b=1 inside it: P2 matches (the inner a),
    # P1 needs a *descendant* a with @c>2 below the b=1 node — absent.
    doc = parse_document('<a><b>1</b><a c="5"><b>1</b></a></a>')
    assert evaluate_filter(p1, doc)  # outer a: b=1 and .//a[@c>2] both hold
    assert evaluate_filter(p2, doc)
    # @c too small
    doc = parse_document('<a><b>1</b><a c="2"><b>1</b></a></a>')
    assert not evaluate_filter(p1, doc)
    assert not evaluate_filter(p2, doc)
