"""Tests for the XPath parser: shapes, round-trips, errors."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    And,
    Axis,
    Comparison,
    Exists,
    Not,
    NodeTestKind,
    Or,
)
from repro.xpath.parser import parse_workload, parse_xpath


def path_of(source):
    return parse_xpath(source).path


def test_absolute_vs_descendant_start():
    absolute = path_of("/a")
    anywhere = path_of("//a")
    assert absolute.steps[0].axis is Axis.CHILD
    assert anywhere.steps[0].axis is Axis.DESCENDANT


def test_running_example_shape():
    path = path_of("//a[b/text()=1 and .//a[@c>2]]")
    (step,) = path.steps
    assert step.axis is Axis.DESCENDANT
    assert step.test.name == "a"
    (predicate,) = step.predicates
    assert isinstance(predicate, And)
    left, right = predicate.children
    assert isinstance(left, Comparison) and left.op == "=" and left.value == 1
    assert left.path.steps[-1].test.kind is NodeTestKind.TEXT
    assert isinstance(right, Exists)
    assert right.path.steps[0].axis is Axis.DESCENDANT  # the `.` was folded
    inner = right.path.steps[0].predicates[0]
    assert isinstance(inner, Comparison) and inner.op == ">" and inner.value == 2
    assert inner.path.steps[0].test.kind is NodeTestKind.ATTRIBUTE
    assert inner.path.steps[0].test.name == "@c"


def test_wildcards_and_attribute_wildcards():
    path = path_of("/*/a[@* = 'x']")
    assert path.steps[0].test.kind is NodeTestKind.WILDCARD
    predicate = path.steps[1].predicates[0]
    assert predicate.path.steps[0].test.kind is NodeTestKind.ATTRIBUTE_WILDCARD


def test_not_and_or_precedence():
    # a or b and c  ==  a or (b and c)
    predicate = path_of("/r[a or b and c]").steps[0].predicates[0]
    assert isinstance(predicate, Or)
    left, right = predicate.children
    assert isinstance(left, Exists)
    assert isinstance(right, And)


def test_parenthesised_predicate():
    predicate = path_of("/r[(a or b) and c]").steps[0].predicates[0]
    assert isinstance(predicate, And)
    assert isinstance(predicate.children[0], Or)


def test_nested_not():
    predicate = path_of("/r[not(not(a = 1))]").steps[0].predicates[0]
    assert isinstance(predicate, Not)
    assert isinstance(predicate.child, Not)
    assert isinstance(predicate.child.child, Comparison)


def test_multiple_brackets_conjoin():
    step = path_of("/r[a][b = 2]").steps[0]
    assert len(step.predicates) == 2


def test_string_extension_functions():
    predicate = path_of('/r[starts-with(a, "pre")]').steps[0].predicates[0]
    assert isinstance(predicate, Comparison)
    assert predicate.op == "starts-with" and predicate.value == "pre"
    predicate = path_of('/r[contains(a/b, "mid")]').steps[0].predicates[0]
    assert predicate.op == "contains"


def test_element_named_not_without_parens():
    # `not` followed by anything but '(' is a plain element name.
    predicate = path_of("/r[not = 1]").steps[0].predicates[0]
    assert isinstance(predicate, Comparison)
    assert predicate.path.steps[0].test.name == "not"


def test_string_and_numeric_literals():
    comparison = path_of('/r[a = "5"]').steps[0].predicates[0]
    assert comparison.value == "5"  # quoted → string, not int
    comparison = path_of("/r[a = 5]").steps[0].predicates[0]
    assert comparison.value == 5


def test_round_trip_through_unparse():
    sources = [
        "//a[b/text() = 1 and .//a[@c > 2]]",
        "/r[not(a) or (b = 2 and c/text() != 'x')]",
        "//*[@id = 'k1']/b//c[text() = 3]",
        "/a/b[@p >= 10][q <= 2]",
        '/r[starts-with(a, "pre") and contains(b, "mid")]',
    ]
    for source in sources:
        first = parse_xpath(source).path
        second = parse_xpath(str(first)).path
        assert first == second, source


def test_errors():
    for bad in [
        "a",  # must start with / or //
        "/a[",  # unterminated predicate
        "/a[b = ]",  # missing constant
        "/a[/b = 1]",  # absolute path inside predicate
        "/a]b",  # trailing junk
        "//",  # missing node test
        "/a[b ~ 1]",
    ]:
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


def test_parse_workload_assigns_oids():
    filters = parse_workload(["/a", "/b"])
    assert [f.oid for f in filters] == ["q0", "q1"]
    filters = parse_workload({"x": "/a", "y": "/b"})
    assert sorted(f.oid for f in filters) == ["x", "y"]
