"""Tests for workload analytics."""

from repro.xpath.analysis import most_shared_predicates, profile_workload
from repro.xpath.parser import parse_workload

from tests.conftest import make_workload


def test_running_example_profile(running_filters):
    profile = profile_workload(running_filters)
    assert profile.queries == 2
    # [b/text() = 1] occurs in both filters → sharing ratio > 1.
    assert profile.predicate_sharing_ratio > 1.0
    shared = most_shared_predicates(running_filters, top=1)
    (key, count), = shared
    assert count == 2
    assert key[1] == "="


def test_profile_counts():
    filters = parse_workload(
        {
            "a": "/r/x[p = 1]",
            "b": "/r/x[p = 1 and q = 2]",
            "c": "/r/y[not(p = 1) or q = 2]",
            "d": "/r/x",
        }
    )
    profile = profile_workload(filters)
    assert profile.queries == 4
    assert profile.linear_queries == 1
    assert profile.queries_with_not == 1
    assert profile.queries_with_or == 1
    assert profile.max_predicates_in_one_query == 2
    # p = 1 occurs 3 times, q = 2 twice → 5 occurrences, 2 distinct.
    assert profile.total_atomic_predicates == 5
    assert profile.distinct_atomic_predicates == 2
    assert profile.predicate_sharing_ratio == 2.5
    # Prefixes: /r shared by all four, /r/x by three.
    assert profile.prefix_sharing_ratio > 1.0
    assert "queries" in profile.describe()


def test_generated_workloads_do_share(protein):
    """The paper's premise: at scale, common predicates are frequent."""
    filters = make_workload(
        protein, 300, seed=5, prob_not=0.0, prob_or=0.0, prob_nested=0.0,
        prob_wildcard=0.0, prob_descendant=0.0, mean_predicates=1.15,
    )
    profile = profile_workload(filters)
    assert profile.predicate_sharing_ratio > 1.05
    assert profile.prefix_sharing_ratio > 2.0


def test_empty_workload():
    profile = profile_workload([])
    assert profile.queries == 0
    assert profile.predicates_per_query == 0.0
    assert profile.predicate_sharing_ratio == 1.0
