"""Tests for AST structural measures."""

import pytest

from repro.xpath.ast import (
    Comparison,
    LocationPath,
    boolean_nesting_depth,
    count_atomic_predicates,
    is_linear,
)
from repro.xpath.parser import parse_xpath


def count(source):
    return count_atomic_predicates(parse_xpath(source).path)


def test_atomic_predicate_counting():
    assert count("/a") == 0
    assert count("/a[b = 1]") == 1
    assert count("/a[b = 1 and c = 2]") == 2
    # Nested comparison counts once; the enclosing Exists does not.
    assert count("//a[b/text()=1 and .//a[@c>2]]") == 2
    # A pure existence test counts as one atomic predicate.
    assert count("/a[b]") == 1
    assert count("/a[not(b = 1) or c]") == 2
    assert count("/a[b = 1]/c[d = 2][e]") == 3


def test_boolean_nesting_depth():
    assert boolean_nesting_depth(parse_xpath("/a").path) == 0
    assert boolean_nesting_depth(parse_xpath("/a[b = 1]").path) == 0
    assert boolean_nesting_depth(parse_xpath("/a[b = 1 and c = 2]").path) == 1
    assert boolean_nesting_depth(parse_xpath("/a[not(not(b = 1))]").path) == 2
    assert boolean_nesting_depth(parse_xpath("/a[x and not(b = 1 or c = 2)]").path) == 3


def test_is_linear():
    assert is_linear(parse_xpath("/a/b//c").path)
    assert not is_linear(parse_xpath("/a[b]/c").path)


def test_comparison_rejects_unknown_op():
    with pytest.raises(ValueError):
        Comparison(LocationPath(()), "~", 1)


def test_comparison_rejects_double_quoted_strings():
    with pytest.raises(ValueError):
        Comparison(LocationPath(()), "=", "has \"both\" 'quotes'")


def test_unparse_examples():
    assert str(parse_xpath("/a[b/text() = 1]").path) == "/a[b/text() = 1]"
    assert str(parse_xpath("//a[@c>2]").path) == "//a[@c > 2]"
    assert str(parse_xpath("/a[not(b)]").path) == "/a[not(b)]"
    assert str(parse_xpath("/a[x = 'v']").path) == '/a[x = "v"]'
