"""Run the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro.broker
import repro.data.protein
import repro.xpath.parser
import repro.xpush.layered

MODULES = [
    repro.broker,
    repro.data.protein,
    repro.xpath.parser,
    repro.xpush.layered,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0
