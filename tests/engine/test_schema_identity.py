"""Schema identity in engine snapshots (serial, layered, sharded).

Pruned tables are derived data, rebuilt on restore — so the snapshot
records *which* DTD (by fingerprint) and which ``schema_mode`` they
were derived from, exactly as it records the runtime.  A restore whose
engine holds a different DTD must be refused: silently rebuilding
against the wrong schema would change the tables the recorded answers
came from.
"""

from __future__ import annotations

import pytest

from repro.afa.schema import dtd_fingerprint
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialXPushEngine
from repro.errors import ReproError, WorkloadError
from repro.xpush.layered import LayeredFilterEngine
from repro.xpush.options import XPushOptions
from repro.xpush.persist import PersistError

from tests.conftest import make_workload


def _serial(protein, filters, mode="trust"):
    return SerialXPushEngine(
        filters,
        EngineConfig(
            options=XPushOptions(schema_mode=mode), dtd=protein.dtd
        ),
    )


def test_config_rejects_schema_mode_without_dtd():
    with pytest.raises(WorkloadError):
        EngineConfig(options=XPushOptions(schema_mode="trust"))


def test_serial_snapshot_records_schema_identity(protein, protein_docs):
    filters = make_workload(protein, 12, seed=51)
    engine = _serial(protein, filters)
    expected = [engine.filter_document(d) for d in protein_docs[:4]]
    snapshot = engine.snapshot()
    assert snapshot["schema_mode"] == "trust"
    assert snapshot["schema_fingerprint"] == dtd_fingerprint(protein.dtd)

    restored = SerialXPushEngine([], EngineConfig(dtd=protein.dtd))
    restored.restore(snapshot)
    assert restored.config.options.schema_mode == "trust"
    assert [restored.filter_document(d) for d in protein_docs[:4]] == expected
    assert restored.stats()["schema_pruned_states"] >= 0
    assert restored.stats()["schema_mode"] == "trust"


def test_serial_restore_rejects_mismatched_dtd(protein, nasa):
    filters = make_workload(protein, 8, seed=52)
    snapshot = _serial(protein, filters).snapshot()
    restored = SerialXPushEngine([], EngineConfig(dtd=nasa.dtd))
    with pytest.raises(WorkloadError, match="fingerprint mismatch"):
        restored.restore(snapshot)


def test_serial_restore_rejects_missing_dtd(protein):
    filters = make_workload(protein, 8, seed=53)
    snapshot = _serial(protein, filters).snapshot()
    restored = SerialXPushEngine([], EngineConfig())
    with pytest.raises(WorkloadError, match="no DTD"):
        restored.restore(snapshot)


def test_serial_schema_off_snapshot_restores_anywhere(protein):
    filters = make_workload(protein, 6, seed=54)
    engine = SerialXPushEngine(filters, EngineConfig())
    snapshot = engine.snapshot()
    assert snapshot["schema_mode"] == "off"
    assert "schema_fingerprint" not in snapshot
    restored = SerialXPushEngine([], EngineConfig())
    restored.restore(snapshot)  # no identity recorded, nothing to refuse


def test_layered_snapshot_round_trips_schema_identity(protein, protein_docs):
    filters = make_workload(protein, 14, seed=55)
    engine = LayeredFilterEngine(
        filters[:10],
        options=XPushOptions(schema_mode="validate"),
        dtd=protein.dtd,
        compact_threshold=1_000,
    )
    for f in filters[10:]:
        engine.insert(f.oid, f.source)
    expected = [engine.filter_document(d) for d in protein_docs[:4]]
    snapshot = engine.snapshot()
    assert snapshot["schema_mode"] == "validate"
    assert snapshot["schema_fingerprint"] == dtd_fingerprint(protein.dtd)

    restored = LayeredFilterEngine([], options=XPushOptions(), dtd=protein.dtd)
    restored.restore(snapshot)
    assert restored.options.schema_mode == "validate"
    assert [restored.filter_document(d) for d in protein_docs[:4]] == expected
    assert restored.stats()["schema_mode"] == "validate"


def test_layered_restore_rejects_mismatched_dtd(protein, nasa):
    engine = LayeredFilterEngine(
        make_workload(protein, 6, seed=56),
        options=XPushOptions(schema_mode="trust"),
        dtd=protein.dtd,
    )
    snapshot = engine.snapshot()
    restored = LayeredFilterEngine([], options=XPushOptions(), dtd=nasa.dtd)
    with pytest.raises(PersistError, match="fingerprint mismatch"):
        restored.restore(snapshot)
    bare = LayeredFilterEngine([], options=XPushOptions())
    with pytest.raises(PersistError, match="no DTD"):
        bare.restore(snapshot)


def test_sharded_snapshot_round_trips_schema_identity(protein, protein_docs):
    from repro.service import ShardedFilterEngine

    filters = make_workload(protein, 16, seed=57)
    config = EngineConfig(
        engine="sharded",
        options=XPushOptions(
            top_down=True, precompute_values=False, schema_mode="trust"
        ),
        dtd=protein.dtd,
        shards=2,
        parallel=False,
    )
    docs = protein_docs[:5]
    with ShardedFilterEngine(filters, config=config) as engine:
        expected = engine.filter_batch(docs)
        snapshot = engine.snapshot()
        assert engine.stats()["schema_mode"] == "trust"
    assert snapshot["schema_mode"] == "trust"
    assert snapshot["schema_fingerprint"] == dtd_fingerprint(protein.dtd)

    restore_config = EngineConfig(
        engine="sharded", dtd=protein.dtd, shards=2, parallel=False
    )
    with ShardedFilterEngine([], config=restore_config) as restored:
        restored.restore(snapshot)
        assert restored.options.schema_mode == "trust"
        assert restored.filter_batch(docs) == expected


def test_sharded_restore_rejects_mismatched_dtd(protein, nasa):
    from repro.service import ShardedFilterEngine

    filters = make_workload(protein, 8, seed=58)
    config = EngineConfig(
        engine="sharded",
        options=XPushOptions(schema_mode="trust"),
        dtd=protein.dtd,
        shards=2,
        parallel=False,
    )
    with ShardedFilterEngine(filters, config=config) as engine:
        snapshot = engine.snapshot()
    wrong = EngineConfig(engine="sharded", dtd=nasa.dtd, shards=2, parallel=False)
    with ShardedFilterEngine([], config=wrong) as restored:
        with pytest.raises(ReproError, match="fingerprint mismatch"):
            restored.restore(snapshot)


def test_sharded_worker_fallback_disables_schema_for_unpicklable_dtd(protein):
    """An unpicklable DTD cannot cross the process boundary; the worker
    options must drop schema specialization along with the order
    optimisation rather than ship a schema_mode that would fail at
    machine construction."""
    from repro.service.engine import _picklable

    class Unpicklable:
        def __reduce__(self):
            raise TypeError("nope")

    assert not _picklable(Unpicklable())
