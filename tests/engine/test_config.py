"""`EngineConfig` construction-time validation.

A config travels far from where it is built (CLI → factory → worker
boot payloads), so a bad field must fail at construction with a
:class:`WorkloadError`, not surface later as a KeyError inside a
worker process.
"""

from __future__ import annotations

import pytest

from repro.engine.config import EngineConfig
from repro.errors import WorkloadError
from repro.service.partition import PARTITION_STRATEGIES, PLACEMENT_POLICIES


def test_default_config_is_valid():
    EngineConfig()


@pytest.mark.parametrize("placement", sorted(PLACEMENT_POLICIES))
def test_known_placements_accepted(placement):
    EngineConfig(placement=placement)


def test_unknown_placement_rejected():
    with pytest.raises(WorkloadError, match="unknown placement policy"):
        EngineConfig(placement="cheapest")


@pytest.mark.parametrize("threshold", [0.99, 0.0, -1.0])
def test_rebalance_threshold_floor(threshold):
    with pytest.raises(WorkloadError, match="rebalance_threshold"):
        EngineConfig(rebalance_threshold=threshold)


def test_rebalance_threshold_of_one_accepted():
    EngineConfig(rebalance_threshold=1.0)


def test_negative_rebalance_interval_rejected():
    with pytest.raises(WorkloadError, match="rebalance_interval"):
        EngineConfig(rebalance_interval=-1)


@pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
def test_known_strategies_accepted(strategy):
    EngineConfig(strategy=strategy)


def test_unknown_strategy_rejected():
    with pytest.raises(WorkloadError, match="unknown partition strategy"):
        EngineConfig(strategy="round_trip")


@pytest.mark.parametrize("timeout", [0, 0.0, -1, -0.5])
def test_non_positive_result_timeout_rejected(timeout):
    with pytest.raises(WorkloadError, match="result_timeout"):
        EngineConfig(result_timeout=timeout)


@pytest.mark.parametrize("bound", [0, -1])
def test_eager_max_states_floor(bound):
    with pytest.raises(WorkloadError, match="eager_max_states"):
        EngineConfig(eager_max_states=bound)


def test_eager_max_states_of_one_accepted():
    EngineConfig(eager_max_states=1)
