"""Conformance wall for the unified engine surface.

Every kind in the registry must structurally satisfy
:class:`repro.engine.FilterEngine` *and* behave identically on the
protocol's contract: same answers for the same workload, updates
visible on the next filter call, snapshot → restore round-trips to an
engine with identical answers.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    BACKENDS,
    EngineConfig,
    FilterEngine,
    KNOWN_ENGINES,
    create_engine,
    engine_names,
    register_engine,
)
from repro.errors import WorkloadError
from repro.xmlstream.dom import parse_document
from repro.xmlstream.events import events_of_document
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import matching_oids

WORKLOAD = {
    "q0": "//a[b = 1]",
    "q1": "//c",
    "q2": "/a[not(b)]",
}

DOCS = ["<a><b>1</b></a>", "<c/>", "<a><d/></a>", "<a><b>2</b></a>"]

#: Engine kinds exercised in-process (sharded runs serial here; its
#: worker-process behaviour has its own suite in tests/service/).
ALL_KINDS = sorted(KNOWN_ENGINES)


def _config(kind: str) -> EngineConfig:
    if kind == "sharded":
        return EngineConfig(engine="sharded", shards=2, parallel=False)
    return EngineConfig(engine=kind)


def _expected(workload: dict[str, str], xml: str) -> frozenset[str]:
    filters = [parse_xpath(source, oid) for oid, source in workload.items()]
    return matching_oids(filters, parse_document(xml))


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_every_registered_engine_satisfies_the_protocol(kind):
    engine = create_engine(_config(kind), WORKLOAD)
    try:
        assert isinstance(engine, FilterEngine)
        assert engine.filter_count == len(WORKLOAD)
    finally:
        engine.close()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_filter_entry_points_agree(kind):
    """filter_document, filter_events and filter_stream are three
    spellings of the same evaluation."""
    engine = create_engine(_config(kind), WORKLOAD)
    try:
        expected = [_expected(WORKLOAD, xml) for xml in DOCS]
        docs = [parse_document(xml) for xml in DOCS]
        assert [engine.filter_document(d) for d in docs] == expected
        events = [e for d in docs for e in events_of_document(d)]
        assert engine.filter_events(iter(events)) == expected
        assert engine.filter_stream("".join(DOCS)) == expected
        assert engine.filter_stream("".join(DOCS).encode("utf-8")) == expected
    finally:
        engine.close()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_updates_are_visible_and_validated(kind):
    engine = create_engine(_config(kind), WORKLOAD)
    try:
        assert engine.filter_stream("<e/>") == [frozenset()]
        engine.subscribe("q3", "//e")
        assert engine.filter_stream("<e/>") == [frozenset({"q3"})]
        assert engine.filter_count == len(WORKLOAD) + 1
        with pytest.raises(WorkloadError):
            engine.subscribe("q3", "//f")  # duplicate oid
        engine.unsubscribe("q3")
        assert engine.filter_stream("<e/>") == [frozenset()]
        assert engine.filter_count == len(WORKLOAD)
        with pytest.raises(WorkloadError):
            engine.unsubscribe("q3")  # already gone
        with pytest.raises(WorkloadError):
            engine.unsubscribe("ghost")
    finally:
        engine.close()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_snapshot_restore_round_trip(kind):
    """A restored engine answers exactly like the one captured — with
    updates applied after restore still working."""
    import json

    engine = create_engine(_config(kind), WORKLOAD)
    try:
        engine.subscribe("q3", "//e")
        engine.unsubscribe("q1")
        snapshot = engine.snapshot()
        json.dumps(snapshot)  # must be JSON-safe, it is the persist format
        expected = [engine.filter_stream(xml)[0] for xml in DOCS + ["<e/>"]]
    finally:
        engine.close()
    restored = create_engine(_config(kind), snapshot=snapshot)
    try:
        assert [restored.filter_stream(xml)[0] for xml in DOCS + ["<e/>"]] == expected
        assert restored.filter_count == len(WORKLOAD)  # -q1 +q3
        restored.subscribe("q4", "//c")
        assert "q4" in restored.filter_stream("<c/>")[0]
    finally:
        restored.close()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_stats_names_the_engine(kind):
    engine = create_engine(_config(kind), WORKLOAD)
    try:
        stats = engine.stats()
        assert stats["engine"] == kind
        assert stats["filters"] == len(WORKLOAD)
    finally:
        engine.close()


def test_workload_spellings_are_equivalent():
    """Mapping, parsed-filter list and bare source list all build the
    same workload (bare sources get q0, q1, ... oids)."""
    mapping = create_engine(EngineConfig(), {"q0": "//a", "q1": "//b"})
    parsed = create_engine(
        EngineConfig(), [parse_xpath("//a", "q0"), parse_xpath("//b", "q1")]
    )
    bare = create_engine(EngineConfig(), ["//a", "//b"])
    for xml in ("<a/>", "<b/>", "<c/>"):
        assert (
            mapping.filter_stream(xml)
            == parsed.filter_stream(xml)
            == bare.filter_stream(xml)
        )


def test_factory_rejects_unknown_engine_and_double_source():
    with pytest.raises(WorkloadError):
        create_engine(EngineConfig(engine="xpush").with_engine("nonsense"))
    engine = create_engine(EngineConfig(), {"q0": "//a"})
    snapshot = engine.snapshot()
    with pytest.raises(WorkloadError):
        create_engine(EngineConfig(), {"q0": "//a"}, snapshot=snapshot)


def test_register_engine_is_open():
    calls = []

    def builder(filters, config):
        calls.append(len(filters))
        return create_engine(EngineConfig(engine="xpush"), filters)

    register_engine("custom-test", builder)
    try:
        engine = create_engine(
            EngineConfig().with_engine("custom-test"), {"q0": "//a"}
        )
        assert engine.filter_stream("<a/>") == [frozenset({"q0"})]
        assert calls == [1]
        assert "custom-test" in engine_names()
    finally:
        from repro.engine.factory import _REGISTRY

        _REGISTRY.pop("custom-test", None)


def test_config_validation():
    with pytest.raises(WorkloadError):
        EngineConfig(backend="libxml")
    with pytest.raises(WorkloadError):
        EngineConfig(shards=0)
    with pytest.raises(WorkloadError):
        EngineConfig(batch_size=0)
    with pytest.raises(WorkloadError):
        EngineConfig(queue_depth=0)
    with pytest.raises(WorkloadError):
        EngineConfig(compact_threshold=0)
    with pytest.raises(WorkloadError):
        EngineConfig(options="TD")  # type: ignore[arg-type]
    with pytest.raises(WorkloadError):
        EngineConfig(engine="sharded", inner="sharded")
    assert "layered" in EngineConfig(engine="layered").describe()
    for backend in BACKENDS:
        EngineConfig(backend=backend)


def test_engine_starts_empty_and_grows():
    """No filters, no snapshot: the engine starts empty and is built
    entirely through the control plane."""
    engine = create_engine(EngineConfig(engine="layered"))
    assert engine.filter_count == 0
    assert engine.filter_stream("<a/>") == [frozenset()]
    engine.subscribe("q0", "//a")
    assert engine.filter_stream("<a/>") == [frozenset({"q0"})]


def test_stream_sources_accept_file_objects(tmp_path):
    import io

    engine = create_engine(EngineConfig(engine="layered"), {"q0": "//a"})
    assert engine.filter_stream(io.StringIO("<a/><b/>")) == [
        frozenset({"q0"}),
        frozenset(),
    ]
    assert engine.filter_stream(io.BytesIO(b"<a/>")) == [frozenset({"q0"})]
    path = tmp_path / "stream.xml"
    path.write_text("<a/>")
    with open(path, "rb") as handle:
        assert engine.filter_stream(handle) == [frozenset({"q0"})]


def test_realistic_workload_matches_reference(protein, protein_docs):
    """On realistic data every in-process engine kind agrees with the
    semantic reference, document by document."""
    from tests.conftest import make_workload

    # "eager" is left out: its exponential construction exceeds the
    # state budget on realistic workloads (the paper's Sec. 4 point).
    filters = make_workload(protein, 12, seed=13)
    docs = protein_docs[:6]
    expected = [matching_oids(filters, doc) for doc in docs]
    for kind in ("xpush", "layered", "naive", "xfilter", "yfilter"):
        engine = create_engine(EngineConfig(engine=kind), filters)
        try:
            assert [engine.filter_document(d) for d in docs] == expected, kind
        finally:
            engine.close()
