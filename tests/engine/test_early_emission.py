"""Differential wall for event-time earliest answering (``on_match``).

Every engine exposes an ``on_match`` hook that fires ``(oid,
doc_index, event_index)`` the moment a filter is decided.  The wall
pins the contract down across runtimes (sets / bitmask / codegen),
engines (serial xpush / layered / sharded, serial and parallel) and
schema modes (off / trust / validate, including the validate-replay
fallback): the emitted oid set per document must equal the
end-of-document answer set exactly, no oid may be emitted twice for
one document, and — for the single-machine engines — emissions arrive
in event order.  The sharded engine scans shards independently, so
only the per-document *set* contract holds there, not a global event
order.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine import EngineConfig, create_engine
from repro.xmlstream.dom import parse_document
from repro.xmlstream.writer import document_to_xml
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import matching_oids
from repro.xpush.options import XPushOptions

from tests.conftest import make_workload

WORKLOAD = {
    "q0": "//a[b = 1]",
    "q1": "//c",
    "q2": "/a[not(b)]",
    "q3": "//a[@k = 'v' and b]",
}

DOCS = [
    "<a><b>1</b></a>",
    "<c/>",
    "<a><d/></a>",
    '<a k="v"><b>1</b><c/></a>',
    "<a><b>2</b></a>",
]

RUNTIMES = ("sets", "bitmask", "codegen")

#: Engines with a real event-time path (baselines are document-granular).
EVENT_TIME_ENGINES = ("xpush", "layered", "sharded")


def _early_options(runtime: str = "sets", **kwargs) -> XPushOptions:
    return XPushOptions(
        top_down=True, early=True, precompute_values=False, runtime=runtime, **kwargs
    )


def _config(kind: str, options: XPushOptions, dtd=None) -> EngineConfig:
    if kind == "sharded":
        return EngineConfig(
            engine="sharded", shards=2, parallel=False, options=options, dtd=dtd
        )
    if kind == "sharded-parallel":
        return EngineConfig(
            engine="sharded", shards=2, parallel=True, options=options, dtd=dtd
        )
    return EngineConfig(engine=kind, options=options, dtd=dtd)


def collect(engine, xml: str):
    """Filter *xml* with the hook wired; return (answers, emissions)."""
    emissions: list[tuple[str, int, int]] = []
    engine.on_match = lambda oid, doc, ev: emissions.append((oid, doc, ev))
    try:
        answers = engine.filter_stream(xml)
    finally:
        engine.on_match = None
    return answers, emissions


def assert_emissions_cover(answers, emissions, *, event_ordered: bool) -> None:
    """The three invariants: coverage, uniqueness, (optionally) order."""
    per_doc: dict[int, list[tuple[str, int]]] = {}
    for oid, doc, ev in emissions:
        per_doc.setdefault(doc, []).append((oid, ev))
    assert set(per_doc) <= set(range(len(answers))), "emission for unknown document"
    for index, matched in enumerate(answers):
        got = per_doc.get(index, [])
        oids = [oid for oid, _ in got]
        assert len(oids) == len(set(oids)), f"doc {index}: oid emitted twice"
        assert set(oids) == set(matched), f"doc {index}: emissions != answers"
        if event_ordered:
            events = [ev for _, ev in got]
            assert events == sorted(events), f"doc {index}: out of event order"


def _expected(workload, xml_docs):
    filters = [parse_xpath(source, oid) for oid, source in workload.items()]
    return [matching_oids(filters, parse_document(xml)) for xml in xml_docs]


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("kind", EVENT_TIME_ENGINES)
def test_emissions_equal_answers(kind, runtime):
    engine = create_engine(_config(kind, _early_options(runtime)), WORKLOAD)
    try:
        answers, emissions = collect(engine, "".join(DOCS))
    finally:
        engine.close()
    assert answers == _expected(WORKLOAD, DOCS)
    assert_emissions_cover(answers, emissions, event_ordered=(kind != "sharded"))
    if kind != "sharded":
        doc_order = [doc for _, doc, _ in emissions]
        assert doc_order == sorted(doc_order), "documents out of stream order"


@pytest.mark.parametrize("runtime", ("sets", "codegen"))
def test_parallel_sharded_workers_stream_matches(runtime):
    """The worker-process path: matches cross the result queue as
    ``("match", ...)`` messages ahead of the batch reply."""
    engine = create_engine(
        _config("sharded-parallel", _early_options(runtime)), WORKLOAD
    )
    try:
        answers, emissions = collect(engine, "".join(DOCS))
    finally:
        engine.close()
    assert answers == _expected(WORKLOAD, DOCS)
    assert_emissions_cover(answers, emissions, event_ordered=False)


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("mode", ["off", "trust", "validate"])
def test_emissions_under_schema_modes(mode, runtime, protein, protein_docs):
    filters = make_workload(protein, 20, seed=77)
    options = replace(_early_options(runtime), schema_mode=mode)
    engine = create_engine(
        EngineConfig(engine="xpush", options=options, dtd=protein.dtd),
        filters,
    )
    xml = "".join(document_to_xml(doc) for doc in protein_docs[:8])
    try:
        answers, emissions = collect(engine, xml)
    finally:
        engine.close()
    assert answers == [matching_oids(filters, doc) for doc in protein_docs[:8]]
    assert_emissions_cover(answers, emissions, event_ordered=True)


@pytest.mark.parametrize("runtime", RUNTIMES)
def test_emissions_through_validate_replay(runtime, protein, nasa, protein_docs, nasa_docs):
    """Nonconforming documents trip the validate fallback mid-document;
    the replay on the unpruned machine must not re-emit oids the pruned
    prefix already delivered, and must still cover the answer set."""
    filters = list(make_workload(protein, 12, seed=11))
    for index, f in enumerate(make_workload(nasa, 12, seed=12)):
        filters.append(parse_xpath(f.source, f"nasa{index}"))
    options = replace(_early_options(runtime), schema_mode="validate")
    engine = create_engine(
        EngineConfig(engine="xpush", options=options, dtd=protein.dtd),
        filters,
    )
    stream = protein_docs[:2] + nasa_docs[:4] + protein_docs[2:4]
    xml = "".join(document_to_xml(doc) for doc in stream)
    try:
        answers, emissions = collect(engine, xml)
        fallbacks = engine.stats()["schema_fallbacks"]
    finally:
        engine.close()
    # The sets runtime always runs unpruned (it is the executable spec),
    # so only the compiled runtimes have a fallback to trip.
    assert fallbacks == (0 if runtime == "sets" else 4)
    assert answers == [matching_oids(filters, doc) for doc in stream]
    assert_emissions_cover(answers, emissions, event_ordered=True)


@pytest.mark.parametrize("kind", EVENT_TIME_ENGINES)
def test_hook_covers_answers_without_early_option(kind):
    """With ``early=False`` nothing is decided before end-of-document,
    but the hook still fires there — the hook is usable regardless of
    the machine option, it just fires later."""
    options = XPushOptions(top_down=True, precompute_values=False)
    engine = create_engine(_config(kind, options), WORKLOAD)
    try:
        answers, emissions = collect(engine, "".join(DOCS))
    finally:
        engine.close()
    assert answers == _expected(WORKLOAD, DOCS)
    assert_emissions_cover(answers, emissions, event_ordered=(kind != "sharded"))


@pytest.mark.parametrize("kind", ["naive", "eager"])
def test_rebuild_engines_emit_at_document_granularity(kind):
    """Baseline engines re-evaluate whole documents: they honour the
    hook contract with the ``-1`` no-event-time sentinel."""
    engine = create_engine(EngineConfig(engine=kind), WORKLOAD)
    try:
        answers, emissions = collect(engine, "".join(DOCS))
    finally:
        engine.close()
    assert answers == _expected(WORKLOAD, DOCS)
    assert all(ev == -1 for _, _, ev in emissions)
    assert_emissions_cover(answers, emissions, event_ordered=False)


def test_layered_updates_respect_emission_routing():
    """After unsubscribe/resubscribe the delta machine owns the oid:
    exactly one emission per (doc, oid) even while both layers match."""
    engine = create_engine(_config("layered", _early_options()), WORKLOAD)
    try:
        engine.unsubscribe("q1")
        engine.subscribe("q1", "//c")  # now lives in the delta layer
        engine.subscribe("q4", "//d")
        answers, emissions = collect(engine, "".join(DOCS))
    finally:
        engine.close()
    workload = dict(WORKLOAD)
    workload["q4"] = "//d"
    assert answers == _expected(workload, DOCS)
    assert_emissions_cover(answers, emissions, event_ordered=True)
