"""Differential wall for the three machine runtimes (ISSUES 3, 7).

The ``"sets"`` runtime is the executable spec; the compiled
``"bitmask"`` runtime and the workload-specialized ``"codegen"``
runtime must produce byte-identical answers — same oids per document —
for every optimisation combination, on generated workloads over both
datasets, on hypothesis-generated workloads and documents, under
memory-bounded eviction, after a persist round-trip, through layered
updates at every epoch, and through the sharded engine.  Any
divergence is a bug in the compiled tables or the generated handlers,
never a judgement call.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.afa.build import build_workload_automata
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import VARIANTS, XPushOptions

from tests.conftest import make_workload
from tests.property.test_machine_properties import documents as gen_documents
from tests.property.test_machine_properties import workloads as gen_workloads
from tests.xpush.test_differential import ALL_OPTION_COMBOS

import hypothesis.strategies as st

#: The reference runtime first; every other runtime is diffed against it.
RUNTIMES_UNDER_TEST = ("sets", "bitmask", "codegen")


def all_runtimes(options: XPushOptions) -> tuple[XPushOptions, ...]:
    return tuple(replace(options, runtime=r) for r in RUNTIMES_UNDER_TEST)


def run_all(filters, options, docs, dtd=None) -> dict[str, list]:
    """``runtime → answers`` for the same workload and documents."""
    workload = build_workload_automata(filters)
    out = {}
    for opts in all_runtimes(options):
        machine = XPushMachine(workload, opts, dtd=dtd)
        out[opts.runtime] = [machine.filter_document(doc) for doc in docs]
    return out


def assert_all_agree(answers: dict[str, list]) -> list:
    reference = answers["sets"]
    for runtime, got in answers.items():
        assert got == reference, f"runtime {runtime!r} diverged from sets"
    return reference


@pytest.mark.parametrize("options", ALL_OPTION_COMBOS, ids=lambda o: o.describe())
def test_runtimes_agree_and_match_reference_protein(options, protein, protein_docs):
    filters = make_workload(protein, 35, seed=101)
    answers = run_all(filters, options, protein_docs, dtd=protein.dtd)
    reference = assert_all_agree(answers)
    assert reference == [matching_oids(filters, doc) for doc in protein_docs]


@pytest.mark.parametrize("options", ALL_OPTION_COMBOS, ids=lambda o: o.describe())
def test_runtimes_agree_on_recursive_nasa(options, nasa, nasa_docs):
    filters = make_workload(nasa, 25, seed=17, prob_descendant=0.3)
    docs = nasa_docs[:10]
    answers = run_all(filters, options, docs, dtd=nasa.dtd)
    reference = assert_all_agree(answers)
    assert reference == [matching_oids(filters, doc) for doc in docs]


@pytest.mark.parametrize("name", sorted(VARIANTS), ids=str)
def test_named_variants_agree_across_runtimes(name, protein, protein_docs):
    options = VARIANTS[name]
    filters = make_workload(protein, 20, seed=name.__hash__() % 1000)
    docs = protein_docs[:10]
    assert_all_agree(run_all(filters, options, docs, dtd=protein.dtd))


def test_runtimes_build_identical_state_structure(protein, protein_docs):
    """Beyond answers: all runtimes materialise the same state lattice
    (count and per-state sid sets), so every Fig. 6/7 measurement is
    representation-independent."""
    filters = make_workload(protein, 30, seed=77)
    workload = build_workload_automata(filters)
    machines = [XPushMachine(workload, opts) for opts in all_runtimes(XPushOptions())]
    for machine in machines:
        for doc in protein_docs[:10]:
            machine.filter_document(doc)
    reference = machines[0]
    for machine in machines[1:]:
        assert machine.state_count == reference.state_count
        assert machine.average_state_size == reference.average_state_size
        assert sorted(s.sids for s in machine.store.bottom_states()) == sorted(
            s.sids for s in reference.store.bottom_states()
        )


def test_stats_counters_agree_across_runtimes(protein, protein_docs):
    filters = make_workload(protein, 30, seed=31)
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    workload = build_workload_automata(filters)
    machines = [
        XPushMachine(workload, opts, dtd=protein.dtd) for opts in all_runtimes(options)
    ]
    for machine in machines:
        for doc in protein_docs[:10]:
            machine.filter_document(doc)
    reference = machines[0]
    for machine in machines[1:]:
        assert (machine.stats.events, machine.stats.documents) == (
            reference.stats.events,
            reference.stats.documents,
        )
        assert machine.stats.pop_computed == reference.stats.pop_computed
        assert machine.stats.push_computed == reference.stats.push_computed
        assert machine.stats.hit_ratio == reference.stats.hit_ratio


def test_codegen_stats_gauges_are_stamped(protein, protein_docs):
    """The codegen machine reports its compile cost and handler count;
    the other runtimes report zeros (the counters exist everywhere so
    service/serving stats stay uniform)."""
    filters = make_workload(protein, 20, seed=3)
    workload = build_workload_automata(filters)
    for opts in all_runtimes(XPushOptions()):
        machine = XPushMachine(workload, opts)
        machine.filter_document(protein_docs[0])
        if opts.runtime == "codegen":
            assert machine.stats.codegen_handlers > 0
            assert machine.stats.codegen_compile_ms > 0.0
            assert machine.dump_source() is not None
        else:
            assert machine.stats.codegen_handlers == 0
            assert machine.stats.codegen_compile_ms == 0.0
            assert machine.dump_source() is None
        assert machine.stats.codegen_fallbacks == 0


@given(gen_workloads(), st.lists(gen_documents, min_size=1, max_size=3))
@settings(max_examples=100, deadline=None)
def test_hypothesis_runtimes_agree_basic(workload, docs):
    docs = [doc for doc in docs if not doc.has_mixed_content()]
    if not docs:
        return
    answers = run_all(workload, XPushOptions(), docs)
    reference = assert_all_agree(answers)
    assert reference == [matching_oids(workload, doc) for doc in docs]


@given(gen_workloads(), st.lists(gen_documents, min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_hypothesis_runtimes_agree_top_down_early(workload, docs):
    docs = [doc for doc in docs if not doc.has_mixed_content()]
    if not docs:
        return
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    answers = run_all(workload, options, docs)
    reference = assert_all_agree(answers)
    assert reference == [matching_oids(workload, doc) for doc in docs]


def test_memory_bounded_eviction_agrees_across_runtimes(protein, protein_docs):
    """A tight memory bound exercises the CLOCK sweep mid-stream; the
    recomputed (post-eviction) transitions must agree runtime-to-
    runtime just like the first-time ones."""
    filters = make_workload(protein, 30, seed=13)
    options = XPushOptions(
        top_down=True, precompute_values=False, max_memory_bytes=64 * 1024
    )
    answers = run_all(filters, options, protein_docs, dtd=protein.dtd)
    reference = assert_all_agree(answers)
    assert reference == [matching_oids(filters, doc) for doc in protein_docs]
    machine = XPushMachine(
        build_workload_automata(filters), replace(options, runtime="codegen")
    )
    for doc in protein_docs:
        machine.filter_document(doc)
    assert machine.stats.evictions > 0 or machine.stats.flushes > 0


def test_persist_round_trip_under_every_runtime(protein, protein_docs, tmp_path):
    """Snapshots carry no compiled tables and no generated code;
    ``finalize()`` on load must rebuild masks — and the codegen machine
    must recompile handlers — that behave identically to the originals."""
    import io

    from repro.xpush.persist import load_workload, save_workload

    filters = make_workload(protein, 25, seed=44)
    original = build_workload_automata(filters)
    buffer = io.StringIO()
    save_workload(original, buffer)
    buffer.seek(0)
    reloaded = load_workload(buffer)
    assert reloaded.masks is not None
    for options in all_runtimes(XPushOptions(top_down=True, precompute_values=False)):
        a = XPushMachine(original, options)
        b = XPushMachine(reloaded, options)
        for doc in protein_docs[:10]:
            assert a.filter_document(doc) == b.filter_document(doc)


def test_engine_snapshot_restores_codegen_runtime(protein, protein_docs, tmp_path):
    """Engine snapshots record the runtime; a restored engine rebuilds
    (and recompiles) under the same runtime it was captured with."""
    from repro.engine.config import EngineConfig
    from repro.engine.serial import SerialXPushEngine

    filters = make_workload(protein, 15, seed=6)
    config = EngineConfig(options=XPushOptions(runtime="codegen"))
    engine = SerialXPushEngine(filters, config)
    expected = [engine.filter_document(doc) for doc in protein_docs[:5]]
    snapshot = engine.snapshot()
    assert snapshot["runtime"] == "codegen"

    restored = SerialXPushEngine([], EngineConfig())
    restored.restore(snapshot)
    assert restored.config.options.runtime == "codegen"
    assert [restored.filter_document(d) for d in protein_docs[:5]] == expected
    assert restored.stats()["codegen_handlers"] > 0


def test_layered_updates_agree_at_every_epoch(protein, protein_docs):
    """Drive the same insert/remove sequence through a layered engine
    per runtime and diff the answers after *every* update epoch.  Under
    codegen only the delta layer recompiles: the base machine's handler
    object must stay the same across epochs."""
    from repro.xpush.layered import LayeredFilterEngine

    filters = make_workload(protein, 24, seed=9)
    base, updates = filters[:12], filters[12:]
    docs = protein_docs[:6]
    engines = {
        opts.runtime: LayeredFilterEngine(
            base, options=opts, compact_threshold=1_000
        )
        for opts in all_runtimes(XPushOptions(top_down=True, precompute_values=False))
    }
    codegen_engine = engines["codegen"]
    assert codegen_engine._base is not None
    base_handlers = codegen_engine._base._handlers
    assert base_handlers is not None

    def check_epoch():
        per_runtime = {
            runtime: [engine.filter_document(doc) for doc in docs]
            for runtime, engine in engines.items()
        }
        assert_all_agree(per_runtime)

    check_epoch()
    for index, inserted in enumerate(updates):
        for engine in engines.values():
            engine.insert(inserted.oid, inserted.source)
        if index == 2:
            removed = base[0].oid
            for engine in engines.values():
                engine.remove(removed)
        check_epoch()
        # Only the delta layer was rebuilt: base handlers are reused
        # by identity, and the delta has its own compiled handlers.
        assert codegen_engine._base._handlers is base_handlers
        assert codegen_engine._delta is not None
        assert codegen_engine._delta._handlers is not None
        assert codegen_engine._delta._handlers is not base_handlers
    stats = engines["codegen"].stats()
    assert stats["runtime"] == "codegen"
    assert stats["codegen_handlers"] > 0


def test_layered_snapshot_round_trip_under_codegen(protein, protein_docs):
    from repro.xpush.layered import LayeredFilterEngine

    filters = make_workload(protein, 16, seed=29)
    engine = LayeredFilterEngine(
        filters[:10],
        options=XPushOptions(runtime="codegen"),
        compact_threshold=1_000,
    )
    for f in filters[10:]:
        engine.insert(f.oid, f.source)
    docs = protein_docs[:5]
    expected = [engine.filter_document(doc) for doc in docs]
    snapshot = engine.snapshot()
    assert snapshot["runtime"] == "codegen"

    restored = LayeredFilterEngine([], options=XPushOptions())
    restored.restore(snapshot)
    assert restored.options.runtime == "codegen"
    assert [restored.filter_document(doc) for doc in docs] == expected


@pytest.mark.parametrize("shards", [2, 3, 4])
def test_sharded_engine_agrees_across_runtimes(shards, protein, protein_docs):
    from repro.service import ShardedFilterEngine

    filters = make_workload(protein, 24, seed=71)
    docs = protein_docs[:8]
    answers = {}
    for options in all_runtimes(XPushOptions(top_down=True, precompute_values=False)):
        with ShardedFilterEngine(
            filters, shards, options=options, parallel=False, batch_size=3
        ) as engine:
            answers[options.runtime] = engine.filter_batch(docs)
            assert engine.stats()["runtime"] == options.runtime
    reference = assert_all_agree(answers)
    assert reference == [matching_oids(filters, doc) for doc in docs]


def test_sharded_worker_processes_under_codegen(protein, protein_docs):
    """Options (and so the runtime) pickle into the shard worker
    payloads; each worker recompiles its shard's handlers locally and
    the parallel path must agree with ground truth too."""
    from repro.service import ShardedFilterEngine

    filters = make_workload(protein, 16, seed=5)
    docs = protein_docs[:6]
    expected = [matching_oids(filters, doc) for doc in docs]
    with ShardedFilterEngine(
        filters, 2,
        options=XPushOptions(top_down=True, precompute_values=False, runtime="codegen"),
        batch_size=3, warm=False,
    ) as engine:
        if not engine.parallel:
            pytest.skip("multiprocessing unavailable on this platform")
        assert engine.filter_batch(docs) == expected


def test_reset_tables_clears_early_notifications(protein):
    """``reset_tables`` must drop in-flight early notifications; a
    stale ``_early`` set would leak oids into the next document's
    answer after a mid-stream flush."""
    filters = make_workload(protein, 12, seed=23)
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    for opts in all_runtimes(options):
        machine = XPushMachine(build_workload_automata(filters), opts)
        machine.start_document()
        machine._early.add("ghost-oid")
        machine.reset_tables()
        assert machine._early == set()


def test_reset_tables_round_trips_all_runtimes(protein, protein_docs):
    filters = make_workload(protein, 20, seed=61)
    for opts in all_runtimes(XPushOptions()):
        machine = XPushMachine(build_workload_automata(filters), opts)
        before = [machine.filter_document(doc) for doc in protein_docs[:6]]
        machine.reset_tables()
        after = [machine.filter_document(doc) for doc in protein_docs[:6]]
        assert before == after
