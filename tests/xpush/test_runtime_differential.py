"""Differential wall for the two machine runtimes (ISSUE 3).

The ``"sets"`` runtime is the executable spec; the compiled
``"bitmask"`` runtime must produce byte-identical answers — same oids
per document — for every optimisation combination, on generated
workloads over both datasets, on hypothesis-generated workloads and
documents, after a persist round-trip, and through the sharded engine.
Any divergence is a bug in the compiled tables, never a judgement call.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.afa.build import build_workload_automata
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import VARIANTS, XPushOptions

from tests.conftest import make_workload
from tests.property.test_machine_properties import documents as gen_documents
from tests.property.test_machine_properties import workloads as gen_workloads
from tests.xpush.test_differential import ALL_OPTION_COMBOS

import hypothesis.strategies as st


def both_runtimes(options: XPushOptions) -> tuple[XPushOptions, XPushOptions]:
    return (
        replace(options, runtime="bitmask"),
        replace(options, runtime="sets"),
    )


def run_both(filters, options, docs, dtd=None):
    """(bitmask answers, sets answers) for the same workload and docs."""
    out = []
    for opts in both_runtimes(options):
        machine = XPushMachine(build_workload_automata(filters), opts, dtd=dtd)
        out.append([machine.filter_document(doc) for doc in docs])
    return out


@pytest.mark.parametrize("options", ALL_OPTION_COMBOS, ids=lambda o: o.describe())
def test_runtimes_agree_and_match_reference_protein(options, protein, protein_docs):
    filters = make_workload(protein, 35, seed=101)
    bitmask, sets = run_both(filters, options, protein_docs, dtd=protein.dtd)
    assert bitmask == sets
    assert bitmask == [matching_oids(filters, doc) for doc in protein_docs]


@pytest.mark.parametrize("options", ALL_OPTION_COMBOS, ids=lambda o: o.describe())
def test_runtimes_agree_on_recursive_nasa(options, nasa, nasa_docs):
    filters = make_workload(nasa, 25, seed=17, prob_descendant=0.3)
    docs = nasa_docs[:10]
    bitmask, sets = run_both(filters, options, docs, dtd=nasa.dtd)
    assert bitmask == sets
    assert bitmask == [matching_oids(filters, doc) for doc in docs]


@pytest.mark.parametrize("name", sorted(VARIANTS), ids=str)
def test_named_variants_agree_across_runtimes(name, protein, protein_docs):
    options = VARIANTS[name]
    filters = make_workload(protein, 20, seed=name.__hash__() % 1000)
    docs = protein_docs[:10]
    bitmask, sets = run_both(filters, options, docs, dtd=protein.dtd)
    assert bitmask == sets


def test_runtimes_build_identical_state_structure(protein, protein_docs):
    """Beyond answers: both runtimes materialise the same state lattice
    (count and per-state sid sets), so every Fig. 6/7 measurement is
    representation-independent."""
    filters = make_workload(protein, 30, seed=77)
    machines = [
        XPushMachine(build_workload_automata(filters), opts)
        for opts in both_runtimes(XPushOptions())
    ]
    for machine in machines:
        for doc in protein_docs[:10]:
            machine.filter_document(doc)
    a, b = machines
    assert a.state_count == b.state_count
    assert a.average_state_size == b.average_state_size
    assert sorted(s.sids for s in a.store.bottom_states()) == sorted(
        s.sids for s in b.store.bottom_states()
    )


def test_stats_counters_agree_across_runtimes(protein, protein_docs):
    filters = make_workload(protein, 30, seed=31)
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    machines = [
        XPushMachine(build_workload_automata(filters), opts, dtd=protein.dtd)
        for opts in both_runtimes(options)
    ]
    for machine in machines:
        for doc in protein_docs[:10]:
            machine.filter_document(doc)
    a, b = machines
    assert (a.stats.events, a.stats.documents) == (b.stats.events, b.stats.documents)
    assert a.stats.pop_computed == b.stats.pop_computed
    assert a.stats.push_computed == b.stats.push_computed
    assert a.stats.hit_ratio == b.stats.hit_ratio


@given(gen_workloads(), st.lists(gen_documents, min_size=1, max_size=3))
@settings(max_examples=100, deadline=None)
def test_hypothesis_runtimes_agree_basic(workload, docs):
    docs = [doc for doc in docs if not doc.has_mixed_content()]
    if not docs:
        return
    bitmask, sets = run_both(workload, XPushOptions(), docs)
    assert bitmask == sets
    assert bitmask == [matching_oids(workload, doc) for doc in docs]


@given(gen_workloads(), st.lists(gen_documents, min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_hypothesis_runtimes_agree_top_down_early(workload, docs):
    docs = [doc for doc in docs if not doc.has_mixed_content()]
    if not docs:
        return
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    bitmask, sets = run_both(workload, options, docs)
    assert bitmask == sets
    assert bitmask == [matching_oids(workload, doc) for doc in docs]


def test_persist_round_trip_under_bitmask_runtime(protein, protein_docs, tmp_path):
    """Snapshots carry no compiled tables; ``finalize()`` on load must
    rebuild masks that behave identically to the originals."""
    import io

    from repro.xpush.persist import load_workload, save_workload

    filters = make_workload(protein, 25, seed=44)
    original = build_workload_automata(filters)
    buffer = io.StringIO()
    save_workload(original, buffer)
    buffer.seek(0)
    reloaded = load_workload(buffer)
    assert reloaded.masks is not None
    for options in both_runtimes(XPushOptions(top_down=True, precompute_values=False)):
        a = XPushMachine(original, options)
        b = XPushMachine(reloaded, options)
        for doc in protein_docs[:10]:
            assert a.filter_document(doc) == b.filter_document(doc)


@pytest.mark.parametrize("shards", [2, 3, 4])
def test_sharded_engine_agrees_across_runtimes(shards, protein, protein_docs):
    from repro.service import ShardedFilterEngine

    filters = make_workload(protein, 24, seed=71)
    docs = protein_docs[:8]
    answers = []
    for options in both_runtimes(XPushOptions(top_down=True, precompute_values=False)):
        with ShardedFilterEngine(
            filters, shards, options=options, parallel=False, batch_size=3
        ) as engine:
            answers.append(engine.filter_batch(docs))
            assert engine.stats()["runtime"] == options.runtime
    assert answers[0] == answers[1]
    assert answers[0] == [matching_oids(filters, doc) for doc in docs]


def test_sharded_worker_processes_under_bitmask(protein, protein_docs):
    """Options (and so the runtime) pickle into the shard worker
    payloads; the parallel path must agree with ground truth too."""
    from repro.service import ShardedFilterEngine

    filters = make_workload(protein, 16, seed=5)
    docs = protein_docs[:6]
    expected = [matching_oids(filters, doc) for doc in docs]
    with ShardedFilterEngine(
        filters, 2, options=XPushOptions(top_down=True, precompute_values=False),
        batch_size=3, warm=False,
    ) as engine:
        if not engine.parallel:
            pytest.skip("multiprocessing unavailable on this platform")
        assert engine.filter_batch(docs) == expected


def test_reset_tables_clears_early_notifications(protein):
    """Satellite 1: ``reset_tables`` must drop in-flight early
    notifications; a stale ``_early`` set would leak oids into the next
    document's answer after a mid-stream flush."""
    filters = make_workload(protein, 12, seed=23)
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    for opts in both_runtimes(options):
        machine = XPushMachine(build_workload_automata(filters), opts)
        machine.start_document()
        machine._early.add("ghost-oid")
        machine.reset_tables()
        assert machine._early == set()


def test_reset_tables_round_trips_both_runtimes(protein, protein_docs):
    filters = make_workload(protein, 20, seed=61)
    for opts in both_runtimes(XPushOptions()):
        machine = XPushMachine(build_workload_automata(filters), opts)
        before = [machine.filter_document(doc) for doc in protein_docs[:6]]
        machine.reset_tables()
        after = [machine.filter_document(doc) for doc in protein_docs[:6]]
        assert before == after
