"""End-to-end tests for the Sec. 2 string extension
(starts-with/contains) through the full machine pipeline."""

from repro.afa.build import build_workload_automata
from repro.xmlstream.dom import parse_document
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions


def test_machine_evaluates_string_functions():
    machine = XPushMachine.from_xpath(
        {
            "p": '/log[msg[starts-with(., "ERR")]]',
            "c": '/log[contains(msg, "timeout")]',
            "both": '/log[starts-with(msg, "ERR") and contains(msg, "disk")]',
        }
    )
    cases = [
        ("<log><msg>ERR: disk full</msg></log>", {"p", "both"}),
        ("<log><msg>WARN timeout on read</msg></log>", {"c"}),
        ("<log><msg>ERRtimeout</msg></log>", {"p", "c"}),
        ("<log><msg>ok</msg></log>", set()),
    ]
    for xml, want in cases:
        assert machine.filter_document(parse_document(xml)) == want, xml


def test_string_functions_share_the_aho_corasick_index():
    sources = {f"q{i}": f'/a[contains(t, "pat{i}")]' for i in range(6)}
    machine = XPushMachine.from_xpath(sources)
    doc = parse_document("<a><t>xxpat2yypat4zz</t></a>")
    assert machine.filter_document(doc) == {"q2", "q4"}
    # One lookup resolved all six patterns; the index holds them all.
    assert len(machine.index) == 6


def test_generated_string_function_workloads_differential(protein, protein_docs):
    generator = QueryGenerator(
        protein.dtd,
        protein.value_pool,
        GeneratorConfig(
            seed=3,
            mean_predicates=2.0,
            prob_string_function=0.8,
            prob_attribute_predicate=0.1,
        ),
    )
    filters = generator.generate(30)
    assert any(
        "starts-with" in f.source or "contains" in f.source for f in filters
    )
    for options in (
        XPushOptions(),
        XPushOptions(top_down=True, early=True, precompute_values=False),
    ):
        machine = XPushMachine(build_workload_automata(filters), options)
        for doc in protein_docs[:8]:
            assert machine.filter_document(doc) == matching_oids(filters, doc)


def test_generated_string_predicates_are_satisfiable(protein):
    from repro.xpath.semantics import evaluate_filter

    generator = QueryGenerator(
        protein.dtd,
        protein.value_pool,
        GeneratorConfig(
            seed=9, mean_predicates=1.0, prob_string_function=1.0,
            prob_attribute_predicate=0.0,
        ),
    )
    filters = generator.generate(15)
    docs = list(protein.documents(200))
    matched = {f.oid for f in filters for d in docs if evaluate_filter(f, d)}
    assert len(matched) >= len(filters) * 0.3
