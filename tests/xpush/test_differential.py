"""Differential tests: every engine must equal the reference semantics.

This is the library's strongest correctness net — randomized workloads
(with wildcards, descendants, not/or, nesting) over both datasets,
checked for every optimisation combination, the eager machine and the
baselines.
"""

import pytest

from repro.afa.build import build_workload_automata
from repro.baselines import NaiveEngine, PerQueryEngine, SharedPathEngine
from repro.xpath.semantics import matching_oids
from repro.xpush.eager import EagerXPushMachine
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions

from tests.conftest import make_workload

ALL_OPTION_COMBOS = [
    XPushOptions(),
    XPushOptions(precompute_values=False),
    XPushOptions(top_down=True, precompute_values=False),
    XPushOptions(order=True),
    XPushOptions(top_down=True, order=True, precompute_values=False),
    XPushOptions(top_down=True, early=True, precompute_values=False),
    XPushOptions(top_down=True, order=True, early=True, precompute_values=False),
    XPushOptions(top_down=True, train=True, precompute_values=False),
    XPushOptions(
        top_down=True, order=True, early=True, train=True, precompute_values=False
    ),
]


@pytest.mark.parametrize("options", ALL_OPTION_COMBOS, ids=lambda o: o.describe())
def test_all_variants_match_reference_protein(options, protein, protein_docs):
    filters = make_workload(protein, 40, seed=21)
    machine = XPushMachine(
        build_workload_automata(filters), options, dtd=protein.dtd
    )
    for doc in protein_docs:
        assert machine.filter_document(doc) == matching_oids(filters, doc)


@pytest.mark.parametrize(
    "options",
    [
        XPushOptions(),
        XPushOptions(top_down=True, order=True, early=True, train=True, precompute_values=False),
    ],
    ids=lambda o: o.describe(),
)
def test_variants_match_reference_on_recursive_nasa(options, nasa, nasa_docs):
    filters = make_workload(nasa, 30, seed=5, prob_descendant=0.25)
    machine = XPushMachine(build_workload_automata(filters), options, dtd=nasa.dtd)
    for doc in nasa_docs:
        assert machine.filter_document(doc) == matching_oids(filters, doc)


def test_eager_machine_matches_reference(protein, protein_docs):
    # Small workload only: the eager construction is exponential — the
    # very reason the paper computes the machine lazily (Sec. 4).
    filters = make_workload(
        protein, 3, seed=33, mean_predicates=1.0, prob_not=0.0, prob_nested=0.0,
        prob_or=0.0, prob_wildcard=0.0, prob_descendant=0.0,
    )
    eager = EagerXPushMachine(filters, max_states=200_000)
    for doc in protein_docs[:10]:
        assert eager.run(doc) == matching_oids(filters, doc)


def test_baselines_match_reference(protein, protein_docs):
    filters = make_workload(protein, 25, seed=55)
    engines = [NaiveEngine(filters), PerQueryEngine(filters), SharedPathEngine(filters)]
    for doc in protein_docs[:10]:
        want = matching_oids(filters, doc)
        for engine in engines:
            assert engine.filter_document(doc) == want, engine.name


def test_stream_and_document_paths_agree(protein):
    from repro.xmlstream.writer import document_to_xml

    filters = make_workload(protein, 20, seed=8)
    machine = XPushMachine(build_workload_automata(filters))
    docs = list(protein.documents(8))
    via_documents = [machine.filter_document(d) for d in docs]
    machine2 = XPushMachine(build_workload_automata(filters))
    stream = "".join(document_to_xml(d) for d in docs)
    via_stream = machine2.filter_stream(stream)
    assert via_documents == via_stream


def test_shared_machine_vs_fresh_machines(protein, protein_docs):
    """Processing documents through one long-lived machine equals
    processing each with a fresh machine (state reuse is sound)."""
    filters = make_workload(protein, 25, seed=13)
    workload = build_workload_automata(filters)
    long_lived = XPushMachine(workload)
    for doc in protein_docs:
        fresh = XPushMachine(build_workload_automata(filters))
        assert long_lived.filter_document(doc) == fresh.filter_document(doc)
