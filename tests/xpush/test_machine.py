"""Unit tests for the lazy XPush machine's behaviour."""

import pytest

from repro.errors import MixedContentError, WorkloadError
from repro.xmlstream.dom import parse_document
from repro.xpath.parser import parse_workload, parse_xpath
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions


def machine_for(sources, **kwargs):
    return XPushMachine.from_xpath(sources, **kwargs)


def run(machine, xml):
    return machine.filter_document(parse_document(xml))


def test_single_filter_basics():
    machine = machine_for({"q": "/a[b = 1]"})
    assert run(machine, "<a><b>1</b></a>") == {"q"}
    assert run(machine, "<a><b>2</b></a>") == frozenset()
    assert run(machine, "<x><b>1</b></x>") == frozenset()


def test_attribute_plus_text_document():
    """The Sec. 3.2 promise: <a c="2"> 1 </a> is processed (our t_value
    merges instead of overwriting — DESIGN.md deviation #2)."""
    machine = machine_for({"q": "/a[@c = 2 and text() = 1]"})
    assert run(machine, '<a c="2"> 1 </a>') == {"q"}
    assert run(machine, '<a c="3"> 1 </a>') == frozenset()
    assert run(machine, '<a c="2"> 5 </a>') == frozenset()


def test_mixed_content_rejected():
    machine = machine_for({"q": "/a[b = 1]"})
    with pytest.raises(MixedContentError):
        run(machine, "<a> 1 <b>2</b> </a>")


def test_stream_of_documents():
    machine = machine_for({"q": "//b[text() = 1]"})
    results = machine.filter_stream("<a><b>1</b></a><a><b>2</b></a><b>1</b>")
    assert results == [frozenset({"q"}), frozenset(), frozenset({"q"})]


def test_results_accumulate_and_clear():
    machine = machine_for({"q": "/a"})
    machine.filter_stream("<a/><b/>")
    assert len(machine.results()) == 2
    machine.clear_results()
    assert machine.results() == []


def test_state_reuse_across_documents():
    machine = machine_for({"q": "/a[b = 1 and c = 2]"})
    xml = "<a><b>1</b><c>2</c></a>"
    run(machine, xml)
    states_after_first = machine.state_count
    lookups_first = machine.stats.lookups
    hits_first = machine.stats.hits
    run(machine, xml)
    # Second identical document creates no states and hits every table.
    assert machine.state_count == states_after_first
    assert machine.stats.hits - hits_first == machine.stats.lookups - lookups_first


def test_deterministic_state_counts():
    a = machine_for({"q": "/a[b = 1 and c = 2]"})
    b = machine_for({"q": "/a[b = 1 and c = 2]"})
    xml = "<a><c>2</c><b>1</b></a>"
    run(a, xml)
    run(b, xml)
    assert a.state_count == b.state_count
    assert a.average_state_size == b.average_state_size


def test_not_filter_universal_on_stream():
    machine = machine_for({"q": "/a[not(b = 1)]"})
    assert run(machine, "<a><b>2</b></a>") == {"q"}
    assert run(machine, "<a><b>2</b><b>1</b></a>") == frozenset()
    assert run(machine, "<a/>") == {"q"}
    assert run(machine, "<b/>") == frozenset()  # wrong root entirely


def test_deep_recursion_with_descendants():
    machine = machine_for({"q": "//x[y = 1]"})
    xml = "<r>" + "<x>" * 5 + "<y>1</y>" + "</x>" * 5 + "</r>"
    assert run(machine, xml) == {"q"}


def test_multiple_filters_share_predicates():
    machine = machine_for(
        {
            "p1": "//a[b/text()=1 and .//a[@c>2]]",
            "p2": "//a[@c>2 and b/text()=1]",
            "p3": "//a[b/text()=1]",
        }
    )
    got = run(machine, '<a><b>1</b><a c="3"><b>1</b></a></a>')
    assert got == {"p1", "p2", "p3"}


def test_order_requires_dtd():
    with pytest.raises(WorkloadError):
        machine_for({"q": "/a"}, options=XPushOptions(order=True))


def test_early_requires_top_down():
    with pytest.raises(ValueError):
        XPushOptions(early=True)


def test_reset_tables():
    machine = machine_for(
        {"q": "/a[b = 1]"}, options=XPushOptions(precompute_values=False)
    )
    run(machine, "<a><b>1</b></a>")
    assert machine.state_count > 1
    machine.reset_tables()
    assert machine.state_count == 1  # just the empty state
    # Still correct after the flush.
    assert run(machine, "<a><b>1</b></a>") == {"q"}


def test_reset_tables_reseeds_precomputed_values():
    machine = machine_for(
        {"q": "/a[b = 1]"}, options=XPushOptions(precompute_values=True)
    )
    seeded = machine.state_count
    machine.reset_tables()
    assert machine.state_count == seeded  # t_value states re-seeded
    assert run(machine, "<a><b>1</b></a>") == {"q"}


def test_max_states_flushes_at_document_boundaries():
    # Many distinct constants force many distinct t_value/union states.
    sources = {f"q{i}": f"//a[b = {i}]" for i in range(20)}
    machine = machine_for(
        sources, options=XPushOptions(precompute_values=False, max_states=10)
    )
    for i in range(20):
        j = (i + 7) % 20
        xml = f"<r><a><b>{i}</b><b>{j}</b></a></r>"
        assert run(machine, xml) == {f"q{i}", f"q{j}"}, i
        # The cap is enforced at every document boundary.
        assert machine.state_count <= 10 + 12  # cap plus one document's states
    assert machine.stats.flushes > 0
    # A capped machine still answers exactly like an uncapped one.
    uncapped = machine_for(sources)
    for i in range(20):
        xml = f"<r><a><b>{i}</b></a></r>"
        assert run(machine, xml) == run(uncapped, xml)


def test_empty_document_stream():
    machine = machine_for({"q": "/a"})
    assert machine.filter_stream("") == []


def test_filters_on_attributes_only():
    machine = machine_for({"q": "//@id"})
    assert run(machine, '<x id="1"/>') == {"q"}
    assert run(machine, "<x/>") == frozenset()
    assert run(machine, '<x><y id="z"/></x>') == {"q"}


def test_describe_smoke():
    machine = machine_for({"q": "/a"})
    assert "XPushMachine" in machine.describe()


def test_process_events_returns_per_document(running_filters, running_document):
    from repro.xmlstream.events import events_of_document

    machine = XPushMachine.from_filters(running_filters)
    events = events_of_document(running_document) * 2
    results = machine.process_events(events)
    assert len(results) == 2
    assert results[0] == results[1] == {"o1", "o2"}


def test_unbalanced_event_streams_rejected():
    from repro.errors import EventStreamError
    from repro.xmlstream.events import (
        EndDocument,
        EndElement,
        StartDocument,
        StartElement,
    )

    machine = machine_for({"q": "//a"})
    with pytest.raises(EventStreamError):
        machine.process_events([StartDocument(), EndElement("a")])
    with pytest.raises(EventStreamError):
        machine.process_events(
            [StartDocument(), StartElement("a"), EndDocument()]
        )
    # Still usable afterwards.
    assert machine.filter_stream("<a/>") == [frozenset({"q"})]


def test_on_result_callback():
    machine = machine_for({"q": "//a"})
    seen = []
    machine.on_result = lambda index, oids: seen.append((index, sorted(oids)))
    machine.filter_stream("<a/><b/><a/>")
    assert seen == [(0, ["q"]), (1, []), (2, ["q"])]


def test_clone_is_independent_but_equivalent():
    machine = machine_for({"q": "/a[b = 1]"})
    run(machine, "<a><b>1</b></a>")
    twin = machine.clone()
    assert twin.workload is machine.workload  # shared immutable automata
    assert twin.state_count < machine.state_count or twin.state_count >= 1
    assert run(twin, "<a><b>1</b></a>") == {"q"}
    assert twin.results() == [frozenset({"q"})]
    assert len(machine.results()) == 1  # the clone's runs don't leak over


def test_value_precompute_on_basic_machine():
    machine = machine_for(
        {"q": "/a[b = 1]"}, options=XPushOptions(precompute_values=True)
    )
    # The t_value states already exist: a fresh value lookup is a hit.
    lookups = machine.stats.lookups
    hits = machine.stats.hits
    run(machine, "<a><b>1</b></a>")
    assert machine.stats.hits > hits
