"""Tests for state interning and the state store."""

import pytest

from repro.xpush.state import StateStore


def store(terminals=frozenset()):
    return StateStore(accepts_of=lambda sids: frozenset(), terminal_sids=terminals)


def test_interning_identity():
    s = store()
    a = s.intern_bottom([3, 1, 2])
    b = s.intern_bottom((1, 2, 3))
    c = s.intern_bottom({2, 3, 1})
    assert a is b is c
    assert a.sids == (1, 2, 3)
    assert s.bottom_count == 2  # the empty state plus {1,2,3}


def test_empty_state():
    s = store()
    assert s.empty.sids == ()
    assert len(s.empty) == 0
    assert s.intern_bottom(()) is s.empty


def test_contains_terminal_flag():
    s = store(terminals=frozenset({7}))
    assert s.intern_bottom([7, 1]).contains_terminal
    assert not s.intern_bottom([1, 2]).contains_terminal


def test_average_size_accounting():
    s = store()
    s.intern_bottom([1])
    s.intern_bottom([1, 2, 3])
    # states: {}, {1}, {1,2,3} → sizes 0,1,3
    assert s.bottom_count == 3
    assert s.average_bottom_size == pytest.approx(4 / 3)
    # Re-interning changes nothing.
    s.intern_bottom([1, 2, 3])
    assert s.average_bottom_size == pytest.approx(4 / 3)


def test_accepts_computed_once():
    calls = []

    def accepts(sids):
        calls.append(sids)
        return frozenset({"x"}) if sids else frozenset()

    s = StateStore(accepts_of=accepts, terminal_sids=frozenset())
    a = s.intern_bottom([1])
    s.intern_bottom([1])
    assert a.accepts == {"x"}
    assert calls.count((1,)) == 1


def test_top_state_interning():
    s = store()
    unpruned = s.intern_top(None)
    assert unpruned.sids is None
    assert unpruned.enables(12345)
    pruned = s.intern_top(frozenset({1, 2}))
    assert pruned.enables(1) and not pruned.enables(3)
    assert s.intern_top(frozenset({1, 2})) is pruned
    assert s.top_count == 2


def test_reset():
    s = store()
    s.intern_bottom([1, 2])
    s.intern_top(frozenset({1}))
    s.reset()
    assert s.bottom_count == 1  # fresh empty state
    assert s.top_count == 0
    assert s.empty.sids == ()
