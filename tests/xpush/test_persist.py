"""Tests for compiled-workload persistence."""

import io
import json

import pytest

from repro.afa.build import build_workload_automata
from repro.xpath.semantics import matching_oids
from repro.xpush.machine import XPushMachine
from repro.xpush.options import XPushOptions
from repro.xpush.persist import (
    PersistError,
    load_workload,
    save_workload,
    workload_from_json,
    workload_to_json,
)

from tests.conftest import make_workload


def test_round_trip_structure(running_filters):
    original = build_workload_automata(running_filters)
    rebuilt = workload_from_json(workload_to_json(original))
    assert rebuilt.state_count == original.state_count
    assert [a.oid for a in rebuilt.afas] == [a.oid for a in original.afas]
    assert rebuilt.initial_sids == original.initial_sids
    assert rebuilt.not_sids == original.not_sids
    assert rebuilt.terminals == original.terminals
    assert rebuilt.top_by_label == original.top_by_label
    for a, b in zip(original.states, rebuilt.states):
        assert a.kind == b.kind
        assert a.edges == b.edges
        assert a.eps == b.eps
        assert a.predicate == b.predicate
        assert a.rev == b.rev
        assert a.rank == b.rank
        assert a.owner == b.owner


def test_machines_behave_identically(protein, protein_docs):
    filters = make_workload(protein, 25, seed=61)
    original = build_workload_automata(filters)
    rebuilt = workload_from_json(workload_to_json(original))
    options = XPushOptions(top_down=True, early=True, precompute_values=False)
    a = XPushMachine(original, options)
    b = XPushMachine(rebuilt, options)
    for doc in protein_docs[:8]:
        want = matching_oids(filters, doc)
        assert a.filter_document(doc) == want
        assert b.filter_document(doc) == want
    assert a.state_count == b.state_count


def test_file_round_trip(tmp_path, running_filters):
    original = build_workload_automata(running_filters)
    path = tmp_path / "workload.json"
    save_workload(original, str(path))
    rebuilt = load_workload(str(path))
    assert rebuilt.state_count == original.state_count
    # File-object variants too.
    buffer = io.StringIO()
    save_workload(original, buffer)
    buffer.seek(0)
    assert load_workload(buffer).state_count == original.state_count


def test_json_is_plain_data(running_filters):
    payload = workload_to_json(build_workload_automata(running_filters))
    text = json.dumps(payload)  # must be JSON-serialisable as-is
    assert json.loads(text)["format"] == "repro-workload"


def test_rejects_garbage():
    with pytest.raises(PersistError):
        workload_from_json({"format": "something-else"})
    with pytest.raises(PersistError):
        workload_from_json({"format": "repro-workload", "version": 999})
    with pytest.raises(PersistError):
        workload_from_json(
            {
                "format": "repro-workload",
                "version": 1,
                "states": [{"kind": "OR", "predicate": None, "edges": {"a": [99]}, "eps": [], "top": []}],
                "afas": [],
            }
        )
    with pytest.raises(PersistError):
        workload_from_json(
            {
                "format": "repro-workload",
                "version": 1,
                "states": [{"kind": "NOPE", "predicate": None, "edges": {}, "eps": [], "top": []}],
                "afas": [],
            }
        )


def test_training_still_works_after_reload(protein):
    """The persisted sources let the training generator run unchanged."""
    filters = make_workload(
        protein, 10, seed=3, prob_not=0.0, prob_or=0.0,
        prob_wildcard=0.0, prob_descendant=0.0,
    )
    rebuilt = workload_from_json(workload_to_json(build_workload_automata(filters)))
    machine = XPushMachine(
        rebuilt,
        XPushOptions(top_down=True, train=True, precompute_values=False),
        dtd=protein.dtd,
    )
    assert machine.state_count > 1  # training created states
