"""Golden test: Example 3.2 / Figs. 3-4, the paper's worked machine.

The eager bottom-up XPush machine for the running workload {P1, P2}
must have exactly the 22 bottom-up states of Fig. 3, and its execution
trace on the example document must follow Fig. 3's trace, ending in the
state {1, 5, 8} (paper numbering) with t_accept = {o1, o2}.
"""

import pytest

from repro.afa.predicates import AtomicPredicate
from repro.xpush.eager import EagerXPushMachine


@pytest.fixture(scope="module")
def machine(running_filters):
    return EagerXPushMachine(running_filters)


def test_exactly_22_states(machine):
    assert machine.state_count == 22


def test_value_states_match_fig3_tvalue(machine):
    # T_value intervals: (-inf,1) → ∅, {1} → q1, (1,2] → ∅, (2,inf) → q2.
    workload = machine.workload
    by_pred = {}
    for sid in workload.terminals:
        by_pred.setdefault(str(workload.states[sid].predicate), set()).add(sid)
    q1 = machine.state_sets[machine._value("1")]
    assert set(q1) == by_pred["= 1"]  # the two =1 terminals (states 4, 13)
    q2 = machine.state_sets[machine._value("3")]
    assert set(q2) == by_pred["> 2"]  # the two >2 terminals (states 7, 11)
    assert machine.state_sets[machine._value("0.5")] == ()
    assert machine.state_sets[machine._value("1.5")] == ()
    assert machine.state_sets[machine._value("2")] == ()


def test_trace_and_accept(machine, running_document):
    trace = []
    accepted = machine.run(running_document, trace)
    assert accepted == {"o1", "o2"}

    # Decode the paper's state names in our sid numbering.
    workload = machine.workload
    a1, a2 = workload.afas
    init1, init2 = a1.initial, a2.initial
    sets = [set(machine.state_sets[uid]) for uid in trace]

    # Events traced: text(1), </b>, text(3), </@c>, text(1), </b>, </a>, </a>
    eq1_terminals = {
        sid for sid in workload.terminals
        if workload.states[sid].predicate == AtomicPredicate("=", 1)
    }
    gt2_terminals = set(workload.terminals) - eq1_terminals
    assert sets[0] == eq1_terminals  # q1 = {4, 13}
    assert sets[2] == gt2_terminals  # q2 = {7, 11}
    assert len(sets[1]) == 2  # q3 = {3, 12}
    assert len(sets[3]) == 2  # q4 = {6, 10}
    assert len(sets[5]) == 4  # q5 = {3, 6, 10, 12}
    assert len(sets[6]) == 4  # q9 = {3, 5, 8, 12}
    # Final state q15 = {1, 5, 8}: both initial states present.
    assert init1 in sets[7] and init2 in sets[7]
    assert len(sets[7]) == 3


def test_taccept_partition(machine):
    """Fig. 3's T_accept: states containing initial 1 accept o1, those
    containing initial 8 accept o2, four states accept both."""
    workload = machine.workload
    init1, init2 = (afa.initial for afa in workload.afas)
    both = [u for u in range(machine.state_count) if machine.accepts_of(u) == {"o1", "o2"}]
    only1 = [u for u in range(machine.state_count) if machine.accepts_of(u) == {"o1"}]
    only2 = [u for u in range(machine.state_count) if machine.accepts_of(u) == {"o2"}]
    assert len(both) == 4  # q15, q17, q19, q21
    assert len(only1) == 4  # q14, q16, q18, q20
    assert len(only2) == 4  # q7, q9, q11, q13
    for uid in both:
        assert init1 in machine.state_sets[uid] and init2 in machine.state_sets[uid]


def test_lazy_machine_agrees(running_filters, running_document):
    from repro.xpush.machine import XPushMachine

    lazy = XPushMachine.from_filters(running_filters)
    assert lazy.filter_document(running_document) == {"o1", "o2"}
    # The lazy machine materialises a subset of the eager machine's states.
    assert lazy.state_count <= 22


def test_eager_machine_on_negative_document(machine):
    from repro.xmlstream.dom import parse_document

    accepted = machine.run(parse_document('<a><b>1</b><a c="2"><b>1</b></a></a>'))
    assert accepted == frozenset()
    accepted = machine.run(parse_document('<a><b>1</b><a c="9"><b>1</b></a></a>'))
    assert accepted == {"o1", "o2"}
    accepted = machine.run(parse_document('<a c="9"><b>1</b></a>'))
    assert accepted == {"o2"}  # P1 needs a *descendant* a[@c>2]
